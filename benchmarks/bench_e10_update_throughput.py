"""E10 — cost of the four update procedures.

Paper artifact: the Section 4 data structures are designed so each
update touches only the facts involved (the NCL makes dismantle-NC
local; the NVC is one row per derivation step). The bench times each
procedure on a populated three-hop chain instance and a mixed stream,
giving the implementation-level numbers the paper never measured.
"""

from __future__ import annotations

import itertools

from repro.bench.scale import scaled
from repro.fdb.persistence import dumps, loads
from repro.fdb.updates import apply_update
from repro.workloads.generator import (
    WorkloadConfig,
    chain_fdb,
    random_instance,
    random_updates,
)

K = 3
# Scaled by REPRO_BENCH_SCALE (smoke runs); identity at scale 1.
ROWS = scaled(120, minimum=20)
STREAM = scaled(200, minimum=40)


def prepared_snapshot() -> str:
    db = chain_fdb(K)
    random_instance(db, ROWS, seed=42, value_pool=60)
    return dumps(db)


SNAPSHOT = prepared_snapshot()


def test_bench_base_insert(benchmark):
    db = loads(SNAPSHOT)
    counter = itertools.count()

    def run():
        i = next(counter)
        db.insert("f1", f"T0_fresh{i}", f"T1_fresh{i}")

    benchmark(run)


def test_bench_base_delete(benchmark):
    db = loads(SNAPSHOT)
    pairs = itertools.cycle(list(db.table("f1").pairs()))

    def run():
        db.delete("f1", *next(pairs))

    benchmark(run)


def test_bench_derived_insert(benchmark):
    db = loads(SNAPSHOT)
    counter = itertools.count()

    def run():
        i = next(counter)
        db.insert("v", f"T0_new{i}", f"T{K}_new{i}")

    benchmark(run)


def test_bench_derived_delete(benchmark):
    from repro.fdb.evaluate import derived_extension

    db = loads(SNAPSHOT)
    targets = itertools.cycle(list(derived_extension(db, "v")))

    def run():
        db.delete("v", *next(targets))

    benchmark(run)


def test_bench_mixed_stream(benchmark, report):
    db = loads(SNAPSHOT)
    stream = random_updates(
        db, STREAM, WorkloadConfig(seed=7, value_pool=60)
    )

    def run():
        working = loads(SNAPSHOT)
        for update in stream:
            apply_update(working, update)
        return working

    final = benchmark(run)
    counts = final.counts()
    report.line("E10 -- update throughput (3-hop chain, "
                f"{ROWS} rows/table, {STREAM}-update mixed stream)")
    report.line()
    report.line(f"final state: {counts['stored_facts']} stored facts, "
                f"{counts['ambiguous_facts']} ambiguous, "
                f"{counts['ncs']} NCs, "
                f"{counts['next_null_index'] - 1} nulls issued")
    report.line("per-operation timings: see the pytest-benchmark table "
                "(base_insert / base_delete / derived_insert / "
                "derived_delete).")
    # Metric snapshot for the JSON artifact: replay the same stream once
    # *outside* the timed loop with instrumentation on — the timed runs
    # above stay on the disabled fast path.
    from repro.obs.export import snapshot
    from repro.obs.hooks import OBS

    with OBS.collecting():
        working = loads(SNAPSHOT)
        for update in stream:
            apply_update(working, update)
        report.attach(snapshot())
