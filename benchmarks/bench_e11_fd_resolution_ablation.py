"""E11 — ablation: FD-driven null resolution (Section 5 future work).

Paper artifact: "functional dependencies also play an important role in
resolving partial information. In functional databases the type
functional information indicates relevant functional dependencies."

Setup: a chain of *many-one* functions; N derived inserts create N
null-valued chains; then the real intermediate facts arrive. Without
resolution the nulls linger as ambiguity (every null keeps matching
other facts ambiguously); with :func:`repro.fdb.constraints.
resolve_nulls` the FDs force each null to its real value and the
ambiguity disappears. The report shows the before/after ambiguity
metrics; the bench times the resolution pass.
"""

from __future__ import annotations

from repro.core.types import TypeFunctionality
from repro.fdb.ambiguity import measure
from repro.fdb.constraints import resolve_nulls
from repro.fdb.database import FunctionalDatabase
from repro.fdb.logic import Truth
from repro.fdb.persistence import dumps, loads
from repro.workloads.generator import chain_fdb

N_INSERTS = 12


def build_unresolved() -> FunctionalDatabase:
    db = chain_fdb(2, functionality=TypeFunctionality.MANY_ONE)
    for i in range(N_INSERTS):
        db.insert("v", f"a{i}", f"c{i}")        # NVC: <a_i, n_i>, <n_i, c_i>
    for i in range(N_INSERTS):
        db.insert("f1", f"a{i}", f"b{i}")       # the real mid values
    return db


def test_resolution_removes_all_nulls(report):
    db = build_unresolved()
    before = measure(db)
    assert before.null_count == N_INSERTS

    substitutions = resolve_nulls(db)
    after = measure(db)

    assert len(substitutions) == N_INSERTS
    assert after.null_count == 0
    # The derived facts survive resolution as plain true facts.
    for i in range(N_INSERTS):
        assert db.truth_of("v", f"a{i}", f"c{i}") is Truth.TRUE
        assert db.table("f2").get(f"b{i}", f"c{i}") is not None

    report.line("E11 -- ablation: FD-driven null resolution")
    report.line(f"({N_INSERTS} derived inserts over many-one f1 o f2, "
                "then the real f1 facts)")
    report.line()
    report.table(
        ("variant", "nulls in store", "ambiguous derived facts"),
        [
            ("without resolution", before.null_count,
             before.per_function("v").ambiguous_facts),
            ("with resolve_nulls", after.null_count,
             after.per_function("v").ambiguous_facts),
        ],
    )
    report.line()
    report.line(f"substitutions performed: "
                + "; ".join(str(s) for s in substitutions[:4])
                + (" ..." if len(substitutions) > 4 else ""))
    report.line()
    report.line("shape: exploiting the many-one type functionality "
                "eliminates every NVC null, as Section 5 anticipates.")


def test_bench_resolution_pass(benchmark):
    snapshot = dumps(build_unresolved())

    def run():
        db = loads(snapshot)
        return resolve_nulls(db)

    substitutions = benchmark(run)
    assert len(substitutions) == N_INSERTS
