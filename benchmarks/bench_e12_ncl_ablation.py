"""E12 — ablation: why the NCL dual structure is in the paper.

Paper artifact (Section 4): "a fact can participate in the derivations
of several derived facts. It is therefore possible for a fact to be a
member of several NCs, and it is necessary to keep track of all the
NCs that the fact is a member of. The 'negated conjunction list' (NCL)
attached to each fact maintains the set of NCs in which this fact
participates."

The ablated variant drops the NCL and finds a fact's NCs by scanning
the whole registry — O(total NC members) per lookup instead of
O(|NCL|). With F facts sharing one hub fact across many NCs, the bench
times resolving the hub fact's ambiguity both ways and reports the
ratio; both variants must compute the identical NC set.
"""

from __future__ import annotations

import time

from repro.fdb.database import FunctionalDatabase
from repro.fdb.facts import Fact
from repro.workloads.generator import chain_fdb

N_NCS = 300


def build_hub_database() -> tuple[FunctionalDatabase, Fact]:
    """One f2 hub fact participating in N_NCS negated conjunctions
    (each from deleting a different derived fact through the hub)."""
    db = chain_fdb(2)
    db.load("f2", [("hub", "c")])
    db.load("f1", [(f"a{i}", "hub") for i in range(N_NCS)])
    for i in range(N_NCS):
        db.delete("v", f"a{i}", "c")
    hub = db.table("f2").get("hub", "c")
    assert len(hub.ncl) == N_NCS
    return db, hub


def ncs_via_ncl(db: FunctionalDatabase, fact: Fact) -> set[int]:
    """The paper's way: read the fact's NCL."""
    return set(fact.ncl)


def ncs_via_scan(db: FunctionalDatabase, fact: Fact,
                 function: str) -> set[int]:
    """The ablated way: scan every NC in the registry."""
    ref = fact.ref(function)
    return {nc.index for nc in db.ncs if ref in nc.members}


def test_both_variants_agree_and_ncl_wins(report):
    db, hub = build_hub_database()

    start = time.perf_counter()
    via_ncl = ncs_via_ncl(db, hub)
    ncl_time = time.perf_counter() - start

    start = time.perf_counter()
    via_scan = ncs_via_scan(db, hub, "f2")
    scan_time = time.perf_counter() - start

    assert via_ncl == via_scan
    assert len(via_ncl) == N_NCS

    report.line("E12 -- ablation: the NCL dual structure")
    report.line(f"(one hub fact in {N_NCS} NCs)")
    report.line()
    report.table(
        ("variant", "lookup time (us)"),
        [
            ("NCL dual structure (paper)", f"{ncl_time * 1e6:.1f}"),
            ("registry scan (ablated)", f"{scan_time * 1e6:.1f}"),
        ],
    )
    ratio = scan_time / ncl_time if ncl_time > 0 else float("inf")
    report.line()
    report.line(f"scan / NCL ratio: {ratio:.0f}x -- the dual structure "
                "makes dismantling independent of the registry size.")
    assert scan_time > ncl_time


def test_bench_dismantle_with_ncl(benchmark):
    """base-insert on the hub dismantles all its NCs through the NCL;
    the benchmark round-trips build+resolve."""
    def run():
        db, hub = build_hub_database()
        db.insert("f2", "hub", "c")   # dismantles every NC
        return db

    db = benchmark(run)
    assert len(db.ncs) == 0


def test_bench_scan_lookup(benchmark):
    db, hub = build_hub_database()
    result = benchmark(ncs_via_scan, db, hub, "f2")
    assert len(result) == N_NCS
