"""E13 — ablation: NVC materialization across multiple derivations.

DESIGN.md decision under test: a derived insert materializes an NVC
for *every* confirmed derivation (``insert_mode='all'``), because the
logical implication (2) of Section 3.2 holds per derivation; the
cheaper ``'primary'`` mode covers only the first derivation.

The bench measures the trade on a function with two derivations:

* correctness — :func:`repro.fdb.audit.audit_insert_coverage` finds
  one coverage gap per insert in 'primary' mode and none in 'all';
* cost — stored facts and nulls per insert, and insert latency.
"""

from __future__ import annotations

from repro.core.derivation import Derivation
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality
from repro.fdb.audit import audit_insert_coverage
from repro.fdb.database import FunctionalDatabase

N_INSERTS = 10


def two_route_db(insert_mode: str) -> FunctionalDatabase:
    """v = f1 o f2, and alternatively v = g (a recorded shortcut)."""
    A, B, C = (ObjectType(n) for n in "ABC")
    MM = TypeFunctionality.MANY_MANY
    db = FunctionalDatabase(insert_mode=insert_mode)
    f1 = FunctionDef("f1", A, C, MM)
    f2 = FunctionDef("f2", C, B, MM)
    g = FunctionDef("g", A, B, MM)
    for f in (f1, f2, g):
        db.declare_base(f)
    db.declare_derived(
        FunctionDef("v", A, B, MM),
        [Derivation.of(f1, f2), Derivation.of(g)],
    )
    return db


def run(insert_mode: str) -> tuple[FunctionalDatabase, int, int, int]:
    db = two_route_db(insert_mode)
    for i in range(N_INSERTS):
        db.insert("v", f"a{i}", f"b{i}")
    counts = db.counts()
    gaps = len(audit_insert_coverage(db))
    return db, counts["stored_facts"], counts["next_null_index"] - 1, gaps


def test_insert_mode_tradeoff(report):
    _, all_facts, all_nulls, all_gaps = run("all")
    _, primary_facts, primary_nulls, primary_gaps = run("primary")

    assert all_gaps == 0
    assert primary_gaps == N_INSERTS        # one gap per insert (via g)
    assert primary_facts < all_facts        # 'primary' stores less
    assert all_facts == N_INSERTS * 3       # 2 chain rows + 1 g row
    assert primary_facts == N_INSERTS * 2

    report.line("E13 -- ablation: derived-insert NVC materialization")
    report.line(f"(v has two derivations: f1 o f2 and g; "
                f"{N_INSERTS} derived inserts)")
    report.line()
    report.table(
        ("insert_mode", "stored facts", "nulls issued",
         "coverage gaps (audit)"),
        [
            ("all (default)", all_facts, all_nulls, all_gaps),
            ("primary", primary_facts, primary_nulls, primary_gaps),
        ],
    )
    report.line()
    report.line("shape: 'primary' is ~1/3 cheaper in stored rows but "
                "breaks implication (2) on the second derivation; "
                "'all' keeps every derivation witnessed.")


def test_bench_insert_mode_all(benchmark):
    counter = iter(range(10 ** 9))

    db = two_route_db("all")

    def run_one():
        i = next(counter)
        db.insert("v", f"x{i}", f"y{i}")

    benchmark(run_one)


def test_bench_insert_mode_primary(benchmark):
    counter = iter(range(10 ** 9))

    db = two_route_db("primary")

    def run_one():
        i = next(counter)
        db.insert("v", f"x{i}", f"y{i}")

    benchmark(run_one)
