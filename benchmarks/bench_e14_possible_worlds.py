"""E14 — quantifying ambiguity with possible worlds (Section 5).

Paper artifact: the closing open problem — "it is desirable to
quantify the degree of ambiguity. In this light the applicability of
probabilistic and default logics must be investigated."

The bench runs the possible-worlds analysis on the paper's own u1
state (one NC over two facts: three worlds, each member true with
probability 1/3) and then measures how the world count and the mean
uncertainty grow as more derived deletes pile up NCs — the series a
designer would watch to decide when ambiguity needs manual resolution.
"""

from __future__ import annotations

import pytest

from repro.fdb.database import FunctionalDatabase
from repro.fdb.logic import Truth
from repro.fdb.worlds import analyze, count_worlds, derived_marginal, marginal
from repro.workloads.generator import chain_fdb
from repro.workloads.university import pupil_database


def u1_state() -> FunctionalDatabase:
    db = pupil_database()
    db.delete("pupil", "euclid", "john")
    return db


def stacked_deletes(n_deletes: int) -> FunctionalDatabase:
    """A fan-out instance where each derived delete adds one NC over a
    shared hub fact plus a private fact."""
    db = chain_fdb(2)
    db.load("f2", [("hub", "c")])
    db.load("f1", [(f"a{i}", "hub") for i in range(n_deletes)])
    for i in range(n_deletes):
        db.delete("v", f"a{i}", "c")
    return db


def test_u1_worlds_match_hand_computation(report):
    db = u1_state()
    analysis = analyze(db)
    assert analysis.world_count == 3
    assert analysis.atom_count == 2
    assert marginal(db, "teach", "euclid", "math") == pytest.approx(1 / 3)
    assert derived_marginal(db, "pupil", "euclid", "john") == 0.0
    assert derived_marginal(db, "pupil", "laplace", "bill") == 1.0
    assert derived_marginal(db, "pupil", "euclid", "bill") == (
        pytest.approx(1 / 3)
    )

    report.line("E14 -- possible worlds on the paper's u1 state")
    report.line()
    report.block(str(analysis))
    report.line()
    report.table(
        ("derived fact", "3VL verdict", "P(derivable)"),
        [
            ("pupil(euclid, john)", "false", "0.000"),
            ("pupil(euclid, bill)", "ambiguous", "0.333"),
            ("pupil(laplace, john)", "ambiguous", "0.333"),
            ("pupil(laplace, bill)", "true", "1.000"),
        ],
    )
    report.line()
    report.line("the marginals refine the paper's three truth values: "
                "false = 0, true = 1, ambiguous strictly between.")


def test_world_growth_series(report):
    rows = []
    for n_deletes in (2, 4, 8, 16):
        db = stacked_deletes(n_deletes)
        analysis = analyze(db)
        rows.append((
            n_deletes,
            analysis.atom_count,
            analysis.world_count,
            f"{analysis.entropy_like:.3f}",
        ))
    report.line()
    report.line("ambiguity growth under stacked derived deletes "
                "(shared hub fact):")
    report.table(
        ("derived deletes", "ambiguous facts", "possible worlds",
         "mean uncertainty"),
        rows,
    )
    # Worlds: hub false (2^n private assignments) + hub true (all
    # private facts must be false: 1 world) = 2^n + 1.
    for n_deletes, atoms, worlds_count, _ in rows:
        assert atoms == n_deletes + 1
        assert worlds_count == 2 ** n_deletes + 1


def test_bench_exact_analysis(benchmark):
    db = stacked_deletes(10)
    analysis = benchmark(analyze, db)
    assert analysis.world_count == 2 ** 10 + 1


def test_bench_sampled_marginal(benchmark):
    db = stacked_deletes(12)
    probability = benchmark(
        marginal, db, "f2", "hub", "c", samples=300, seed=5
    )
    assert 0.0 <= probability <= 0.2
