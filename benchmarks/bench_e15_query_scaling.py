"""E15 — derived-query evaluation cost vs chain length and instance
size.

The paper stores derived functions intensionally: every query pays for
chain enumeration at read time (the flip side of the side-effect-free
writes). This bench measures that read cost — full derived extension
and single-fact truth valuation — as the derivation lengthens and the
instance grows, and checks the join indexes keep single-fact lookups
far cheaper than full extensions.
"""

from __future__ import annotations

import time

from repro.bench.scale import scaled, scaled_sizes
from repro.fdb.evaluate import derived_extension, truth_of
from repro.workloads.generator import chain_fdb, random_instance

CHAIN_LENGTHS = (2, 3, 4)
# Scaled by REPRO_BENCH_SCALE (smoke runs); identity at scale 1.
ROW_COUNTS = scaled_sizes((50, 100, 200), minimum=15)


def build(k: int, rows: int):
    db = chain_fdb(k)
    random_instance(db, rows, seed=13, value_pool=max(8, rows // 4))
    return db


def _measure(db) -> tuple[float, float, int]:
    start = time.perf_counter()
    extension = derived_extension(db, "v")
    extension_time = time.perf_counter() - start

    probes = list(extension)[:20] or [("zz", "zz")]
    start = time.perf_counter()
    for x, y in probes:
        truth_of(db, "v", x, y)
    point_time = (time.perf_counter() - start) / len(probes)
    return extension_time, point_time, len(extension)


def test_query_scaling(report):
    rows_table = []
    for k in CHAIN_LENGTHS:
        for rows in ROW_COUNTS:
            db = build(k, rows)
            extension_time, point_time, size = _measure(db)
            rows_table.append((
                k, rows, size,
                f"{extension_time * 1e3:.2f}",
                f"{point_time * 1e6:.1f}",
            ))
            # Point lookups must beat the full extension comfortably.
            assert point_time < extension_time

    report.line("E15 -- derived-query evaluation cost")
    report.line()
    report.table(
        ("chain k", "rows/table", "|extension|",
         "full extension (ms)", "truth_of probe (us)"),
        rows_table,
    )
    report.line()
    report.line("shape: extension cost grows with chain length and "
                "join fan-out; indexed single-fact probes stay orders "
                "of magnitude cheaper — intensional storage is viable "
                "for point queries.")


def test_bench_extension_k3(benchmark):
    db = build(3, scaled(100, minimum=25))
    extension = benchmark(derived_extension, db, "v")
    assert extension


def test_bench_truth_probe_k3(benchmark):
    db = build(3, scaled(100, minimum=25))
    extension = list(derived_extension(db, "v"))
    probe = extension[0]
    verdict = benchmark(truth_of, db, "v", *probe)
    from repro.fdb.logic import Truth

    assert verdict is Truth.TRUE
