"""E16 — service-level request latency under mixed concurrent traffic.

The paper's update machinery is single-threaded; the service layer
wraps it in admission control, cluster locks and retry. This bench
measures what a *caller* of that stack sees: per-operation-family
latency percentiles (p50/p95/p99 from the ``service.red.*``
log-bucketed histograms), plus the overload signals — requests shed at
the gate and retries burned on lock contention — under a seeded
mixed read/write/read-modify-write workload on worker threads.

The timed rounds run with instrumentation off (the production fast
path); the percentile/shed/retry numbers come from one instrumented
replay of the same traffic outside the clock, exactly the E10 idiom.
Contention-dependent counters (retries, sheds, lock timeouts,
deadlocks, upgrades, SLO/breaker transitions) vary run to run by
scheduling, so they are stripped from the attached snapshot — the
regression comparison keys on the deterministic work counters only —
and reported as informational lines instead.
"""

from __future__ import annotations

import random
import tempfile
import threading
from pathlib import Path

from repro.bench.scale import scaled
from repro.errors import ServiceError
from repro.fdb.updates import Update
from repro.service import DatabaseService
from repro.workloads.university import pupil_database

WORKERS = scaled(4, minimum=2)
OPS_PER_WORKER = scaled(60, minimum=12)

# Counter prefixes whose values depend on thread scheduling, not on
# the workload: never let them into the compared snapshot.
VOLATILE_PREFIXES = (
    "service.retries",
    "service.shed",
    "service.lock.timeouts",
    "service.lock.deadlocks",
    "service.lock.upgrades",
    "service.breaker.",
    "slo.",
    "fdb.wal.retries",
)


def _traffic(service: DatabaseService, worker: int, ops: int) -> None:
    """One worker's seeded op mix: 50% point reads, 40% unique
    inserts, 10% read-modify-write. Shed requests are expected under
    a small gate and simply counted."""
    rng = random.Random(1000 + worker)
    for i in range(ops):
        roll = rng.random()
        try:
            if roll < 0.5:
                service.truth_of("teach", "euclid", "math")
            elif roll < 0.9:
                service.execute(
                    Update.ins("teach", f"w{worker}t{i}", f"c{worker}_{i}")
                )
            else:
                service.read_modify_write(
                    ("class_list",),
                    lambda db, w=worker, j=i: Update.ins(
                        "class_list", f"rmw{w}_{j}", f"s{w}_{j}"
                    ),
                )
        except ServiceError:
            pass  # shed / read-only / timeout: the overload path itself


def _run_traffic(log_dir: Path, tag: str) -> DatabaseService:
    service = DatabaseService(
        pupil_database(),
        log=log_dir / f"wal_{tag}.jsonl",
        max_concurrent=max(2, WORKERS // 2),
        max_queue=WORKERS * OPS_PER_WORKER,
    )
    threads = [
        threading.Thread(target=_traffic, args=(service, w, OPS_PER_WORKER))
        for w in range(WORKERS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return service


def _filtered_snapshot() -> dict:
    from repro.obs.export import snapshot

    data = snapshot()
    counters = data.get("metrics", {}).get("counters", {})
    data["metrics"]["counters"] = {
        name: value for name, value in counters.items()
        if not name.startswith(VOLATILE_PREFIXES)
    }
    return data


def test_bench_service_mixed_traffic(benchmark, report):
    from repro.obs.hooks import OBS

    tags = iter(range(10_000))
    with tempfile.TemporaryDirectory() as tmp:
        log_dir = Path(tmp)

        def run():
            service = _run_traffic(log_dir, f"t{next(tags)}")
            service.close()
            return service

        was_enabled, was_tracing = OBS.enabled, OBS.tracing
        OBS.disable()  # timed rounds take the production fast path
        try:
            benchmark(run)
        finally:
            if was_enabled:
                OBS.enable(tracing=was_tracing)

        # Instrumented replay of the same traffic, outside the clock.
        with OBS.collecting():
            service = _run_traffic(log_dir, "replay")
            committed = len(service.committed_ops())
            stats = service.stats()
            service.close()
            metrics = OBS.metrics.snapshot()
            data = _filtered_snapshot()

    report.line(
        f"E16 -- service request latency ({WORKERS} workers x "
        f"{OPS_PER_WORKER} ops, 50/40/10 read/execute/rmw mix)"
    )
    report.line()
    histograms = metrics.get("histograms", {})
    counters = metrics.get("counters", {})
    families = sorted(
        name.split(".")[2] for name in counters
        if name.startswith("service.red.") and name.endswith(".requests")
    )
    rows = []
    latency = {}
    for family in families:
        hist = histograms.get(f"service.red.{family}.duration_seconds", {})
        latency[family] = {
            "requests": counters.get(f"service.red.{family}.requests", 0),
            "errors": counters.get(f"service.red.{family}.errors", 0),
            "p50_seconds": hist.get("p50"),
            "p95_seconds": hist.get("p95"),
            "p99_seconds": hist.get("p99"),
        }
        rows.append((
            family,
            str(latency[family]["requests"]),
            str(latency[family]["errors"]),
            *(f"{hist.get(p) * 1000:.3f}ms" if hist.get(p) is not None
              else "-" for p in ("p50", "p95", "p99")),
        ))
    report.table(("family", "requests", "errors", "p50", "p95", "p99"),
                 rows)
    report.line()
    report.line(
        f"committed: {committed} ops; overload signals (informational, "
        f"not compared): shed={stats['shed']} "
        f"retries={stats.get('retries', 0)} "
        f"lock_timeouts={stats.get('lock_timeouts', 0)} "
        f"deadlocks={stats.get('deadlocks', 0)}"
    )
    report.line(
        f"slo: healthy={stats['slo_healthy']} "
        f"raised={stats['slo_alerts_raised']} "
        f"cleared={stats['slo_alerts_cleared']}"
    )
    assert committed > 0, "replay committed nothing"
    for family in ("read", "execute"):
        assert latency.get(family, {}).get("requests"), \
            f"no {family} traffic recorded"
    data["service_latency"] = latency
    report.attach(data)
