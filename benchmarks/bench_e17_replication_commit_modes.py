"""E17 — replication commit-mode overhead and shipping throughput.

What does waiting for replicas cost a committer? This bench drives
the same seeded insert stream through a WAL-logged primary under each
commit mode — ``async``, ``sync(1)``, ``sync(2)``, ``quorum`` — with
two in-process replicas attached (docs/REPLICATION.md), and reports
per-mode commit latency percentiles (WAL append + apply + replica
acks), the shipping work counters, and a per-replica
ship/wal-append/apply/ack pipeline-stage latency breakdown from one
instrumented replay outside the clock (the E10 idiom). On a healthy in-process network
the stream ships with zero ack timeouts and every replica finishes at
the primary's head sequence — both asserted, so the bench doubles as
a throughput-shaped correctness check.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.bench.scale import scaled
from repro.fdb import persistence
from repro.fdb.updates import Update
from repro.fdb.wal import LoggedDatabase
from repro.replication import Replica, ReplicationGroup
from repro.workloads.university import pupil_database

OPS = scaled(120, minimum=24)
REPLICAS = 2
MODES = ("async", "sync(1)", "sync(2)", "quorum")


def _updates() -> list[Update]:
    return [
        Update.ins("teach", f"f{i % 17}", f"c{i}") for i in range(OPS)
    ]


def _run_mode(workdir: Path, mode: str) -> dict:
    """One full stream under one commit mode; returns per-commit
    latencies and the end-of-run lag view."""
    primary_dir = workdir / f"{mode}-primary".replace("(", "_") \
        .replace(")", "")
    primary_dir.mkdir(parents=True)
    db = pupil_database()
    persistence.save(db, primary_dir / "snapshot.json", wal_applied=0)
    logged = LoggedDatabase(db, primary_dir / "wal.log")
    group = ReplicationGroup(mode, ack_timeout=5.0,
                             retry_interval=0.001)
    group.attach_primary(logged)
    for r in range(REPLICAS):
        group.add_replica(
            f"r{r}",
            Replica(f"r{r}", primary_dir.parent
                    / f"{primary_dir.name}-r{r}"),
        )
    latencies: list[float] = []
    for update in _updates():
        started = time.perf_counter()
        seq = logged.execute(update)
        group.on_commit(seq)
        latencies.append(time.perf_counter() - started)
    head = logged.log.last_seq()
    lag = group.lag()
    assert head == OPS
    for name, info in lag.items():
        assert info["lag_seq"] == 0, f"{name} finished lagging"
    return {"latencies": latencies, "head": head, "lag": lag}


def _percentiles(samples: list[float]) -> dict:
    ordered = sorted(samples)

    def at(q: float) -> float:
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    return {"p50": at(0.50), "p95": at(0.95), "p99": at(0.99)}


def test_bench_replication_commit_modes(benchmark, report):
    from repro.obs.hooks import OBS

    was_enabled, was_tracing = OBS.enabled, OBS.tracing
    OBS.disable()  # timed rounds take the production fast path
    results: dict[str, dict] = {}
    try:
        with tempfile.TemporaryDirectory() as tmp:
            rounds = iter(range(10_000))

            def run():
                base = Path(tmp) / f"round{next(rounds)}"
                for mode in MODES:
                    results[mode] = _run_mode(base, mode)

            benchmark(run)
    finally:
        if was_enabled:
            OBS.enable(tracing=was_tracing)

    # Instrumented replay of one sync(1) stream, outside the clock,
    # for the shipping work counters.
    with OBS.collecting():
        with tempfile.TemporaryDirectory() as tmp:
            _run_mode(Path(tmp) / "replay", "sync(1)")
        from repro.obs.export import snapshot

        data = snapshot()

    report.line(
        f"E17 -- replication commit modes ({OPS} inserts, "
        f"{REPLICAS} in-process replicas)"
    )
    report.line()
    rows = []
    mode_stats = {}
    for mode in MODES:
        pct = _percentiles(results[mode]["latencies"])
        mode_stats[mode] = pct
        rows.append((
            mode,
            str(results[mode]["head"]),
            *(f"{pct[p] * 1000:.3f}ms" for p in ("p50", "p95", "p99")),
        ))
    report.table(("mode", "commits", "p50", "p95", "p99"), rows)
    report.line()
    counters = data.get("metrics", {}).get("counters", {})
    shipped = counters.get("replication.records_shipped", 0)
    applied = counters.get("replication.records_applied", 0)
    report.line(
        f"sync(1) replay: {shipped} records shipped, {applied} "
        f"applied, {counters.get('replication.snapshots_shipped', 0)} "
        f"snapshots, {counters.get('replication.ack_timeouts', 0)} "
        f"ack timeouts"
    )
    assert shipped >= OPS, "the stream was not shipped"
    assert applied >= OPS * REPLICAS, "replicas did not apply the stream"
    assert counters.get("replication.ack_timeouts", 0) == 0

    # Per-stage commit-pipeline breakdown from the replay's log
    # histograms: where inside ship -> wal-append -> apply -> ack the
    # sync(1) commit latency actually goes, per replica.
    histograms = data.get("metrics", {}).get("histograms", {})
    stages = (
        ("ship", "replication.ship.rtt_seconds."),
        ("wal_append", "replication.pipeline.wal_append_seconds."),
        ("apply", "replication.pipeline.apply_seconds."),
        ("ack", "replication.commit.ack_seconds."),
    )
    report.line()
    stage_rows = []
    pipeline_stats: dict[str, dict] = {}
    for r in range(REPLICAS):
        replica = f"r{r}"
        per_stage = {}
        for stage, prefix in stages:
            snap = histograms.get(prefix + replica)
            if not snap or not snap.get("count"):
                continue
            per_stage[stage] = {
                "count": snap["count"],
                "p50_seconds": snap["p50"],
                "p95_seconds": snap["p95"],
                "p99_seconds": snap["p99"],
            }
            stage_rows.append((
                replica, stage, str(snap["count"]),
                f"{snap['p50'] * 1000:.3f}ms",
                f"{snap['p95'] * 1000:.3f}ms",
                f"{snap['p99'] * 1000:.3f}ms",
            ))
        pipeline_stats[replica] = per_stage
        missing = [s for s, _ in stages if s not in per_stage]
        assert not missing, \
            f"{replica} pipeline stages unobserved: {missing}"
    report.table(
        ("replica", "stage", "samples", "p50", "p95", "p99"),
        stage_rows,
    )
    data["replication_pipeline"] = pipeline_stats
    data["replication_latency"] = {
        mode: {f"{p}_seconds": v for p, v in pct.items()}
        for mode, pct in mode_stats.items()
    }
    report.attach(data)
