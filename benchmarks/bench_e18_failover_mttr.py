"""E18 — automatic failover MTTR across lease durations.

How long is the write path down when the primary dies? This bench
kills (isolates) a lease-holding primary under live traffic and
measures the three recovery milestones on a real clock, with the
production renewer and coordinator threads running exactly as the
service runs them (docs/REPLICATION.md):

* **detect** — the primary's lease lapses (its own self-demotion
  instant: from here every local write raises ``LeaseExpired``);
* **elect** — the coordinator's detectors reach the vote quota and
  :meth:`FailoverCoordinator.tick` promotes the best candidate;
* **recover** — the elected replica has attached and committed its
  first new-term write (MTTR proper: writes are accepted again).

The sweep repeats this across lease durations — the protocol's one
real tuning knob — reporting per-duration percentiles, so the
duration ↔ MTTR trade-off (shorter lease, faster recovery, more
heartbeat traffic) is a measured curve rather than folklore. The
timed ``benchmark`` rounds run one full failover at the shortest
duration. Every trial must elect exactly once and lose no acked
commit — asserted, so the bench doubles as a failover-shaped
correctness check.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.bench.scale import scaled
from repro.fdb import persistence
from repro.fdb.updates import Update
from repro.fdb.wal import LoggedDatabase
from repro.replication import (
    FailoverCoordinator,
    LeaseConfig,
    Replica,
    ReplicationGroup,
)
from repro.workloads.university import pupil_database

DURATIONS = (0.25, 0.5, 1.0)
TRIALS = scaled(3, minimum=1)
REPLICAS = 2
WARM_OPS = 5


def _config(duration: float) -> LeaseConfig:
    """The soak's scaling rule: margin, renewal cadence and detection
    cadence all follow the duration."""
    return LeaseConfig(
        duration=duration,
        margin=duration / 8,
        renew_interval=duration / 5,
        check_interval=duration / 20,
    )


def _failover_trial(workdir: Path, cfg: LeaseConfig) -> dict:
    """One kill → detect → elect → first-new-term-commit cycle;
    returns the three latencies (seconds from the kill)."""
    workdir.mkdir(parents=True)
    primary_dir = workdir / "primary"
    primary_dir.mkdir()
    db = pupil_database()
    persistence.save(db, primary_dir / "snapshot.json", wal_applied=0)
    logged = LoggedDatabase(db, primary_dir / "wal.log")
    group = ReplicationGroup("sync(1)", ack_timeout=5.0,
                             retry_interval=0.001)
    lease = group.enable_lease(cfg)
    term = group.attach_primary(logged, node="primary")
    coord = FailoverCoordinator(group, cfg)
    for r in range(REPLICAS):
        replica = Replica(f"r{r}", workdir / f"r{r}")
        group.add_replica(replica.name, replica)
        coord.watch(replica)
    lease.start()
    coord.start()
    try:
        acked = []
        for i in range(WARM_OPS):
            group.check_primary(term)
            seq = logged.execute(Update.ins("teach", f"p{i}", "cs"))
            group.on_commit(seq)
            acked.append(seq)

        killed = time.perf_counter()
        for link in group.shipper.links():
            link.transport.partitioned = True

        poll = max(cfg.check_interval / 4, 0.001)
        budget = killed + cfg.detector_horizon + 10.0
        while lease.held() and time.perf_counter() < budget:
            time.sleep(poll)
        detected = time.perf_counter()
        assert not lease.held(), "primary never self-demoted"

        while not coord.elections and time.perf_counter() < budget:
            time.sleep(poll)
        elected = time.perf_counter()
        assert coord.elections, "no automatic election"
        report = coord.elections[0]
        assert report.applied_seq >= max(acked), \
            "the election fenced below an acked commit"

        chosen = group.replica(report.chosen)
        group.remove_replica(report.chosen)
        new_logged = LoggedDatabase(chosen.db, chosen.wal_path)
        new_term = group.attach_primary(new_logged, node=report.chosen)
        group.check_primary(new_term)
        seq = new_logged.execute(Update.ins("teach", "healer", "math"))
        group.on_commit(seq)
        recovered = time.perf_counter()

        assert len(coord.elections) == 1, "stacked elections"
        return {
            "detect_seconds": detected - killed,
            "elect_seconds": elected - killed,
            "recover_seconds": recovered - killed,
        }
    finally:
        coord.stop()
        lease.stop()


def _percentiles(samples: list[float]) -> dict:
    ordered = sorted(samples)

    def at(q: float) -> float:
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    return {"p50": at(0.50), "p95": at(0.95), "max": ordered[-1]}


def test_bench_failover_mttr(benchmark, report):
    from repro.obs.hooks import OBS

    was_enabled, was_tracing = OBS.enabled, OBS.tracing
    OBS.disable()  # trials take the production fast path
    sweep: dict[float, list[dict]] = {d: [] for d in DURATIONS}
    try:
        with tempfile.TemporaryDirectory() as tmp:
            base = Path(tmp)
            for duration in DURATIONS:
                cfg = _config(duration)
                for trial in range(TRIALS):
                    sweep[duration].append(_failover_trial(
                        base / f"d{duration}-t{trial}", cfg
                    ))

            # The timed rounds: one full failover at the shortest
            # lease — the headline MTTR the comparison tracks.
            rounds = iter(range(10_000))

            def run():
                return _failover_trial(
                    base / f"timed{next(rounds)}",
                    _config(DURATIONS[0]),
                )

            timed = benchmark(run)
    finally:
        if was_enabled:
            OBS.enable(tracing=was_tracing)

    report.line(
        f"E18 -- failover MTTR ({TRIALS} trials x "
        f"{len(DURATIONS)} lease durations, {REPLICAS} in-process "
        f"replicas, sync(1), kill under live traffic)"
    )
    report.line()
    rows = []
    curve: dict[str, dict] = {}
    for duration in DURATIONS:
        cfg = _config(duration)
        trials = sweep[duration]
        stats = {
            stage: _percentiles([t[stage] for t in trials])
            for stage in ("detect_seconds", "elect_seconds",
                          "recover_seconds")
        }
        curve[f"{duration:g}"] = {
            "config": {
                "duration": cfg.duration,
                "margin": cfg.margin,
                "renew_interval": cfg.renew_interval,
                "detector_horizon": cfg.detector_horizon,
            },
            "trials": len(trials),
            **stats,
        }
        rows.append((
            f"{duration:g}s",
            f"{cfg.detector_horizon:g}s",
            *(f"{stats[stage]['p50'] * 1000:.0f}ms"
              for stage in ("detect_seconds", "elect_seconds",
                            "recover_seconds")),
            f"{stats['recover_seconds']['max'] * 1000:.0f}ms",
        ))
        # Detection cannot beat the validity window (the lease was
        # freshly renewed at the kill), and election must trail the
        # primary's demotion — the safety gap, observed.
        for t in trials:
            assert t["elect_seconds"] >= t["detect_seconds"], \
                "elected before the primary self-demoted"
            assert t["recover_seconds"] >= t["elect_seconds"]
    report.table(
        ("lease", "horizon", "detect p50", "elect p50",
         "recover p50", "recover max"),
        rows,
    )
    report.line()
    report.line(
        f"timed rounds (lease {DURATIONS[0]:g}s): full failover "
        f"recover = {timed['recover_seconds'] * 1000:.0f}ms "
        f"(detect {timed['detect_seconds'] * 1000:.0f}ms, "
        f"elect {timed['elect_seconds'] * 1000:.0f}ms)"
    )
    report.attach({"failover_mttr": curve,
                   "timed_trial": timed})
