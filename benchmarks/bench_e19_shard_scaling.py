"""E19 — aggregate write throughput vs shard-lane count.

Every :class:`repro.service.DatabaseService` serialises writes on one
``__write__`` token: the engine's whole-instance rollback and
null-index determinism demand it, so a single service's write
throughput is flat no matter how many clients push. The sharded
facade's claim (``docs/SHARDING.md``) is that derivation clusters let
the keyspace split into independent lanes whose WAL fsyncs — the
dominant, GIL-releasing cost of a durable commit — overlap in real
time.

This bench measures that claim directly: a fixed fleet of writer
threads, each owning one cluster, pushes unique durable inserts
through one :class:`repro.shard.ShardedDatabaseService` at 1, 2, 4
and 8 lanes (clusters pinned round-robin, so the *same* workload
routes to more lanes as the count grows). Reported per lane count:
aggregate ops/s and speedup over the 1-shard baseline — the 1-shard
facade being exactly the unsharded service plus a dictionary lookup,
which keeps the baseline honest.

Timed rounds run with instrumentation off (the production fast path),
per the E10/E16 idiom; the attached snapshot carries the throughput
series keyed by shard count.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

from repro.bench.scale import scaled
from repro.core.derivation import Derivation
from repro.core.schema import FunctionDef, ObjectType, TypeFunctionality
from repro.fdb.database import FunctionalDatabase
from repro.fdb.updates import Update
from repro.service.service import clusters_of
from repro.shard import ShardedDatabaseService

WORKERS = 8  # one writer per cluster; fixed across shard counts
SHARD_COUNTS = (1, 2, 4, 8)
OPS_PER_WORKER = scaled(150, minimum=25)
WARMUP_OPS = scaled(10, minimum=2)
TRIALS = 3  # throughput is computed over every trial's ops combined


def shard_bench_database() -> FunctionalDatabase:
    """``WORKERS`` independent clusters ``e19c<i>a . e19c<i>b ->
    e19c<i>v`` — full schema on every lane, one cluster per writer."""
    db = FunctionalDatabase()
    mm = TypeFunctionality.MANY_MANY
    for index in range(WORKERS):
        prefix = f"e19c{index}"
        types = [ObjectType(f"E19_{index}_{j}") for j in range(3)]
        first = FunctionDef(f"{prefix}a", types[0], types[1], mm)
        second = FunctionDef(f"{prefix}b", types[1], types[2], mm)
        db.declare_base(first)
        db.declare_base(second)
        db.declare_derived(
            FunctionDef(f"{prefix}v", types[0], types[2], mm),
            Derivation.of(first, second),
        )
    return db


def _pins(shards: int) -> dict[str, int]:
    clusters = sorted(set(clusters_of(shard_bench_database()).values()))
    return {cluster: index % shards
            for index, cluster in enumerate(clusters)}


def _writer(service: ShardedDatabaseService, worker: int, ops: int,
            offset: int, failures: list) -> None:
    name = f"e19c{worker}a"
    try:
        for i in range(offset, offset + ops):
            service.execute(Update.ins(name, f"w{worker}x{i}",
                                       f"w{worker}y{i}"))
    except Exception as exc:  # noqa: BLE001 - report, don't hang join
        failures.append(exc)


def _run_fleet(service: ShardedDatabaseService, ops: int,
               offset: int) -> float:
    failures: list = []
    threads = [
        threading.Thread(target=_writer,
                         args=(service, worker, ops, offset, failures))
        for worker in range(WORKERS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not failures, f"writer failed: {failures[0]!r}"
    return elapsed


def _measure(shards: int, tmp: Path) -> dict:
    service = ShardedDatabaseService(
        shard_bench_database, shards,
        pins=_pins(shards),
        log_dir=tmp / f"lanes-{shards}",
        service_kwargs=dict(
            lock_timeout=5.0,
            max_concurrent=WORKERS,
            max_queue=WORKERS * 4,
        ),
    )
    try:
        _run_fleet(service, WARMUP_OPS, 0)  # page in lanes + WALs
        offset = WARMUP_OPS
        elapsed = 0.0
        for _ in range(TRIALS):
            elapsed += _run_fleet(service, OPS_PER_WORKER, offset)
            offset += OPS_PER_WORKER
        total = WORKERS * OPS_PER_WORKER * TRIALS
        committed = sum(
            len(service.committed_ops(shard)) for shard in range(shards)
        )
        assert committed == WORKERS * offset, \
            f"lost writes: {committed} != {WORKERS * offset}"
        return {
            "shards": shards,
            "ops": total,
            "seconds": elapsed,
            "ops_per_sec": total / elapsed,
        }
    finally:
        service.close()


def test_shard_scaling(report):
    from repro.obs.hooks import OBS

    results = []
    was_enabled, was_tracing = OBS.enabled, OBS.tracing
    OBS.disable()  # timed rounds take the production fast path
    try:
        with tempfile.TemporaryDirectory() as tmp:
            for shards in SHARD_COUNTS:
                results.append(_measure(shards, Path(tmp)))
    finally:
        if was_enabled:
            OBS.enable(tracing=was_tracing)

    baseline = results[0]["ops_per_sec"]
    for row in results:
        row["speedup"] = row["ops_per_sec"] / baseline
        # Into the canonical BENCH_ artifact as gauges: absolute
        # throughput is hardware-bound and must not be compared as a
        # counter, but the curve should travel with the payload.
        if OBS.enabled:
            OBS.gauge(f"bench.e19.shards.{row['shards']}.ops_per_sec",
                      row["ops_per_sec"])
            OBS.gauge(f"bench.e19.shards.{row['shards']}.speedup",
                      row["speedup"])

    report.line(
        f"E19 -- sharded write throughput ({WORKERS} writers x "
        f"{OPS_PER_WORKER} durable inserts, one cluster per writer, "
        f"clusters pinned round-robin)"
    )
    report.line()
    report.table(
        ("shards", "ops", "seconds", "ops/s", "speedup vs 1"),
        [(row["shards"], row["ops"], f"{row['seconds']:.3f}",
          f"{row['ops_per_sec']:.0f}", f"{row['speedup']:.2f}x")
         for row in results],
    )
    report.line()
    report.line(
        "shape: each lane fsyncs its own WAL, and fsync releases the "
        "GIL — aggregate throughput grows with lanes until the "
        "GIL-held engine/service CPU serialises the rest."
    )

    by_shards = {row["shards"]: row for row in results}
    # The headline gate: disjoint-cluster writes must scale. Timing
    # asserts are deliberately loose vs the measured ~3x so CI noise
    # does not flake them; the attached series carries the real curve.
    assert by_shards[2]["speedup"] > 1.2, \
        f"2 shards gained nothing: {by_shards[2]['speedup']:.2f}x"
    assert by_shards[4]["speedup"] >= 2.0, \
        f"4-shard speedup {by_shards[4]['speedup']:.2f}x below gate"
    assert by_shards[8]["speedup"] >= by_shards[4]["speedup"] * 0.8, \
        "8 shards collapsed below the 4-shard point"

    report.attach({
        "shard_scaling": {
            str(row["shards"]): {
                "ops_per_sec": row["ops_per_sec"],
                "speedup": row["speedup"],
                "seconds": row["seconds"],
                "ops": row["ops"],
            }
            for row in results
        },
        "workers": WORKERS,
        "ops_per_worker": OPS_PER_WORKER,
    })
