"""E1 — Table 1: conceptual schema S1.

Paper artifact: the five-function schema printed as Table 1. The bench
verifies that our schema-text layer reproduces the table verbatim
(round-tripping through parse/format) and times the parser.
"""

from __future__ import annotations

from repro.core.schema_text import format_schema, parse_schema
from repro.workloads.university import schema_s1

TABLE_1 = """\
1. grade: [student; course] -> letter_grade; (many-one)
2. score: [student; course] -> marks; (many-one)
3. cutoff: marks -> letter_grade; (many-one)
4. teach: faculty -> course; (many-many)
5. taught_by: course -> faculty; (many-many)"""


def test_table1_reproduced(report):
    schema = schema_s1()
    rendered = format_schema(schema, numbered=True)
    assert rendered == TABLE_1
    assert parse_schema(rendered) == schema
    report.line("E1 -- Table 1 (conceptual schema S1), reproduced:")
    report.line()
    report.block(rendered)


def test_bench_parse_table1(benchmark):
    schema = benchmark(parse_schema, TABLE_1)
    assert len(schema) == 5
