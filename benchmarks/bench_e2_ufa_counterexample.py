"""E2 — the Section 2.1 UFA counterexample (schema S2).

Paper artifact: teach / class_list / lecturer_of, where under the
intended semantics only lecturer_of is derived, yet each function is
syntactically and type-functionally equivalent to the composition of
the other two. The bench shows (a) AMS under the UFA removes *a*
function — the first eligible, teach, which is semantically wrong —
and (b) the on-line design aid with the knowing designer lands on the
correct separation. This is the paper's motivation for Method 2.1.
"""

from __future__ import annotations

from repro.core.design_aid import DesignSession, ScriptedDesigner
from repro.core.minimal_schema import minimal_schema_ams
from repro.workloads.university import schema_s2


def knowing_designer() -> ScriptedDesigner:
    return ScriptedDesigner(removals={
        frozenset({"teach", "class_list", "lecturer_of"}): "lecturer_of",
    })


def test_ams_misclassifies_under_broken_ufa(report):
    schema = schema_s2()
    result = minimal_schema_ams(schema)
    # AMS removes exactly one function; by declaration order it is
    # teach -- which the intended semantics say is base.
    assert result.derived_names == ("teach",)

    session = DesignSession(knowing_designer())
    session.add_all(schema)
    assert set(session.derived_schema.names) == {"lecturer_of"}
    assert set(session.base_schema.names) == {"teach", "class_list"}

    report.line("E2 -- UFA counterexample (schema S2)")
    report.line()
    report.block(str(schema))
    report.line()
    report.line("AMS under UFA classifies as derived : "
                + ", ".join(result.derived_names)
                + "   (semantically WRONG)")
    report.line("on-line design aid (designer knows) : "
                + ", ".join(session.derived_schema.names)
                + "   (correct)")
    report.line()
    report.line("conclusion: S2 cannot be admitted under the UFA; "
                "designer knowledge is required (Section 2.1).")


def test_bench_design_aid_on_s2(benchmark):
    def run():
        session = DesignSession(knowing_designer())
        session.add_all(schema_s2())
        return session.finish()

    outcome = benchmark(run)
    assert outcome.derived.names == ("lecturer_of",)
