"""E3 — the Section 2.3 design trace and Figure 1.

Paper artifact: eleven-step interactive design of the university
schema; five cycles reported; final dynamic function graph (Figure 1)
with base = {teach, class_list, score, cutoff, attendance,
attendance_eval} and derived = {taught_by, lecturer_of, grade}, plus
the four potential derivations (one invalidated by the designer).
"""

from __future__ import annotations

from repro.core.design_aid import DesignSession
from repro.workloads.university import (
    design_trace_designer,
    design_trace_functions,
)

FIGURE_1_BASE = {
    "teach", "class_list", "score", "cutoff",
    "attendance", "attendance_eval",
}
FIGURE_1_DERIVED = {"taught_by", "lecturer_of", "grade"}
CONFIRMED = {
    "taught_by": "teach^-1",
    "lecturer_of": "class_list^-1 o teach^-1",
    "grade": "score o cutoff",
}
INVALIDATED = ("grade", "attendance o attendance_eval")


def run_trace() -> DesignSession:
    session = DesignSession(design_trace_designer())
    session.add_all(design_trace_functions())
    return session


def test_figure1_reproduced(report):
    session = run_trace()
    outcome = session.finish()

    assert set(outcome.base.names) == FIGURE_1_BASE
    assert set(outcome.derived.names) == FIGURE_1_DERIVED
    for name, derivation in CONFIRMED.items():
        assert [str(d) for d in outcome.derivations[name]] == [derivation]
    potentials = {str(d) for d in session.potential_derivations("grade")}
    assert INVALIDATED[1] in potentials  # offered, then invalidated
    cycles_reported = sum(
        1 for event in session.log if event.kind == "cycle"
    )
    assert cycles_reported == 5

    report.line("E3 -- Section 2.3 design trace & Figure 1")
    report.line()
    report.block(session.trace())
    report.line()
    report.line("Figure 1 (final dynamic function graph):")
    graph = session.graph
    report.line(f"  nodes: {', '.join(str(n) for n in graph.nodes)}")
    for edge in graph.edges:
        report.line(f"  edge : {edge.function}")
    report.line()
    report.line("derivations reported on request of the designer:")
    for name, derivation in CONFIRMED.items():
        report.line(f"  {name} = {derivation}; (confirmed)")
    report.line(f"  {INVALIDATED[0]} = {INVALIDATED[1]}; "
                "(invalidated by the designer)")


def test_bench_full_trace(benchmark):
    session = benchmark(run_trace)
    assert set(session.derived_schema.names) == FIGURE_1_DERIVED
