"""E4 — Lemma 3: Algorithm AMS runs in O(n^2).

Paper artifact: a complexity claim, not a table — we turn it into a
measured series. AMS runs on tree+chord schemas of doubling size (the
chords are the derived functions; declared first, so every edge gets
real search work). The report prints time per size and the growth
exponent fitted on the log-log series; the test asserts the exponent
stays below 3 — i.e. the measured curve is compatible with the paper's
quadratic bound (the constant-factor BFS makes it roughly linear in
E^2/n on trees).
"""

from __future__ import annotations

import math
import time

from repro.bench.scale import scaled, scaled_sizes
from repro.core.minimal_schema import minimal_schema_ams
from repro.core.schema import Schema
from repro.workloads.generator import tree_schema_with_derived

# Scaled by REPRO_BENCH_SCALE (smoke runs); identity at scale 1.
# The log-log exponent fit needs several distinct sizes, which
# scaled_sizes guarantees by deduplicating after scaling.
SIZES = scaled_sizes((16, 32, 64, 128, 256), minimum=8)
_DERIVED_FRACTION = 4  # one chord per four types


def schema_for(n_types: int) -> Schema:
    schema = tree_schema_with_derived(
        n_types, n_types // _DERIVED_FRACTION, seed=7, max_path=6
    )
    chords = [f for f in schema if f.name.startswith("d")]
    tree = [f for f in schema if f.name.startswith("f")]
    return Schema(chords + tree)


def _time_once(schema: Schema) -> float:
    start = time.perf_counter()
    minimal_schema_ams(schema)
    return time.perf_counter() - start


def test_ams_scaling_is_subcubic(report):
    timings: list[tuple[int, int, float]] = []
    for n_types in SIZES:
        schema = schema_for(n_types)
        best = min(_time_once(schema) for _ in range(3))
        timings.append((n_types, len(schema), best))

    # Fit t = c * n^k on the last few points (least squares in log-log).
    xs = [math.log(n_functions) for _, n_functions, _ in timings[1:]]
    ys = [math.log(seconds) for _, _, seconds in timings[1:]]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    exponent = (
        sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        / sum((x - mean_x) ** 2 for x in xs)
    )

    report.line("E4 -- AMS scaling (Lemma 3: O(n^2))")
    report.line()
    report.table(
        ("object types", "functions n", "AMS time (ms)"),
        [(t, n, f"{seconds * 1e3:.2f}") for t, n, seconds in timings],
    )
    report.line()
    report.line(f"fitted growth exponent: n^{exponent:.2f} "
                "(paper's bound: n^2)")
    assert exponent < 3.0, f"super-cubic growth: n^{exponent:.2f}"


def test_bench_ams_midsize(benchmark):
    n_types = scaled(64, minimum=16)
    schema = schema_for(n_types)
    result = benchmark(minimal_schema_ams, schema)
    assert len(result.derived) == n_types // _DERIVED_FRACTION
