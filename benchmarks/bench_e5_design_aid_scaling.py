"""E5 — Method 2.1 complexity: cheap while acyclic, expensive once
cycles are kept.

Paper artifact (Section 2.2): "If the function graph is maintained as
an acyclic graph, then addition of a new function will result in at
most one cycle ... thus method [2.1] takes O(n^3) time. In the case of
the function graph being cyclic, addition of an edge may result in an
exponential number of cycles."

Two measured series:

* acyclic regime — chains of growing length where every chord addition
  closes exactly one cycle (the AutoDesigner removes it, keeping the
  graph acyclic): cycles-per-addition stays 1;
* cyclic regime — theta graphs with a growing number of parallel
  paths, a designer that *keeps* every cycle: the closing edge raises
  one report per parallel path, and total session time grows sharply.
"""

from __future__ import annotations

import time

from repro.core.design_aid import AutoDesigner, CallbackDesigner, DesignSession
from repro.workloads.generator import cyclic_design_schema
from repro.core.schema import FunctionDef, Schema
from repro.core.types import ObjectType, TypeFunctionality

MM = TypeFunctionality.MANY_MANY


def chain_with_chords(length: int) -> Schema:
    """T0 - T1 - ... - Tn chain plus one chord per three hops; each
    chord closes exactly one cycle when added."""
    types = [ObjectType(f"T{i}") for i in range(length + 1)]
    schema = Schema()
    for i in range(length):
        schema.add(FunctionDef(f"c{i}", types[i], types[i + 1], MM))
    for i in range(0, length - 2, 3):
        schema.add(FunctionDef(f"chord{i}", types[i], types[i + 2], MM))
    return schema


def run_acyclic(length: int) -> tuple[int, int, float]:
    schema = chain_with_chords(length)
    session = DesignSession(AutoDesigner())
    start = time.perf_counter()
    session.add_all(schema)
    elapsed = time.perf_counter() - start
    cycles = sum(1 for e in session.log if e.kind == "cycle")
    chords = sum(1 for n in schema.names if n.startswith("chord"))
    return cycles, chords, elapsed


def run_cyclic(n_paths: int) -> tuple[int, float]:
    schema = cyclic_design_schema(n_paths, path_length=2)
    keeper = CallbackDesigner(lambda report: None)  # keep every cycle
    session = DesignSession(keeper)
    start = time.perf_counter()
    session.add_all(schema)
    elapsed = time.perf_counter() - start
    cycles = sum(1 for e in session.log if e.kind == "cycle")
    return cycles, elapsed


def test_acyclic_regime_one_cycle_per_addition(report):
    rows = []
    for length in (9, 18, 36, 72):
        cycles, chords, elapsed = run_acyclic(length)
        rows.append((length, chords, cycles, f"{elapsed * 1e3:.2f}"))
        # At most one cycle per addition; here exactly one per chord.
        assert cycles == chords
    report.line("E5 -- Method 2.1 cost")
    report.line()
    report.line("acyclic regime (each chord closes exactly one cycle):")
    report.table(
        ("chain length", "chords added", "cycles reported", "time (ms)"),
        rows,
    )


def test_cyclic_regime_cycles_grow(report):
    rows = []
    previous_cycles = 0
    for n_paths in (2, 4, 8, 16):
        cycles, elapsed = run_cyclic(n_paths)
        rows.append((n_paths, cycles, f"{elapsed * 1e3:.2f}"))
        # The closing edge alone reports one cycle per parallel path.
        assert cycles >= n_paths
        assert cycles >= previous_cycles
        previous_cycles = cycles
    report.line()
    report.line("cyclic regime (designer keeps every cycle; the closing")
    report.line("edge must be reported once per parallel path):")
    report.table(
        ("parallel paths", "cycles reported", "time (ms)"), rows
    )
    report.line()
    report.line("shape check: cycle reports grow with graph cyclicity, "
                "as Section 2.2 warns.")


def test_bench_acyclic_session(benchmark):
    schema = chain_with_chords(36)

    def run():
        session = DesignSession(AutoDesigner())
        session.add_all(schema)
        return session

    session = benchmark(run)
    assert session.graph.is_acyclic()


def test_bench_cyclic_session(benchmark):
    schema = cyclic_design_schema(8, path_length=2)

    def run():
        session = DesignSession(CallbackDesigner(lambda report: None))
        session.add_all(schema)
        return session

    session = benchmark(run)
    assert not session.graph.is_acyclic()
