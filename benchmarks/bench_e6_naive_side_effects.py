"""E6 — the Section 3 motivating example: naive translations of a
derived delete have side effects; the NC mechanism has none.

Paper artifact: "consider u3: DEL(pupil, <euclid, john>). One may
attempt to achieve the desired effect by performing either DEL(teach,
<euclid, math>) or DEL(class_list, <math, john>). However, observe
that both of these have the undesirable side effect of deleting, from
pupil, <euclid, bill> and <laplace, john>, respectively."

The bench replays both naive translations and our derived delete on
the Section 3 instance, and reports exactly which pupil facts each
approach loses.
"""

from __future__ import annotations

from repro.fdb.database import FunctionalDatabase
from repro.fdb.evaluate import derived_extension
from repro.fdb.logic import Truth
from repro.workloads.university import pupil_database

TARGET = ("euclid", "john")


def surviving_true_pupils(db: FunctionalDatabase) -> set[tuple]:
    return {
        pair for pair, truth in derived_extension(db, "pupil").items()
        if truth is Truth.TRUE
    }


def run_naive(table: str, pair: tuple) -> set[tuple]:
    db = pupil_database()
    before = surviving_true_pupils(db)
    db.delete(table, *pair)
    return before - surviving_true_pupils(db) - {TARGET}


def run_ours() -> tuple[set[tuple], set[tuple]]:
    db = pupil_database()
    before = surviving_true_pupils(db)
    db.delete("pupil", *TARGET)
    extension = derived_extension(db, "pupil")
    lost = {
        pair for pair in before - {TARGET}
        if pair not in extension   # actually gone (false)
    }
    weakened = {
        pair for pair, truth in extension.items()
        if truth is Truth.AMBIGUOUS
    }
    return lost, weakened


def test_side_effects_match_paper(report):
    lost_via_teach = run_naive("teach", ("euclid", "math"))
    lost_via_class = run_naive("class_list", ("math", "john"))
    assert lost_via_teach == {("euclid", "bill")}
    assert lost_via_class == {("laplace", "john")}

    lost_ours, weakened = run_ours()
    assert lost_ours == set()
    assert weakened == {("euclid", "bill"), ("laplace", "john")}

    report.line("E6 -- DEL(pupil, <euclid, john>): translation side "
                "effects (Section 3)")
    report.line()
    report.table(
        ("translation", "pupil facts lost (beyond target)",
         "facts weakened to ambiguous"),
        [
            ("DEL(teach, <euclid, math>)",
             "{<euclid, bill>}", "-"),
            ("DEL(class_list, <math, john>)",
             "{<laplace, john>}", "-"),
            ("NC semantics (this paper)", "{}",
             "{<euclid, bill>, <laplace, john>}"),
        ],
    )
    report.line()
    report.line("shape: both naive translations lose exactly the facts "
                "the paper names; the NC update loses none.")


def test_bench_derived_delete(benchmark):
    def run():
        db = pupil_database()
        db.delete("pupil", *TARGET)
        return db

    db = benchmark(run)
    assert len(db.ncs) == 1
