"""E7 — the Section 3.1 view-update comparison.

Paper artifact: r1(AB), r2(BC), r3(CD), v1(AD) = pi_AD(r1 join r2 join
r3); under [6] (Dayal-Bernstein) DEL(v1, <a1, d1>) translates to
DEL(r1, <a1, b1>); DEL(r1, <a1, b2>); under [9] (Fagin-Ullman-Vardi)
to DEL(r3, <c1, d1>). Our reconstruction must produce exactly those
translations, and the functional-database treatment must instead
record the two negated conjunctions of footnotes 3-4.
"""

from __future__ import annotations

from repro.core.derivation import Derivation
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality
from repro.fdb.database import FunctionalDatabase
from repro.fdb.logic import Truth
from repro.relational.dayal_bernstein import DayalBernsteinTranslator
from repro.relational.fuv import FUVTranslator
from repro.relational.translate import measure_side_effects
from repro.workloads.university import section_31_relational


def functional_31() -> FunctionalDatabase:
    MM = TypeFunctionality.MANY_MANY
    A, B, C, D = (ObjectType(n) for n in "ABCD")
    db = FunctionalDatabase()
    functions = [
        FunctionDef("r1", A, B, MM),
        FunctionDef("r2", B, C, MM),
        FunctionDef("r3", C, D, MM),
    ]
    for f in functions:
        db.declare_base(f)
    db.declare_derived(FunctionDef("v1", A, D, MM),
                       Derivation.of(*functions))
    db.load("r1", [("a1", "b1"), ("a1", "b2")])
    db.load("r2", [("b1", "c1"), ("b2", "c1")])
    db.load("r3", [("c1", "d1")])
    return db


def test_baseline_translations_match_paper(report):
    db, view, target = section_31_relational()

    db_translation = DayalBernsteinTranslator().translate(db, view, target)
    assert str(db_translation) == "DEL(r1, <a1, b1>); DEL(r1, <a1, b2>)"

    fuv_translation = FUVTranslator().translate(db, view, target)
    assert str(fuv_translation) == "DEL(r3, <c1, d1>)"

    fdb = functional_31()
    fdb.delete("v1", "a1", "d1")
    ncs = sorted(str(nc) for nc in fdb.ncs)
    assert ncs == [
        "g1: NOT(<r1, a1, b1> AND <r2, b1, c1> AND <r3, c1, d1>)",
        "g2: NOT(<r1, a1, b2> AND <r2, b2, c1> AND <r3, c1, d1>)",
    ]
    assert fdb.truth_of("v1", "a1", "d1") is Truth.FALSE
    assert sum(len(fdb.table(n)) for n in fdb.base_names) == 5

    effects = [
        measure_side_effects(db, DayalBernsteinTranslator(), view, target),
        measure_side_effects(db, FUVTranslator(), view, target),
    ]
    report.line("E7 -- Section 3.1: DEL(v1, <a1, d1>)")
    report.line()
    report.table(
        ("semantics", "translation", "base deletions"),
        [
            ("[6] Dayal-Bernstein", str(db_translation),
             effects[0].base_deletions),
            ("[9] Fagin-Ullman-Vardi", str(fuv_translation),
             effects[1].base_deletions),
            ("this paper", "negated conjunctions g1, g2", 0),
        ],
    )
    report.line()
    for nc in ncs:
        report.line("  " + nc)
    report.line()
    report.line("the paper's footnote: the update only implies "
                "NOT(conj of each chain) -- which is precisely g1, g2.")


def test_bench_dayal_bernstein(benchmark):
    db, view, target = section_31_relational()
    translation = benchmark(
        DayalBernsteinTranslator().translate, db, view, target
    )
    assert len(translation.deletions) == 2


def test_bench_fuv(benchmark):
    db, view, target = section_31_relational()
    translation = benchmark(FUVTranslator().translate, db, view, target)
    assert len(translation.deletions) == 1


def test_bench_functional_delete(benchmark):
    def run():
        db = functional_31()
        db.delete("v1", "a1", "d1")
        return db

    db = benchmark(run)
    assert len(db.ncs) == 2
