"""E8 — the Section 4.2 worked example: the five update tables.

Paper artifact: the central worked example — the pupil database taken
through u1..u5, with the paper printing the full state (truth flags,
NCLs, the null n1, starred ambiguous pupil facts) after each update.
The bench replays the sequence, asserts each state row for row, and
writes the five rendered tables for eyeball comparison with the paper.
"""

from __future__ import annotations

from repro.fdb.evaluate import derived_extension
from repro.fdb.logic import Truth
from repro.fdb.render import render_state
from repro.fdb.updates import apply_update
from repro.workloads.university import pupil_database, section_42_updates

T, A = Truth.TRUE, Truth.AMBIGUOUS

# Expected stored rows (x, y, flag, NCL) and pupil extensions after
# each update, straight from the paper's five tables.
EXPECTED = [
    {  # u1: DEL(pupil, <euclid, john>)
        "teach": [("euclid", "math", "A", "{g1}"),
                  ("laplace", "math", "T", "{}")],
        "class_list": [("math", "john", "A", "{g1}"),
                       ("math", "bill", "T", "{}")],
        "pupil": {("euclid", "bill"): A, ("laplace", "john"): A,
                  ("laplace", "bill"): T},
    },
    {  # u2: INS(pupil, <gauss, bill>)
        "teach": [("euclid", "math", "A", "{g1}"),
                  ("laplace", "math", "T", "{}"),
                  ("gauss", "n1", "T", "{}")],
        "class_list": [("math", "john", "A", "{g1}"),
                       ("math", "bill", "T", "{}"),
                       ("n1", "bill", "T", "{}")],
        "pupil": {("euclid", "bill"): A, ("laplace", "john"): A,
                  ("laplace", "bill"): T, ("gauss", "bill"): T,
                  ("gauss", "john"): A},
    },
    {  # u3: DEL(teach, <euclid, math>)
        "teach": [("laplace", "math", "T", "{}"),
                  ("gauss", "n1", "T", "{}")],
        "class_list": [("math", "john", "A", "{}"),
                       ("math", "bill", "T", "{}"),
                       ("n1", "bill", "T", "{}")],
        "pupil": {("laplace", "john"): A, ("laplace", "bill"): T,
                  ("gauss", "bill"): T, ("gauss", "john"): A},
    },
    {  # u4: INS(class_list, <math, john>)
        "teach": [("laplace", "math", "T", "{}"),
                  ("gauss", "n1", "T", "{}")],
        "class_list": [("math", "john", "T", "{}"),
                       ("math", "bill", "T", "{}"),
                       ("n1", "bill", "T", "{}")],
        "pupil": {("laplace", "john"): T, ("laplace", "bill"): T,
                  ("gauss", "bill"): T, ("gauss", "john"): A},
    },
    {  # u5: INS(teach, <gauss, math>)
        "teach": [("laplace", "math", "T", "{}"),
                  ("gauss", "n1", "T", "{}"),
                  ("gauss", "math", "T", "{}")],
        "class_list": [("math", "john", "T", "{}"),
                       ("math", "bill", "T", "{}"),
                       ("n1", "bill", "T", "{}")],
        "pupil": {("laplace", "john"): T, ("laplace", "bill"): T,
                  ("gauss", "bill"): T, ("gauss", "john"): T},
    },
]


def test_trace_matches_paper_tables(report):
    db = pupil_database()
    updates = section_42_updates()
    report.line("E8 -- Section 4.2 update trace, state after each update")
    report.line()
    report.line("initial instance:")
    report.block(render_state(db))
    for update, expected in zip(updates, EXPECTED):
        apply_update(db, update)
        assert db.table("teach").rows() == expected["teach"], str(update)
        assert db.table("class_list").rows() == expected["class_list"], (
            str(update)
        )
        assert derived_extension(db, "pupil") == expected["pupil"], (
            str(update)
        )
        report.line()
        report.line(f"after {update}:")
        report.block(render_state(db))
    report.line()
    report.line("every flag, NCL entry, null and star matches the "
                "paper's five tables.")


def test_bench_full_sequence(benchmark):
    updates = section_42_updates()

    def run():
        db = pupil_database()
        for update in updates:
            apply_update(db, update)
        return db

    db = benchmark(run)
    assert derived_extension(db, "pupil") == EXPECTED[-1]["pupil"]
