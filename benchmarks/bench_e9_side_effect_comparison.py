"""E9 — side-effect comparison at scale.

Generalizes E6/E7 into a measured experiment: random chain instances
of growing length, represented both relationally (chain view + the two
baseline translators) and functionally (derived function + NC
semantics). For a sample of view-tuple deletes we record, per
semantics: base tuples deleted, extra view tuples lost, and rejected
updates; for ours additionally the partial information introduced
(NCs / facts weakened to ambiguous).

Expected shape (the paper's argument): the baselines delete base facts
on every update and increasingly damage the view as fan-out grows; the
NC semantics never deletes anything and never loses a view fact —
ambiguity is the price, paid in annotations rather than in data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fdb.database import FunctionalDatabase
from repro.fdb.evaluate import derived_extension
from repro.fdb.logic import Truth
from repro.fdb.persistence import dumps, loads
from repro.relational.dayal_bernstein import DayalBernsteinTranslator
from repro.relational.fuv import FUVTranslator
from repro.relational.keller import KellerTranslator
from repro.relational.translate import measure_side_effects
from repro.workloads.generator import paired_chain_workload

CONFIGS = ((2, 18), (3, 16), (4, 14))   # (chain length k, rows per table)
SAMPLE = 6                               # deletes measured per config


@dataclass
class Tally:
    updates: int = 0
    base_deletions: int = 0
    view_losses: int = 0
    rejected: int = 0

    def mean(self, total: int) -> float:
        return total / self.updates if self.updates else 0.0


def fdb_copy(db: FunctionalDatabase) -> FunctionalDatabase:
    return loads(dumps(db))


def true_view(db: FunctionalDatabase) -> set[tuple]:
    return {
        pair for pair, truth in derived_extension(db, "v").items()
        if truth is Truth.TRUE
    }


def run_comparison():
    tallies = {
        "dayal-bernstein": Tally(),
        "fagin-ullman-vardi": Tally(),
        "keller (best dialogue)": Tally(),
        "nc-semantics (ours)": Tally(),
    }
    ambiguity_introduced = 0
    for index, (k, rows) in enumerate(CONFIGS):
        relational, functional, targets = paired_chain_workload(
            k, rows, seed=100 + index
        )
        for target in targets[:SAMPLE]:
            translators = (
                DayalBernsteinTranslator(),
                FUVTranslator(),
                KellerTranslator(),
            )
            labels = {
                "keller": "keller (best dialogue)",
            }
            for translator in translators:
                effects = measure_side_effects(
                    relational, translator, "v", target
                )
                tally = tallies[
                    labels.get(translator.name, translator.name)
                ]
                tally.updates += 1
                if not effects.accepted:
                    tally.rejected += 1
                    continue
                tally.base_deletions += effects.base_deletions
                tally.view_losses += effects.view_losses

            working = fdb_copy(functional)
            before_counts = {
                name: len(working.table(name))
                for name in working.base_names
            }
            before_view = true_view(working)
            working.delete("v", *target)
            tally = tallies["nc-semantics (ours)"]
            tally.updates += 1
            tally.base_deletions += sum(
                before_counts[name] - len(working.table(name))
                for name in working.base_names
            )
            after = derived_extension(working, "v")
            tally.view_losses += len(
                (before_view - {target}) - set(after)
            )
            ambiguity_introduced += working.counts()["ambiguous_facts"]
    return tallies, ambiguity_introduced


def test_side_effect_comparison(report):
    tallies, ambiguity = run_comparison()
    ours = tallies["nc-semantics (ours)"]
    assert ours.base_deletions == 0
    assert ours.view_losses == 0
    assert ours.rejected == 0
    for name in ("dayal-bernstein", "fagin-ullman-vardi",
                 "keller (best dialogue)"):
        accepted = tallies[name].updates - tallies[name].rejected
        if accepted:
            assert tallies[name].base_deletions > 0

    report.line("E9 -- side effects of view deletes at scale")
    report.line(f"(chain lengths {[k for k, _ in CONFIGS]}, "
                f"{SAMPLE} deletes per config)")
    report.line()
    report.table(
        ("semantics", "updates", "rejected",
         "base deletions (mean)", "extra view losses (mean)"),
        [
            (
                name,
                tally.updates,
                tally.rejected,
                f"{tally.mean(tally.base_deletions):.2f}",
                f"{tally.mean(tally.view_losses):.2f}",
            )
            for name, tally in tallies.items()
        ],
    )
    report.line()
    report.line(f"partial information introduced by ours: "
                f"{ambiguity} fact flags set to ambiguous "
                "(resolvable by later inserts/deletes)")
    report.line()
    report.line("shape: ours is the only semantics with zero deletions "
                "and zero view damage, matching the paper's claim.")


def test_bench_ours_on_chain_delete(benchmark):
    _, functional, targets = paired_chain_workload(3, 16, seed=101)
    snapshot = dumps(functional)
    target = targets[0]

    def run():
        db = loads(snapshot)
        db.delete("v", *target)
        return db

    db = benchmark(run)
    assert db.counts()["ncs"] >= 1
