"""Shared infrastructure for the experiment benches.

Each bench module reproduces one paper artifact (see DESIGN.md's
experiment index). Report writing is shared with the standalone runner
(``python -m repro.bench``): the ``report`` fixture hands each test a
:class:`repro.bench.report.Report`, flushed through one session-wide
:class:`repro.bench.report.ReportStore` into
``benchmarks/results/<exp_id>.json`` — the primary artifact, carrying
the structured report blocks plus whatever the bench attached (metric
snapshots, series) — and ``results/<exp_id>.txt``, which is a pure
render of that JSON. Running a bench under pytest or under the runner
produces identical reports.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.report import Report, ReportStore

RESULTS_DIR = Path(__file__).resolve().parent / "results"

_store = ReportStore(RESULTS_DIR)


class ReportWriter(Report):
    """A :class:`Report` that knows how to flush itself into the
    session store (the API the bench modules were written against)."""

    def flush(self) -> Path:
        return _store.flush(self)


@pytest.fixture
def report(request) -> ReportWriter:
    """A report writer named after the bench module (e.g. e4_ams_scaling)."""
    module = request.module.__name__
    exp_id = module.split(".")[-1].removeprefix("bench_")
    writer = ReportWriter(exp_id)
    yield writer
    if writer.blocks or writer.data:
        path = writer.flush()
        # Also echo to the terminal when -s is passed.
        print(f"\n[{writer.exp_id}] report written to {path}")
