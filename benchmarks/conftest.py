"""Shared infrastructure for the experiment benches.

Each bench module reproduces one paper artifact (see DESIGN.md's
experiment index). Besides the pytest-benchmark timings, every bench
writes a human-readable report — the same rows/series the paper
reports — into ``benchmarks/results/<exp_id>.txt`` via the ``report``
fixture, so `pytest benchmarks/ --benchmark-only` leaves comparable
artifacts behind.

Each report also lands as machine-readable JSON in
``benchmarks/results/<exp_id>.json``: the report lines plus whatever
the bench attached via :attr:`ReportWriter.data` — typically a
:func:`repro.obs.export.snapshot` of runtime metrics from an
instrumented (un-timed) replay of the workload, so CI can assert on
counters without parsing text.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


class ReportWriter:
    """Collects lines and writes them to results/<exp_id>.txt (and,
    with any attached ``data``, results/<exp_id>.json)."""

    def __init__(self, exp_id: str) -> None:
        self.exp_id = exp_id
        self.lines: list[str] = []
        self.data: dict = {}

    def attach(self, mapping: dict) -> None:
        """Merge extra keys into the JSON payload (e.g. an
        observability snapshot)."""
        self.data.update(mapping)

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def block(self, text: str) -> None:
        self.lines.extend(text.splitlines())

    def table(self, headers: tuple[str, ...], rows: list[tuple]) -> None:
        str_rows = [tuple(str(c) for c in row) for row in rows]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in str_rows))
            if str_rows else len(headers[i])
            for i in range(len(headers))
        ]
        def fmt(cells):
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
        self.line(fmt(headers))
        self.line(fmt(tuple("-" * w for w in widths)))
        for row in str_rows:
            self.line(fmt(row))

    def flush(self) -> Path:
        """Write this test's lines to the experiment's report file.

        Several tests of one bench module share the file: the first
        flush of a session truncates it, later flushes append. Files of
        experiments whose report tests did not run this session (e.g.
        under ``--benchmark-only``) are left untouched.
        """
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.exp_id}.txt"
        mode = "a" if self.exp_id in _written_this_session else "w"
        _written_this_session.add(self.exp_id)
        with path.open(mode, encoding="utf-8") as handle:
            handle.write("\n".join(self.lines) + "\n")
        self._flush_json()
        return path

    def _flush_json(self) -> Path:
        """Rewrite results/<exp_id>.json with everything flushed this
        session: report lines accumulate across the module's tests, data
        keys merge (later flushes win on conflicts)."""
        payload = _json_this_session.setdefault(
            self.exp_id, {"exp_id": self.exp_id, "report": []}
        )
        payload["report"].extend(self.lines)
        payload.update(self.data)
        json_path = RESULTS_DIR / f"{self.exp_id}.json"
        json_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str)
            + "\n",
            encoding="utf-8",
        )
        return json_path


_written_this_session: set[str] = set()
_json_this_session: dict[str, dict] = {}


@pytest.fixture
def report(request) -> ReportWriter:
    """A report writer named after the bench module (e.g. e4_ams_scaling)."""
    module = request.module.__name__
    exp_id = module.split(".")[-1].removeprefix("bench_")
    writer = ReportWriter(exp_id)
    yield writer
    if writer.lines:
        path = writer.flush()
        # Also echo to the terminal when -s is passed.
        print(f"\n[{writer.exp_id}] report written to {path}")
