"""Living with ambiguity: journaling, possible worlds, and audits.

Run:  python examples/ambiguity_analysis.py

The paper's updates deliberately *create* partial information instead
of guessing. This example shows the tooling a registrar would use to
manage that ambiguity over time:

1. updates run through a :class:`repro.fdb.journal.Journal`, so any
   surprising consequence can be undone;
2. :mod:`repro.fdb.worlds` quantifies the ambiguity — how many ways
   could the real world be, and how likely is each suspect fact?
   (Section 5's "probabilistic logics" question);
3. :mod:`repro.fdb.audit` cross-checks multiple derivations of the
   same function against the instance.
"""

from __future__ import annotations

from repro.core.derivation import Derivation
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality
from repro.fdb.audit import audit_derivations
from repro.fdb.database import FunctionalDatabase
from repro.fdb.journal import Journal
from repro.fdb.updates import Update
from repro.fdb.worlds import analyze, derived_marginal
from repro.workloads.university import pupil_database


def heading(text: str) -> None:
    print(f"\n=== {text} ===")


def journaled_updates() -> None:
    heading("1. journaled updates")
    journal = Journal(pupil_database())
    journal.execute(Update.delete("pupil", "euclid", "john"))
    journal.execute(Update.ins("pupil", "gauss", "bill"))
    print(journal.describe())

    print("\noops -- the gauss insert was a mistake; undo it:")
    undone = journal.undo()
    print(f"  undone {undone}; teach is back to "
          f"{len(journal.db.table('teach'))} rows and the null counter "
          f"rewound to n{journal.db.nulls.next_index}")

    print("actually it was fine; redo:")
    journal.redo()
    print(f"  teach rows now: "
          f"{[str(f) for f in journal.db.table('teach').facts()]}")


def world_analysis() -> None:
    heading("2. possible-worlds analysis")
    db = pupil_database()
    db.delete("pupil", "euclid", "john")
    print("after DEL(pupil, <euclid, john>):")
    print(analyze(db))
    print()
    for pair in (("euclid", "john"), ("euclid", "bill"),
                 ("laplace", "bill")):
        probability = derived_marginal(db, "pupil", *pair)
        print(f"  P(pupil{pair} derivable) = {probability:.3f}")
    print("\nthe marginals refine true/ambiguous/false into [0, 1] -- "
          "Section 5's probabilistic reading of ambiguity.")


def derivation_audit() -> None:
    heading("3. auditing rival derivations")
    # Suppose the designer had confirmed BOTH derivations of grade.
    SC = ObjectType("[student; course]")
    L, M, P = (ObjectType(n) for n in
               ("letter_grade", "marks", "attn_percentage"))
    MO = TypeFunctionality.MANY_ONE
    db = FunctionalDatabase()
    score = FunctionDef("score", SC, M, MO)
    cutoff = FunctionDef("cutoff", M, L, MO)
    attendance = FunctionDef("attendance", SC, P, MO)
    attendance_eval = FunctionDef("attendance_eval", P, L, MO)
    for f in (score, cutoff, attendance, attendance_eval):
        db.declare_base(f)
    db.declare_derived(
        FunctionDef("grade", SC, L, MO),
        [Derivation.of(score, cutoff),
         Derivation.of(attendance, attendance_eval)],
    )
    db.load("score", [(("john", "math"), 91)])
    db.load("cutoff", [(91, "A")])
    db.load("attendance", [(("john", "math"), 55)])
    db.load("attendance_eval", [(55, "C")])

    print("grade via scores says A; grade via attendance says C:")
    for finding in audit_derivations(db):
        print(f"  {finding}")
    print("\nexactly the inconsistency the paper's Section 2.3 designer "
          "avoided by invalidating grade = attendance o attendance_eval.")


def main() -> None:
    journaled_updates()
    world_analysis()
    derivation_audit()


if __name__ == "__main__":
    main()
