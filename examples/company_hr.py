"""An HR database: false twins, policies, and entity loops.

Run:  python examples/company_hr.py

The company workload stresses what the university example cannot:

* two functions with *identical* signatures and functionalities —
  ``reports_to`` and ``dept_head_of: employee -> manager`` — where only
  one is derived. The Unique Form Assumption would conflate them; the
  design dialogue keeps them apart;
* one-one functions (``manages``, ``badge``), whose functional
  dependencies resolve the nulls a derived insert creates in *both*
  directions;
* integrity policies guarding updates, and Daplex-style loops asking
  HR questions.
"""

from __future__ import annotations

from repro.core.design_aid import DesignSession
from repro.fdb.constraints import resolve_nulls
from repro.lang.interp import Interpreter
from repro.workloads.company import (
    company_database,
    company_design_order,
    company_designer,
)


def heading(text: str) -> None:
    print(f"\n=== {text} ===")


def design_dialogue() -> None:
    heading("design: the false twin must be kept")
    session = DesignSession(company_designer())
    for function in company_design_order():
        mark = len(session.log)
        session.add(function)
        for event in session.log[mark:]:
            print(event.describe())
    print()
    print(session.finish().summary())


def run_hr() -> None:
    heading("HR operations")
    db = company_database()

    print("reports_to(alice) vs dept_head_of(alice):")
    print("  reports_to  :", db.extension("reports_to").get(
        ("alice", "erin")))
    print("  dept_head_of:",
          {y: str(t) for (x, y), t in
           db.extension("dept_head_of").items() if x == "alice"})
    print("same signature, different answers -- the twin is real.")

    heading("a derived hire and its resolution")
    db.insert("dept_head_of", "frank", "erin")
    print("INS(dept_head_of, <frank, erin>) materialized:")
    for fact in db.table("works_in").facts():
        if str(fact.x) == "frank":
            print(f"  works_in: {fact}")
    for fact in db.table("manages").facts():
        if str(fact.x) == "erin":
            print(f"  manages : {fact}")
    substitutions = resolve_nulls(db)
    print("one-one manages already places erin in research, so:")
    for substitution in substitutions:
        print(f"  {substitution}")
    print("  works_in now:",
          [str(f.pair) for f in db.table("works_in").facts()
           if str(f.x) == "frank"])


def hr_console() -> None:
    heading("the same database through the console language")
    interp = Interpreter()
    script = """
        add works_in: employee -> department (many-one);
        add manages: manager -> department (one-one);
        add badge: employee -> badge_id (one-one);
        commit;
        insert works_in(alice, sales);
        insert works_in(bob, sales);
        insert works_in(carol, research);
        insert manages(dave, sales);
        insert manages(erin, research);
        insert badge(alice, b1);
        insert badge(bob, b2);
        constraint card badge per domain max 1;
        guard on;
        insert badge(alice, b99);
        """
    for line in interp.execute(script):
        print(line)
    for line in interp.execute(
        "for each e in employee such that works_in(e) = sales "
        "print works_in, badge;"
    ):
        print(line)
    for line in interp.execute(
        "query (works_in o manages^-1)(carol);"
    ):
        print("carol's department head:", line.strip())


def main() -> None:
    design_dialogue()
    run_hr()
    hr_console()


if __name__ == "__main__":
    main()
