"""Durability: snapshots, write-ahead logging, crash recovery.

Run:  python examples/durability.py

Base functions are "extensionally stored" — so the store had better
survive a crash. This example runs the Section 4.2 update sequence
through a checksummed write-ahead log, simulates a crash mid-write (a
torn final log line), and recovers: the partial information —
ambiguous flags, the negated conjunction, the null-valued chain —
comes back exactly, because update application is deterministic from
the persisted counters. It then flips a byte of an interior record to
show the CRC catching silent corruption (strict vs salvage recovery),
and kills the process at a fault point mid-checkpoint to show the
atomic snapshot-then-truncate ordering at work. docs/DURABILITY.md
has the full contract; `python -m repro.faults` runs the whole crash
matrix.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.errors import PersistenceError
from repro.faults import FAULTS, CrashFault, SimulatedCrash
from repro.fdb import persistence
from repro.fdb.render import render_state
from repro.fdb.wal import LoggedDatabase, checkpoint, recover
from repro.workloads.university import pupil_database, section_42_updates


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="fdb-durability-"))
    snapshot = workdir / "snapshot.json"
    log_path = workdir / "updates.log"

    # Boot: snapshot the initial instance, open the log.
    db = pupil_database()
    persistence.save(db, snapshot)
    logged = LoggedDatabase(db, log_path)
    print(f"working under {workdir}")

    # Run u1..u3 through the WAL.
    updates = section_42_updates()
    for update in updates[:3]:
        logged.execute(update)
        print(f"logged+applied: {update}")

    # Checkpoint: fold the log into a fresh snapshot.
    checkpoint(logged, snapshot)
    print("checkpoint written; log truncated")

    # u4, u5 after the checkpoint...
    for update in updates[3:]:
        logged.execute(update)
        print(f"logged+applied: {update}")

    # ... and then the process dies mid-write of one more update.
    with log_path.open("a", encoding="utf-8") as handle:
        handle.write('{"kind": "DEL", "function": "tea')
    print("simulated crash: torn final log line")

    # A new process recovers from snapshot + log.
    report = recover(snapshot, log_path)
    print(report)

    print("\nrecovered state (matches the paper's final u5 table):")
    print(render_state(report.db))

    same = all(
        report.db.table(name).rows() == logged.db.table(name).rows()
        for name in logged.db.base_names
    )
    print(f"\nrecovered state identical to pre-crash state: {same}")

    # -- silent corruption: the CRC catches what parsing cannot ------
    import json

    lines = log_path.read_text(encoding="utf-8").splitlines()
    record = json.loads(lines[1])  # first entry after the header
    record["entry"]["function"] = "taech"  # bit rot, still valid JSON
    lines[1] = json.dumps(record, sort_keys=True)
    corrupt_path = workdir / "corrupt.log"
    corrupt_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    try:
        recover(snapshot, corrupt_path, policy="strict")
    except PersistenceError as exc:
        print(f"\nstrict recovery refuses the flipped byte: {exc}")
    salvaged = recover(snapshot, corrupt_path, policy="salvage")
    print(f"salvage recovery: {salvaged}")

    # -- crash mid-checkpoint: snapshot durable, log untruncated -----
    FAULTS.arm("wal.checkpoint.after-snapshot", CrashFault())
    try:
        checkpoint(logged, snapshot)
    except SimulatedCrash as exc:
        print(f"\n{exc}")
    finally:
        FAULTS.disarm_all()
    report = recover(snapshot, log_path)
    print(f"after the half-finished checkpoint: {report}")
    print("(the already-folded records were skipped by sequence "
          "number, not replayed twice)")


if __name__ == "__main__":
    main()
