"""Driving the design aid through its surface language.

Run:  python examples/interactive_script.py

The same tool a human reaches over ``fdb-repl`` is scriptable: this
example feeds a whole design-and-update session to the interpreter and
prints the transcript. (For the real interactive dialogue — the system
reporting cycles and a person answering — run ``fdb-repl`` and type the
``add`` statements yourself.)
"""

from __future__ import annotations

from repro.core.design_aid import AutoDesigner
from repro.lang.interp import Interpreter

SCRIPT = """
# -- design phase: the paper's university schema -------------------
add teach: faculty -> course (many-many);
add taught_by: course -> faculty (many-many);      # cycle! -> derived
add class_list: course -> student (many-many);
add grade: [student; course] -> letter_grade (many-one);
add score: [student; course] -> marks (many-one);
add cutoff: marks -> letter_grade (many-one);      # cycle! grade -> derived
design;
commit;

# -- data phase -----------------------------------------------------
insert teach(euclid, geometry);
insert class_list(geometry, john);
insert score((john, geometry), 91);
insert cutoff(91, A);

# derived queries and updates
truth taught_by(geometry, euclid);
query (teach o class_list)(euclid);
truth grade((john, geometry), A);
delete grade((john, geometry), A);
ncs;
truth grade((john, geometry), A);
metrics;
"""


def main() -> None:
    interpreter = Interpreter(AutoDesigner())
    for line in interpreter.execute(SCRIPT):
        print(line)


if __name__ == "__main__":
    main()
