"""Watching update propagation: tracing, metrics, and profiling.

Run:  python examples/observability_demo.py

Section 4.2 walks the pupil database through five updates (u1..u5) and
shows the state after each. The *states* tell you what changed; the
instrumentation in :mod:`repro.obs` tells you *how* — which chains were
enumerated, which negated conjunctions were created or dismantled,
which null-valued chains materialized, and what each step cost.

1. ``OBS.enable(tracing=True)`` turns on metrics + span trees;
2. each Section 4.2 update prints its propagation trace — the span for
   the update with one event per NC/NVC and base mutation inside it;
3. ``db.stats()`` summarizes the run: instance counts plus the runtime
   counters and the per-operation profile.
"""

from __future__ import annotations

from repro.fdb.updates import apply_update
from repro.obs import OBS, render_stats
from repro.workloads.university import pupil_database, section_42_updates


def heading(text: str) -> None:
    print(f"\n=== {text} ===")


def traced_section_42() -> None:
    db = pupil_database()
    OBS.enable(tracing=True)
    for index, update in enumerate(section_42_updates(), start=1):
        heading(f"u{index}: {update}")
        apply_update(db, update)
        trace = OBS.tracer.last_trace
        assert trace is not None
        print(trace.render())

    heading("stats after u1..u5")
    print(render_stats(db.stats()))


def main() -> None:
    print(__doc__)
    try:
        traced_section_42()
    finally:
        # Leave the process-wide context as we found it for any caller
        # embedding this demo (the test suite runs every example).
        OBS.disable()
        OBS.reset()


if __name__ == "__main__":
    main()
