"""Quickstart: design a small functional database, update it, query it.

Run:  python examples/quickstart.py

Walks the whole public API in ~60 lines: parse a schema in the paper's
notation, let the design aid separate base from derived functions,
build a database, perform base and derived updates, and watch the
three-valued answers change.
"""

from __future__ import annotations

from repro import (
    AutoDesigner,
    DesignSession,
    FunctionalDatabase,
    Truth,
    fn,
    parse_schema,
)
from repro.fdb.render import render_state


def main() -> None:
    # 1. A conceptual schema, exactly as the paper writes it. The third
    #    function is redundant: pupil = teach o class_list.
    schema = parse_schema("""
        teach: faculty -> course; (many-many)
        class_list: course -> student; (many-many)
        pupil: faculty -> student; (many-many)
    """)

    # 2. Method 2.1 with an automatic designer: adding pupil closes a
    #    cycle, and the newest candidate is classified as derived.
    session = DesignSession(AutoDesigner())
    session.add_all(schema)
    outcome = session.finish()
    print("-- design --")
    print(outcome.summary())

    # 3. The design becomes a live database.
    db = FunctionalDatabase.from_design(outcome)
    db.insert("teach", "euclid", "math")
    db.insert("teach", "laplace", "math")
    db.insert("class_list", "math", "john")
    db.insert("class_list", "math", "bill")

    print("\n-- instance --")
    print(render_state(db))

    # 4. Querying: derived functions answer through their derivations.
    assert db.truth_of("pupil", "euclid", "john") is Truth.TRUE
    print("\npupil(euclid) =", sorted(
        str(student) for student in fn("pupil").image(db, "euclid")
    ))

    # 5. Deleting a derived fact creates a negated conjunction instead
    #    of guessing which base fact to remove: no side effects.
    db.delete("pupil", "euclid", "john")
    print("\n-- after DEL(pupil, <euclid, john>) --")
    print(render_state(db))
    print(db.ncs)
    assert db.truth_of("pupil", "euclid", "john") is Truth.FALSE
    assert db.truth_of("pupil", "euclid", "bill") is Truth.AMBIGUOUS

    # 6. A later base insert resolves the ambiguity: re-asserting
    #    teach(euclid, math) dismantles the NC and truthifies the fact,
    #    so pupil(euclid, bill) is true again (while class_list(math,
    #    john) stays ambiguous until somebody asserts it too).
    db.insert("teach", "euclid", "math")
    assert db.truth_of("pupil", "euclid", "bill") is Truth.TRUE
    assert db.truth_of("pupil", "euclid", "john") is Truth.AMBIGUOUS
    print("\nafter re-asserting teach(euclid, math): "
          "pupil(euclid, bill) is true again")


if __name__ == "__main__":
    main()
