"""The paper's full university scenario, end to end.

Run:  python examples/university_registrar.py

Part 1 replays the Section 2.3 interactive design trace (with the
paper's designer decisions scripted) and prints every cycle the system
reports — compare with the narration in the paper and with Figure 1.

Part 2 builds the designed database, loads a registrar's worth of data,
and exercises updates on the *derived* functions taught_by, lecturer_of
and grade — the operations the functional data model of 1989 flatly
disallowed — including the null-valued chain a derived grade insert
creates and its resolution by a later real score.
"""

from __future__ import annotations

from repro import FunctionalDatabase, DesignSession, Truth, fn
from repro.fdb.ambiguity import measure
from repro.fdb.constraints import resolve_nulls
from repro.fdb.render import render_state
from repro.workloads.university import (
    design_trace_designer,
    design_trace_functions,
)


def heading(text: str) -> None:
    print(f"\n=== {text} ===")


def run_design() -> DesignSession:
    heading("Part 1: the Section 2.3 design trace")
    session = DesignSession(design_trace_designer())
    for function in design_trace_functions():
        mark = len(session.log)
        session.add(function)
        for event in session.log[mark:]:
            print(event.describe())
    heading("final design (Figure 1)")
    print(session.finish().summary())
    return session


def run_registrar(session: DesignSession) -> None:
    heading("Part 2: running the registrar")
    db = FunctionalDatabase.from_design(session.finish())

    # Base data: who teaches what, who sits where, the grading scale.
    db.load_instance({
        "teach": [("euclid", "geometry"), ("laplace", "calculus"),
                  ("laplace", "probability")],
        "class_list": [("geometry", "john"), ("geometry", "bill"),
                       ("calculus", "john"), ("probability", "ada")],
        "score": [(("john", "geometry"), 91), (("bill", "geometry"), 77)],
        "cutoff": [(91, "A"), (77, "B"), (85, "A")],
        "attendance": [(("john", "geometry"), 95)],
        "attendance_eval": [(95, "A")],
    })

    # Derived functions answer immediately through their derivations.
    print("taught_by(geometry) =",
          sorted(map(str, fn("taught_by").image(db, "geometry"))))
    print("lecturer_of(john)   =",
          sorted(map(str, fn("lecturer_of").image(db, "john"))))
    print("grade(john, geometry) =",
          sorted(map(str, fn("grade").image(db, ("john", "geometry")))))

    heading("updating derived functions")
    # The registrar revokes a lecturer relationship at the *derived*
    # level: which base fact is wrong is genuinely unknown.
    db.delete("lecturer_of", "john", "laplace")
    print("after DEL(lecturer_of, <john, laplace>):")
    print(" ", db.ncs)
    print("  teach(laplace, calculus)      ->",
          db.truth_of("teach", "laplace", "calculus"))
    print("  class_list(calculus, john)    ->",
          db.truth_of("class_list", "calculus", "john"))
    print("  lecturer_of(john, laplace)    ->",
          db.truth_of("lecturer_of", "john", "laplace"))

    # A derived grade insert for ada: no score exists yet, so an NVC
    # with a null mark appears.
    db.insert("grade", ("ada", "probability"), "A")
    print("\nafter INS(grade, <(ada, probability), A>):")
    print(render_state(db, ("score", "cutoff"), ()))

    # The real score arrives; the many-one FD on score forces the null.
    db.insert("score", ("ada", "probability"), 85)
    substitutions = resolve_nulls(db)
    print("\nreal score arrives; resolution:",
          "; ".join(str(s) for s in substitutions))
    print(render_state(db, ("score", "cutoff"), ()))
    assert db.truth_of("grade", ("ada", "probability"), "A") is Truth.TRUE

    heading("ambiguity report")
    print(measure(db))


def main() -> None:
    session = run_design()
    run_registrar(session)


if __name__ == "__main__":
    main()
