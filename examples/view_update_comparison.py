"""Section 3.1 head-to-head: view-update baselines vs the paper's
side-effect-free semantics.

Run:  python examples/view_update_comparison.py

The same instance — r1(AB), r2(BC), r3(CD) with the chain view
v1(AD) = pi_AD(r1 join r2 join r3) — is represented twice:

* relationally, where ``DEL(v1, <a1, d1>)`` is *translated* into base
  deletions under Dayal-Bernstein [6] and Fagin-Ullman-Vardi [9]
  semantics, each deleting facts whose falsity the update never
  implied; and
* functionally, where the same delete records exactly what is known —
  two negated conjunctions — and removes nothing.
"""

from __future__ import annotations

from repro.core.derivation import Derivation
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality
from repro.fdb.database import FunctionalDatabase
from repro.fdb.render import render_state
from repro.relational.dayal_bernstein import DayalBernsteinTranslator
from repro.relational.fuv import FUVTranslator
from repro.relational.translate import measure_side_effects
from repro.workloads.university import section_31_relational


def functional_copy() -> FunctionalDatabase:
    MM = TypeFunctionality.MANY_MANY
    A, B, C, D = (ObjectType(n) for n in "ABCD")
    db = FunctionalDatabase()
    r1 = FunctionDef("r1", A, B, MM)
    r2 = FunctionDef("r2", B, C, MM)
    r3 = FunctionDef("r3", C, D, MM)
    for f in (r1, r2, r3):
        db.declare_base(f)
    db.declare_derived(FunctionDef("v1", A, D, MM),
                       Derivation.of(r1, r2, r3))
    db.load("r1", [("a1", "b1"), ("a1", "b2")])
    db.load("r2", [("b1", "c1"), ("b2", "c1")])
    db.load("r3", [("c1", "d1")])
    return db


def main() -> None:
    db, view, target = section_31_relational()
    print("instance:")
    print(db)
    print(f"\nupdate: DEL({view}, <{target[0]}, {target[1]}>)\n")

    print("-- relational baselines --")
    for translator in (DayalBernsteinTranslator(), FUVTranslator()):
        translation = translator.translate(db, view, target)
        effects = measure_side_effects(db, translator, view, target)
        print(f"{translator.name}:")
        print(f"  translation : {translation}")
        print(f"  side effects: {effects.base_deletions} base deletions, "
              f"{effects.view_losses} extra view losses")

    print("\n-- functional database (this paper) --")
    fdb = functional_copy()
    fdb.delete("v1", "a1", "d1")
    print("  translation : (none -- two negated conjunctions recorded)")
    print("  " + "\n  ".join(str(nc) for nc in fdb.ncs))
    counts = fdb.counts()
    print(f"  side effects: 0 base deletions; "
          f"{counts['ambiguous_facts']} facts marked ambiguous")
    print("\nstate after the functional delete:")
    print(render_state(fdb))
    print("\nv1(a1, d1) is now:", fdb.truth_of("v1", "a1", "d1"))
    print("every stored base fact survived:",
          all(len(fdb.table(n)) == size
              for n, size in (("r1", 2), ("r2", 2), ("r3", 1))))


if __name__ == "__main__":
    main()
