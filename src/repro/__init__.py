"""Reproduction of *Identifying and Update of Derived Functions in
Functional Databases* (Yerneni & Lanka, ICDE 1989).

A functional database is a set of object types plus functions between
them; schemas are redundant, with some functions *derived* from others
by composition and inverse. This package implements the paper's two
contributions and every substrate they need:

* **Identification** (Section 2): the function graph, Algorithm AMS for
  the Minimal Schema Problem under the Unique Form Assumption, and the
  on-line interactive design aid (Method 2.1) — see :mod:`repro.core`.
* **Update** (Sections 3-4): side-effect-free updates of derived
  functions via three-valued logic, negated conjunctions and
  null-valued chains — see :mod:`repro.fdb`.

Plus: a relational substrate with the Dayal-Bernstein and
Fagin-Ullman-Vardi view-update baselines the paper argues against
(:mod:`repro.relational`), a surface language and interactive REPL
(:mod:`repro.lang`), and workload generators with the paper's running
examples (:mod:`repro.workloads`).

Quickstart::

    from repro import (
        DesignSession, AutoDesigner, FunctionalDatabase,
        parse_schema, Derivation,
    )

    session = DesignSession(AutoDesigner())
    session.add_all(parse_schema('''
        teach: faculty -> course; (many-many)
        class_list: course -> student; (many-many)
        pupil: faculty -> student; (many-many)
    '''))
    db = FunctionalDatabase.from_design(session.finish())
    db.insert("teach", "euclid", "math")
    db.insert("class_list", "math", "john")
    db.truth_of("pupil", "euclid", "john")   # Truth.TRUE
    db.delete("pupil", "euclid", "john")     # creates a negated conjunction
"""

from __future__ import annotations

from repro.errors import (
    ConstraintViolation,
    DerivationError,
    DesignError,
    GraphError,
    ParseError,
    PersistenceError,
    ReproError,
    SchemaError,
    TransactionError,
    UpdateError,
)
from repro.core import (
    AutoDesigner,
    CycleReport,
    Derivation,
    Designer,
    DesignSession,
    Edge,
    FunctionDef,
    FunctionGraph,
    MinimalSchemaResult,
    Multiplicity,
    ObjectType,
    Op,
    Path,
    Schema,
    ScriptedDesigner,
    Step,
    TypeFunctionality,
    format_schema,
    minimal_schema,
    minimal_schema_ams,
    minimal_schema_without_ufa,
    parse_function_def,
    parse_schema,
)
from repro.core.types import product_type
from repro.fdb import (
    Fact,
    FactRef,
    FunctionalDatabase,
    FunctionTable,
    NCRegistry,
    NegatedConjunction,
    NullFactory,
    NullValue,
    Truth,
    Update,
    apply_update,
    derived_extension,
    derived_image,
    fn,
    is_null,
    iter_chains,
    truth_of,
)
from repro.lang import Interpreter
from repro.obs import OBS, Instrumentation

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SchemaError",
    "DerivationError",
    "GraphError",
    "DesignError",
    "UpdateError",
    "ConstraintViolation",
    "TransactionError",
    "PersistenceError",
    "ParseError",
    # core
    "Multiplicity",
    "TypeFunctionality",
    "ObjectType",
    "product_type",
    "FunctionDef",
    "Schema",
    "Derivation",
    "Op",
    "Step",
    "Edge",
    "Path",
    "FunctionGraph",
    "MinimalSchemaResult",
    "minimal_schema",
    "minimal_schema_ams",
    "minimal_schema_without_ufa",
    "Designer",
    "ScriptedDesigner",
    "AutoDesigner",
    "CycleReport",
    "DesignSession",
    "parse_schema",
    "parse_function_def",
    "format_schema",
    # fdb
    "Truth",
    "NullValue",
    "NullFactory",
    "is_null",
    "Fact",
    "FactRef",
    "FunctionTable",
    "NegatedConjunction",
    "NCRegistry",
    "FunctionalDatabase",
    "Update",
    "apply_update",
    "iter_chains",
    "truth_of",
    "derived_extension",
    "derived_image",
    "fn",
    # lang
    "Interpreter",
    # obs
    "OBS",
    "Instrumentation",
]
