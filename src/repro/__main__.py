"""``python -m repro`` launches the interactive design aid (the same
entry point as the ``fdb-repl`` console script)."""

from __future__ import annotations

from repro.lang.repl import main

if __name__ == "__main__":
    raise SystemExit(main())
