"""The unified benchmark runner (``python -m repro.bench``).

The E1–E15 experiment benches under ``benchmarks/`` are plain pytest
modules; this package runs them *without* pytest — discovering the
bench modules, supplying lightweight ``benchmark``/``report``
stand-ins, attaching a metrics+profile snapshot to every run, writing
canonical ``BENCH_<exp>.json`` artifacts at the repo root (plus the
familiar ``benchmarks/results/*.json``/``.txt`` pair), and comparing
each run against the previous one with a regression report.

Pieces:

* :mod:`repro.bench.report` — the structured report every bench
  writes; the ``.txt`` file is a render of the JSON, not a separate
  artifact;
* :mod:`repro.bench.scale` — ``REPRO_BENCH_SCALE`` helpers the heavy
  benches use so ``--smoke`` runs scaled-down workloads;
* :mod:`repro.bench.runner` — discovery and execution;
* :mod:`repro.bench.compare` — the regression comparison (work
  counters are the enforced signal — they are machine-independent;
  timings are reported, and enforced only on request);
* :mod:`repro.bench.__main__` — the CLI.
"""

from __future__ import annotations

from repro.bench.compare import compare_payloads
from repro.bench.report import Report, ReportStore, render_payload_text
from repro.bench.runner import (
    BenchResult,
    FakeBenchmark,
    discover_benches,
    propagation_roundtrip,
    run_bench,
)
from repro.bench.scale import scale_factor, scaled, scaled_sizes

__all__ = [
    "Report",
    "ReportStore",
    "render_payload_text",
    "scale_factor",
    "scaled",
    "scaled_sizes",
    "discover_benches",
    "run_bench",
    "BenchResult",
    "FakeBenchmark",
    "propagation_roundtrip",
    "compare_payloads",
]
