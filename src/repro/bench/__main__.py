"""CLI of the unified bench runner.

Usage::

    python -m repro.bench                 # full E1–E19 suite
    python -m repro.bench e4 e10          # a named subset
    python -m repro.bench --smoke         # scaled-down E4/E10/E15/E16/E18/E19 (CI)
    python -m repro.bench --list          # what exists

Each selected bench runs through :func:`repro.bench.runner.run_bench`,
gets a metrics+profile snapshot attached, is compared against the
previous run's committed ``BENCH_<exp>.json`` (counter drift enforced
at ``--fail-threshold``, timing drift reported), and rewrites the
canonical ``BENCH_<exp>.json`` at the repo root plus the
``benchmarks/results/<exp>.json``/``.txt`` pair. Every invocation also
round-trips a Section-4.2 propagation trace through the structured
event log (JSONL → DAG → DOT) as a pipeline self-check.

Exit status is non-zero on bench failures or enforced regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.bench.compare import compare_payloads
from repro.bench.report import ReportStore
from repro.bench.runner import (
    discover_benches,
    propagation_roundtrip,
    run_bench,
)
from repro.bench.scale import ENV_VAR, scale_factor

SMOKE_EXPS = ("e4", "e10", "e15", "e16", "e18", "e19")
SMOKE_SCALE = 0.25


def _repo_root() -> Path:
    here = Path.cwd()
    if (here / "benchmarks").is_dir():
        return here
    # src/repro/bench/__main__.py → repo root three levels above src/.
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "benchmarks").is_dir():
        return candidate
    return here


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the E1-E19 benches with metric snapshots and "
                    "a regression comparison.",
    )
    parser.add_argument("exps", nargs="*",
                        help="experiment keys (e1..e19); default all")
    parser.add_argument("--smoke", action="store_true",
                        help=f"scaled-down {'/'.join(SMOKE_EXPS)} at "
                             f"scale {SMOKE_SCALE} (CI smoke job)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default 1.0, or "
                             f"{SMOKE_SCALE} under --smoke)")
    parser.add_argument("--fail-threshold", type=float, default=0.25,
                        help="relative counter growth that fails the "
                             "run (default 0.25)")
    parser.add_argument("--enforce-timings", action="store_true",
                        help="also fail on timing growth past the "
                             "threshold (noisy off controlled hardware)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed rounds per benchmark call")
    parser.add_argument("--list", action="store_true",
                        help="list discovered benches and exit")
    args = parser.parse_args(argv)

    root = _repo_root()
    benches = discover_benches(root / "benchmarks")
    if args.list:
        for key, path in benches.items():
            print(f"{key:>4}  {path.name}")
        return 0

    selected = list(args.exps) or (
        list(SMOKE_EXPS) if args.smoke else list(benches)
    )
    unknown = [key for key in selected if key not in benches]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)} "
                     f"(have: {', '.join(benches)})")

    scale = args.scale if args.scale is not None else (
        SMOKE_SCALE if args.smoke else 1.0
    )
    os.environ[ENV_VAR] = str(scale)

    store = ReportStore(root / "benchmarks" / "results")
    failed = False
    for key in selected:
        path = benches[key]
        exp_id = path.stem.removeprefix("bench_")
        print(f"[{key}] running {path.name} (scale {scale_factor()}) ...")
        result = run_bench(path, store=store, rounds=args.rounds)
        bench_path = root / f"BENCH_{exp_id}.json"
        previous = None
        if bench_path.exists():
            try:
                previous = json.loads(bench_path.read_text())
            except ValueError:
                previous = None
        payload = {
            "exp_id": exp_id,
            "exp": key,
            "scale": scale,
            "rounds": args.rounds,
            "tests_run": result.tests_run,
            "timings": result.timings,
            "counters": result.counters(),
            "metrics": result.metrics,
            "profile": result.profile[:10],
            "failures": result.failures,
        }
        comparison = compare_payloads(
            payload, previous, threshold=args.fail_threshold,
            enforce_timings=args.enforce_timings,
        )
        payload["comparison"] = comparison
        bench_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str)
            + "\n",
            encoding="utf-8",
        )
        for failure in result.failures:
            failed = True
            print(f"[{key}] FAIL {failure['test']}\n{failure['error']}",
                  file=sys.stderr)
        status = comparison["status"]
        print(f"[{key}] {result.tests_run} tests, "
              f"{len(result.counters())} counters, "
              f"comparison: {status} -> {bench_path.name}")
        if status == "regression":
            failed = True
            for entry in comparison["counter_regressions"]:
                print(f"[{key}]   counter {entry['counter']}: "
                      f"{entry['previous']} -> {entry['current']} "
                      f"(+{entry['growth'] * 100:.1f}%)",
                      file=sys.stderr)
            if comparison["enforce_timings"]:
                for entry in comparison["timing_regressions"]:
                    print(f"[{key}]   timing {entry['test']}: "
                          f"+{entry['growth'] * 100:.1f}%",
                          file=sys.stderr)
        elif comparison.get("timing_regressions"):
            for entry in comparison["timing_regressions"]:
                print(f"[{key}]   (timing, informational) "
                      f"{entry['test']}: +{entry['growth'] * 100:.1f}%")

    trace = propagation_roundtrip(root / "benchmarks" / "results")
    print(f"[trace] {trace['update']}: {trace['records']} events -> "
          f"DAG ({trace['dag_nodes']} nodes, {trace['dag_edges']} "
          f"edges, causes {', '.join(trace['causes'])}) -> "
          f"{Path(trace['dot_path']).name}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
