"""Regression comparison between bench runs.

Timing comparisons across machines are noise; work-counter comparisons
are not. The counters the runtime already maintains — chains
enumerated, NCs created, WAL appends — are deterministic functions of
(code, workload, scale), so a counter that grew 30% between two runs
of the same workload is a real algorithmic regression, reproducible
anywhere. The comparison therefore *enforces* counter drift and merely
*reports* timing drift (opt in with ``enforce_timings`` where the
hardware is controlled).

Small counters are exempt: a 1 → 2 jump is a 100% "regression" of no
consequence, so counters need ``min_count`` observations before they
can fail a run. Both payloads carry their scale, and runs at different
scales refuse to compare — a smoke run is not a baseline for a full
run.
"""

from __future__ import annotations

__all__ = ["VOLATILE_COUNTER_PREFIXES", "compare_payloads"]

_MIN_COUNT = 20

# Counter families that are timing-shaped despite living in the
# counter namespace — latency instruments keyed per replica, byte
# volumes that track compression ratios, lag samples. Their values are
# functions of scheduling and wall clock, not of (code, workload,
# scale), so drift in them is noise and they are excluded from
# enforcement. Matched by prefix against the flattened counter name.
VOLATILE_COUNTER_PREFIXES = (
    "replication.lag.",
    "replication.pipeline.",
    "replication.ship.",
    "replication.commit.",
    "replication.snapshot.bytes_",
)


def _volatile(name: str) -> bool:
    return name.startswith(VOLATILE_COUNTER_PREFIXES)


def _ratio(current: float, previous: float) -> float:
    """Relative growth of ``current`` over ``previous`` (0.0 = equal,
    0.25 = 25% worse)."""
    if previous <= 0:
        return 0.0 if current <= 0 else float("inf")
    return current / previous - 1.0


def compare_payloads(current: dict, previous: dict | None, *,
                     threshold: float = 0.25,
                     enforce_timings: bool = False,
                     min_count: int = _MIN_COUNT) -> dict:
    """Compare a run payload against its predecessor.

    Both payloads are ``BENCH_<exp>.json`` shapes: ``counters`` (flat
    name → int), ``timings`` (test → {min_seconds, ...}), ``scale``.
    Returns a verdict dict with ``status`` of ``"ok"``,
    ``"regression"``, or ``"no-baseline"``/``"scale-mismatch"`` when
    comparison is impossible.
    """
    if previous is None:
        return {"status": "no-baseline", "threshold": threshold,
                "counter_regressions": [], "timing_regressions": []}
    if current.get("scale") != previous.get("scale"):
        return {
            "status": "scale-mismatch",
            "threshold": threshold,
            "note": (f"current scale {current.get('scale')} vs baseline "
                     f"{previous.get('scale')} — not comparable"),
            "counter_regressions": [],
            "timing_regressions": [],
        }
    counter_regressions: list[dict] = []
    previous_counters = previous.get("counters", {})
    for name, value in sorted(current.get("counters", {}).items()):
        if _volatile(name):
            continue
        before = previous_counters.get(name)
        if before is None or max(value, before) < min_count:
            continue
        growth = _ratio(value, before)
        if growth > threshold:
            counter_regressions.append({
                "counter": name,
                "previous": before,
                "current": value,
                "growth": round(growth, 4),
            })
    timing_regressions: list[dict] = []
    previous_timings = previous.get("timings", {})
    for test, stats in sorted(current.get("timings", {}).items()):
        before = previous_timings.get(test)
        if not before:
            continue
        growth = _ratio(stats.get("min_seconds", 0.0),
                        before.get("min_seconds", 0.0))
        if growth > threshold:
            timing_regressions.append({
                "test": test,
                "previous_min_seconds": before.get("min_seconds"),
                "current_min_seconds": stats.get("min_seconds"),
                "growth": round(growth, 4),
            })
    failed = bool(counter_regressions
                  or (enforce_timings and timing_regressions))
    return {
        "status": "regression" if failed else "ok",
        "threshold": threshold,
        "enforce_timings": enforce_timings,
        "counter_regressions": counter_regressions,
        "timing_regressions": timing_regressions,
    }
