"""Structured bench reports: JSON first, text as a render of it.

Every bench module writes one report per experiment. Historically the
``.txt`` was the primary artifact and the JSON an afterthought bolted
onto one bench; here the relationship is inverted: a :class:`Report`
accumulates *structured blocks* (lines and tables as data), the JSON
payload carries those blocks plus whatever the bench attached (metric
snapshots, series), and the human-readable text is rendered *from*
the payload by :func:`render_payload_text` — so the two can never
disagree.

A :class:`ReportStore` owns the accumulation rules across one session:
several tests of one bench module flush into the same experiment
payload (blocks append, data keys merge, later flushes win on
conflicts), exactly the behaviour the old conftest implemented with
module globals. Both the pytest fixture (``benchmarks/conftest.py``)
and the standalone runner (:mod:`repro.bench.runner`) drive the same
classes, so a bench behaves identically under either harness.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["Report", "ReportStore", "render_payload_text"]


class Report:
    """Collects structured blocks and attached data for one bench."""

    def __init__(self, exp_id: str) -> None:
        self.exp_id = exp_id
        self.blocks: list[dict] = []
        self.data: dict = {}

    # -- authoring (the API the bench modules use) ---------------------------

    def attach(self, mapping: dict) -> None:
        """Merge extra keys into the JSON payload (e.g. an
        observability snapshot)."""
        self.data.update(mapping)

    def line(self, text: str = "") -> None:
        self.blocks.append({"kind": "line", "text": text})

    def block(self, text: str) -> None:
        for each in text.splitlines():
            self.line(each)

    def table(self, headers: tuple[str, ...], rows: list[tuple]) -> None:
        self.blocks.append({
            "kind": "table",
            "headers": [str(h) for h in headers],
            "rows": [[str(cell) for cell in row] for row in rows],
        })

    # -- reading -------------------------------------------------------------

    @property
    def lines(self) -> list[str]:
        """The report rendered as text lines (tables aligned)."""
        return _render_blocks(self.blocks)


def _render_table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        if rows else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(cells) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = [fmt(headers), fmt(["-" * w for w in widths])]
    out.extend(fmt(row) for row in rows)
    return out


def _render_blocks(blocks: list[dict]) -> list[str]:
    lines: list[str] = []
    for block in blocks:
        if block["kind"] == "table":
            lines.extend(_render_table(block["headers"], block["rows"]))
        else:
            lines.append(block["text"])
    return lines


def render_payload_text(payload: dict) -> str:
    """The human-readable report of one experiment payload — a pure
    function of the JSON, which is the whole point."""
    return "\n".join(_render_blocks(payload.get("blocks", []))) + "\n"


class ReportStore:
    """Accumulates flushed reports per experiment and writes the
    ``results/<exp_id>.json`` + ``.txt`` pair (text rendered from the
    JSON payload)."""

    def __init__(self, results_dir: str | Path) -> None:
        self.results_dir = Path(results_dir)
        self._payloads: dict[str, dict] = {}

    def payload(self, exp_id: str) -> dict | None:
        return self._payloads.get(exp_id)

    def flush(self, report: Report) -> Path:
        """Fold one report into its experiment's payload and rewrite
        both artifacts. Returns the text path (what the old fixture
        echoed)."""
        self.results_dir.mkdir(exist_ok=True)
        payload = self._payloads.setdefault(
            report.exp_id, {"exp_id": report.exp_id, "blocks": []}
        )
        payload["blocks"] = payload["blocks"] + report.blocks
        payload.update(report.data)
        # `report` mirrors the rendered lines into the JSON so casual
        # consumers (and the old CI assertions) need no renderer.
        payload["report"] = _render_blocks(payload["blocks"])
        json_path = self.results_dir / f"{report.exp_id}.json"
        json_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str)
            + "\n",
            encoding="utf-8",
        )
        text_path = self.results_dir / f"{report.exp_id}.txt"
        text_path.write_text(render_payload_text(payload),
                             encoding="utf-8")
        return text_path
