"""Discovery and execution of the E1–E19 benches without pytest.

The bench modules under ``benchmarks/`` are pytest files using exactly
two fixtures — ``benchmark`` (pytest-benchmark's callable protocol)
and ``report`` (the structured report) — so a full pytest session is
unnecessary machinery for running them: :func:`run_bench` imports a
bench module from its file path, walks its ``test_*`` functions in
definition order, and injects :class:`FakeBenchmark` /
:class:`repro.bench.report.Report` instances for those two parameter
names. Assertions inside the benches still run; a failing bench is a
failing run.

Each module executes inside ``OBS.collecting()`` so a metrics+profile
snapshot can be attached to its payload, and each ``benchmark(...)``
call is timed (one warm-up call, then ``rounds`` timed calls — the
bench functions are written for pytest-benchmark, which also calls
them repeatedly, so re-invocation is safe by construction).

:func:`propagation_roundtrip` is the acceptance loop for the
structured event log: it traces one Section-4.2 update with a JSONL
file sink, reads the records back, folds them into a DAG and renders
DOT — emitted → persisted → reconstructed → drawn.
"""

from __future__ import annotations

import importlib.util
import inspect
import sys
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.report import Report, ReportStore
from repro.obs import OBS, FileSink, propagation_dag, read_jsonl

__all__ = ["FakeBenchmark", "BenchResult", "discover_benches",
           "run_bench", "propagation_roundtrip"]


class FakeBenchmark:
    """The subset of pytest-benchmark's fixture the benches use:
    ``result = benchmark(fn, *args, **kwargs)``.

    Calls ``fn`` once for its result (and as warm-up), then ``rounds``
    more times under the clock. ``stats`` carries min/mean seconds.
    """

    def __init__(self, rounds: int = 3) -> None:
        self.rounds = rounds
        self.stats: dict | None = None

    def __call__(self, fn, *args, **kwargs):
        result = fn(*args, **kwargs)
        timings: list[float] = []
        for _ in range(self.rounds):
            started = time.perf_counter()
            fn(*args, **kwargs)
            timings.append(time.perf_counter() - started)
        self.stats = {
            "rounds": self.rounds,
            "min_seconds": min(timings),
            "mean_seconds": sum(timings) / len(timings),
        }
        return result


@dataclass
class BenchResult:
    """Everything one bench module's run produced."""

    exp_id: str
    timings: dict[str, dict] = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    profile: list = field(default_factory=list)
    failures: list[dict] = field(default_factory=list)
    tests_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def counters(self) -> dict[str, int]:
        """The deterministic work counters the regression comparison
        keys on — the bench's own attached snapshot when it made one
        (e.g. E10's instrumented replay), else the run-wide capture."""
        return {name: value
                for name, value in self.metrics.get("counters", {}).items()
                if value}


def discover_benches(benchmarks_dir: str | Path) -> dict[str, Path]:
    """Map short experiment keys (``e4``) to bench module paths,
    sorted by experiment number."""
    found: dict[str, Path] = {}
    for path in Path(benchmarks_dir).glob("bench_e*.py"):
        key = path.stem.removeprefix("bench_").split("_")[0]
        found[key] = path
    return dict(sorted(found.items(),
                       key=lambda item: int(item[0].lstrip("e"))))


def _load_module(path: Path):
    name = f"repro_bench_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    # dataclass (and anything else resolving cls.__module__) needs the
    # module registered before its body executes.
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except Exception:
        del sys.modules[name]
        raise
    return module


def _test_functions(module):
    return [
        (name, fn) for name, fn in vars(module).items()
        if name.startswith("test_") and inspect.isfunction(fn)
    ]


def run_bench(path: str | Path, *, store: ReportStore,
              rounds: int = 3) -> BenchResult:
    """Execute one bench module; flush its reports into ``store``."""
    path = Path(path)
    exp_id = path.stem.removeprefix("bench_")
    result = BenchResult(exp_id=exp_id)
    # Drop instrument *registrations*, not just their values — reset()
    # keeps names, so without this a suite run would report every
    # earlier bench's counters (zero-valued) against every later one.
    OBS.metrics.clear()
    with OBS.collecting():
        try:
            module = _load_module(path)
        except Exception:
            result.failures.append({
                "test": "<import>",
                "error": traceback.format_exc(limit=5),
            })
            return result
        for name, fn in _test_functions(module):
            params = inspect.signature(fn).parameters
            kwargs: dict = {}
            unknown = [p for p in params
                       if p not in ("benchmark", "report")]
            if unknown:
                result.failures.append({
                    "test": name,
                    "error": f"unsupported fixtures: {unknown} "
                             "(the runner injects only benchmark/"
                             "report)",
                })
                continue
            fake = FakeBenchmark(rounds=rounds)
            report = Report(exp_id)
            if "benchmark" in params:
                kwargs["benchmark"] = fake
            if "report" in params:
                kwargs["report"] = report
            try:
                fn(**kwargs)
            except Exception:
                result.failures.append({
                    "test": name,
                    "error": traceback.format_exc(limit=5),
                })
                continue
            result.tests_run += 1
            if fake.stats is not None:
                result.timings[name] = fake.stats
            if report.blocks or report.data:
                store.flush(report)
        snapshot = OBS.snapshot()
    # Prefer the bench's own attached metrics (an instrumented replay
    # of exactly the measured workload) over the run-wide capture,
    # which interleaves every test's work.
    payload = store.payload(exp_id) or {}
    result.metrics = payload.get("metrics") or snapshot["metrics"]
    result.profile = snapshot["profile"]
    return result


def propagation_roundtrip(out_dir: str | Path) -> dict:
    """Trace Section 4.2's u1 end to end through the event pipeline.

    Emits JSONL records (file sink) while tracing ``DEL(pupil,
    <euclid, john>)``, reads them back, reconstructs the propagation
    DAG, renders it as DOT, and sanity-checks the round trip. Returns
    paths and shape counts for the bench summary.
    """
    from repro.fdb.updates import apply_update
    from repro.workloads.university import (
        pupil_database,
        section_42_updates,
    )

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    events_path = out_dir / "propagation_trace.jsonl"
    dot_path = out_dir / "propagation_trace.dot"
    if events_path.exists():
        events_path.unlink()
    db = pupil_database()
    u1 = section_42_updates()[0]
    sink = FileSink(events_path)
    with OBS.collecting(tracing=True):
        OBS.events.add_sink(sink)
        try:
            apply_update(db, u1)
        finally:
            OBS.events.remove_sink(sink)
    records = read_jsonl(events_path)
    dag = propagation_dag(records)
    dot = dag.to_dot(name="section42_u1")
    dot_path.write_text(dot + "\n", encoding="utf-8")
    spans = [r for r in records if r.kind == "span.end"]
    causes = {r.cause for r in records if r.cause}
    if not spans or not causes or not dag.nodes:
        raise RuntimeError(
            "propagation round trip produced an empty trace — the "
            "event pipeline is broken"
        )
    return {
        "update": str(u1),
        "events_path": str(events_path),
        "dot_path": str(dot_path),
        "records": len(records),
        "spans": len(spans),
        "dag_nodes": len(dag.nodes),
        "dag_edges": len(dag.edges),
        "causes": sorted(causes),
    }
