"""Workload scaling for smoke runs (``REPRO_BENCH_SCALE``).

The heavy benches (E4's schema sweep, E10's update stream, E15's
query-scaling grid) read their sizes through these helpers, so one
environment variable scales the whole suite down for CI smoke runs —
``REPRO_BENCH_SCALE=0.25 python -m repro.bench`` — without touching
the bench code. The variable is read at *call* time, so the runner can
set it before importing the bench modules (several build their
workloads at import).

Scale 1.0 (the default) must be the identity: the helpers return the
requested sizes untouched, so a full run is exactly the historical
workload.
"""

from __future__ import annotations

import os

__all__ = ["scale_factor", "scaled", "scaled_sizes"]

ENV_VAR = "REPRO_BENCH_SCALE"


def scale_factor() -> float:
    """The current workload scale (default 1.0, clamped positive)."""
    raw = os.environ.get(ENV_VAR, "")
    try:
        factor = float(raw) if raw else 1.0
    except ValueError:
        return 1.0
    return factor if factor > 0 else 1.0


def scaled(n: int, *, minimum: int = 1) -> int:
    """``n`` scaled by the current factor, never below ``minimum``
    (a 0-row table benchmarks nothing)."""
    return max(minimum, round(n * scale_factor()))


def scaled_sizes(sizes: tuple[int, ...], *,
                 minimum: int = 2) -> tuple[int, ...]:
    """A size series scaled element-wise, deduplicated, order kept.

    Series feeding log-log exponent fits (E4) need several *distinct*
    points, so after scaling, collapsed duplicates are dropped rather
    than kept as flat repeats that would skew the fit.
    """
    out: list[int] = []
    for size in sizes:
        value = scaled(size, minimum=minimum)
        if value not in out:
            out.append(value)
    return tuple(out)
