"""Cooperative cancellation: per-request deadlines for long propagation.

The paper's update procedures fan out — a single ``DEL`` on a derived
function enumerates chains, creates NCs and appends WAL records. Under
a service deadline those cascades must be *interruptible*, but the
engine holds no locks mid-procedure that a hard kill could respect, so
cancellation is cooperative: hot loops call :func:`checkpoint` between
units of work, and the checkpoint raises
:class:`repro.errors.DeadlineExceeded` once the ambient deadline has
passed. Checkpoints sit *between* mutations, never inside one; wrapped
in a :class:`repro.fdb.transaction.Transaction` (as every service and
WAL write is) a cancelled update rolls back to a clean state via the
existing compensating-abort path.

Cost discipline mirrors :mod:`repro.obs.hooks`: when no deadline scope
is active anywhere in the process, :func:`checkpoint` is a single
global integer test. The deadline itself propagates through a
:class:`~contextvars.ContextVar`, so scopes opened on one thread or
asyncio task never leak into another's requests.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar

from repro.errors import DeadlineExceeded

__all__ = [
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "cancellation_active",
    "checkpoint",
]


class Deadline:
    """A monotonic-clock expiry a request must finish by."""

    __slots__ = ("expires_at",)

    def __init__(self, seconds: float | None = None, *,
                 expires_at: float | None = None) -> None:
        if (seconds is None) == (expires_at is None):
            raise ValueError(
                "pass exactly one of seconds= or expires_at="
            )
        if expires_at is None:
            assert seconds is not None
            expires_at = time.monotonic() + seconds
        self.expires_at = expires_at

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.4f}s)"


_DEADLINE: ContextVar[Deadline | None] = ContextVar(
    "repro_cancel_deadline", default=None
)

# Number of live deadline scopes in the whole process. Guarded by
# _SCOPES_LOCK for writes; read without the lock in checkpoint() (a
# single int load — at worst a checkpoint races a scope opening and
# fires one unit of work late, which cooperative cancellation permits).
_ACTIVE_SCOPES = 0
_SCOPES_LOCK = threading.Lock()


def current_deadline() -> Deadline | None:
    """The innermost active deadline of this context, if any."""
    return _DEADLINE.get()


@contextmanager
def deadline_scope(deadline: Deadline | float | None):
    """Run a block under a deadline (``None`` → no-op scope).

    A float is shorthand for ``Deadline(seconds)``. Nested scopes keep
    the *tighter* constraint: an inner scope cannot extend an outer
    deadline, only shorten it.
    """
    global _ACTIVE_SCOPES
    if deadline is None:
        yield None
        return
    if not isinstance(deadline, Deadline):
        deadline = Deadline(deadline)
    outer = _DEADLINE.get()
    if outer is not None and outer.expires_at < deadline.expires_at:
        deadline = outer
    token = _DEADLINE.set(deadline)
    with _SCOPES_LOCK:
        _ACTIVE_SCOPES += 1
    try:
        yield deadline
    finally:
        with _SCOPES_LOCK:
            _ACTIVE_SCOPES -= 1
        _DEADLINE.reset(token)


def cancellation_active() -> bool:
    """Whether any deadline scope is live in the process — hot loops
    may use this to keep their zero-overhead fast path byte-identical
    when nobody is asking for cancellation."""
    return _ACTIVE_SCOPES > 0


def checkpoint() -> None:
    """Raise :class:`DeadlineExceeded` if this context's deadline has
    passed; otherwise a near-free no-op (one global int test when no
    scope is active anywhere)."""
    if not _ACTIVE_SCOPES:
        return
    deadline = _DEADLINE.get()
    if deadline is not None and deadline.expired:
        raise DeadlineExceeded(
            f"deadline exceeded by {-deadline.remaining():.4f}s"
        )
