"""Core of the reproduction: the paper's primary contribution.

This subpackage contains the schema model of a functional database
(Section 1 of the paper), the function graph and the Minimal Schema
Problem machinery (Section 2.1), and the on-line interactive design aid
(Sections 2.2-2.3).

The runtime side — stored tables, three-valued facts, and the update
algorithms of Sections 3-4 — lives in :mod:`repro.fdb`.
"""

from __future__ import annotations

from repro.core.types import Multiplicity, ObjectType, TypeFunctionality
from repro.core.schema import FunctionDef, Schema
from repro.core.derivation import Derivation, Op, Step
from repro.core.graph import Edge, FunctionGraph, Path
from repro.core.minimal_schema import (
    MinimalSchemaResult,
    all_minimal_schemas,
    minimal_schema,
    minimal_schema_ams,
    minimal_schema_without_ufa,
)
from repro.core.design_aid import (
    AutoDesigner,
    CycleReport,
    Designer,
    DesignSession,
    ScriptedDesigner,
)
from repro.core.schema_text import format_schema, parse_function_def, parse_schema
from repro.core.closure import closure_signatures, derivable_functions
from repro.core.dot import design_to_dot, graph_to_dot
from repro.core.offline import OfflineDesignReport, verify_offline_design

__all__ = [
    "all_minimal_schemas",
    "closure_signatures",
    "derivable_functions",
    "design_to_dot",
    "graph_to_dot",
    "OfflineDesignReport",
    "verify_offline_design",
    "Multiplicity",
    "ObjectType",
    "TypeFunctionality",
    "FunctionDef",
    "Schema",
    "Derivation",
    "Op",
    "Step",
    "Edge",
    "FunctionGraph",
    "Path",
    "MinimalSchemaResult",
    "minimal_schema",
    "minimal_schema_ams",
    "minimal_schema_without_ufa",
    "Designer",
    "ScriptedDesigner",
    "AutoDesigner",
    "CycleReport",
    "DesignSession",
    "format_schema",
    "parse_function_def",
    "parse_schema",
]
