"""The closure <G> of a set of functions (Section 2.1).

    "We define the closure of a set of functions G as
     <G> = { g | g = u1(f_i1) o u2(f_i2) ... o uk(f_ik) }
     where f_ij in G, u_i in {identity, inverse}."

The closure is infinite as a set of expressions, but its *signatures*
— (domain, range, type functionality) triples — form a finite set
(at most |types|^2 * 4), and that is what the design tooling needs:
"what could be derived from these base functions, and how?".

:func:`closure_signatures` computes every reachable signature with a
shortest witness derivation, via breadth-first search over
``(type, functionality)`` states from each starting type — the same
monotone state space :meth:`repro.core.graph.FunctionGraph.
has_equivalent_walk` exploits, so the computation is polynomial.
:func:`derivable_functions` then answers the designer's question
directly: which schema functions are derivable from a candidate base
set, and by what (shortest) derivation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.derivation import Derivation
from repro.core.graph import FunctionGraph
from repro.core.schema import Schema
from repro.core.types import ObjectType, TypeFunctionality

__all__ = ["Signature", "closure_signatures", "derivable_functions"]


@dataclass(frozen=True)
class Signature:
    """A derivable signature with one (shortest) witness."""

    domain: ObjectType
    range: ObjectType
    functionality: TypeFunctionality
    witness: Derivation

    def __str__(self) -> str:
        return (
            f"{self.domain} -> {self.range}; ({self.functionality}) "
            f"via {self.witness}"
        )


def closure_signatures(
    functions: Schema,
    *,
    max_length: int | None = None,
) -> dict[tuple[ObjectType, ObjectType, TypeFunctionality], Derivation]:
    """Every signature in <G> with a shortest witness derivation.

    ``max_length`` optionally caps derivation length (the full closure
    needs at most ``4 * |types|`` steps per start, but designers rarely
    care past a handful).
    """
    graph = FunctionGraph.of_schema(functions)
    found: dict[
        tuple[ObjectType, ObjectType, TypeFunctionality], Derivation
    ] = {}
    for start in graph.nodes:
        # BFS over (node, functionality) states, remembering the first
        # (hence shortest) path that reached each state.
        initial = (start, TypeFunctionality.ONE_ONE)
        paths: dict = {initial: ()}
        queue = deque([initial])
        while queue:
            state = queue.popleft()
            node, tf = state
            steps_so_far = paths[state]
            if max_length is not None and len(steps_so_far) >= max_length:
                continue
            for traversal in graph._traversals_from(node, frozenset()):
                new_tf = tf.compose(traversal.functionality)
                new_state = (traversal.target, new_tf)
                if new_state in paths:
                    continue
                paths[new_state] = steps_so_far + (traversal,)
                queue.append(new_state)
        for (node, tf), steps in paths.items():
            if not steps:
                continue
            key = (start, node, tf)
            if key not in found:
                found[key] = Derivation(
                    step.to_step() for step in steps
                )
    return found


def derivable_functions(
    schema: Schema,
    base_names: list[str] | tuple[str, ...],
    *,
    max_length: int | None = None,
) -> dict[str, Derivation | None]:
    """Which schema functions lie in the closure of the named base set.

    Returns every non-base function mapped to a shortest witness
    derivation, or None when it is not derivable — the off-line
    question "can this base set carry the schema?" in one call.
    """
    base = schema.restricted_to(base_names)
    signatures = closure_signatures(base, max_length=max_length)
    result: dict[str, Derivation | None] = {}
    for function in schema:
        if function.name in base:
            continue
        key = (function.domain, function.range, function.functionality)
        result[function.name] = signatures.get(key)
    return result
