"""Derivations of derived functions.

Section 1: "A derivation of a derived function is an ordered sequence of
base functions along with the appropriate operations, which specifies a
method of obtaining the derived function from these base functions.
Composition and inverse are the two most important operations in such
derivations."

A :class:`Derivation` is a non-empty sequence of :class:`Step`\\ s, each a
base function used either directly (``Op.IDENTITY``) or inverted
(``Op.INVERSE``), chained by composition. Formally it represents

    g = u1(f_i1) o u2(f_i2) o ... o uk(f_ik),   u_j in {identity, inverse}

exactly as in the definition of the closure ``<G>`` in Section 2.1.

A derivation is *well-formed* when adjacent steps chain: the range of
each step's effective mapping equals the domain of the next step's. The
effective domain/range of a step are the function's own when used via
identity and swapped when inverted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import DerivationError
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality, compose_functionalities

__all__ = ["Op", "Step", "Derivation"]


class Op(enum.Enum):
    """The two functional operators appearing in derivations."""

    IDENTITY = "identity"
    INVERSE = "inverse"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Step:
    """One base function in a derivation, possibly inverted."""

    function: FunctionDef
    op: Op = Op.IDENTITY

    @property
    def domain(self) -> ObjectType:
        """Domain of the step's effective mapping."""
        if self.op is Op.INVERSE:
            return self.function.range
        return self.function.domain

    @property
    def range(self) -> ObjectType:
        """Range of the step's effective mapping."""
        if self.op is Op.INVERSE:
            return self.function.domain
        return self.function.range

    @property
    def functionality(self) -> TypeFunctionality:
        """Type functionality of the step's effective mapping."""
        if self.op is Op.INVERSE:
            return self.function.functionality.inverse()
        return self.function.functionality

    def inverted(self) -> "Step":
        """The step with its operator flipped."""
        other = Op.INVERSE if self.op is Op.IDENTITY else Op.IDENTITY
        return Step(self.function, other)

    def __str__(self) -> str:
        if self.op is Op.INVERSE:
            return f"{self.function.name}^-1"
        return self.function.name


class Derivation:
    """A composition chain of (possibly inverted) base functions.

    >>> Derivation([Step(teach, Op.INVERSE)])          # doctest: +SKIP
    taught_by's derivation: teach^-1
    >>> Derivation.compose_names(schema, "score", "cutoff")  # doctest: +SKIP
    score o cutoff
    """

    def __init__(self, steps: Iterable[Step]) -> None:
        self._steps = tuple(steps)
        if not self._steps:
            raise DerivationError("a derivation must have at least one step")
        for left, right in zip(self._steps, self._steps[1:]):
            if left.range != right.domain:
                raise DerivationError(
                    f"steps do not chain: {left} has range {left.range} "
                    f"but {right} has domain {right.domain}"
                )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def of(cls, *steps: FunctionDef | Step) -> "Derivation":
        """Build a derivation from function definitions and/or steps.

        Bare :class:`FunctionDef`\\ s are wrapped in identity steps.
        """
        return cls(
            step if isinstance(step, Step) else Step(step) for step in steps
        )

    # -- properties -----------------------------------------------------------

    @property
    def steps(self) -> tuple[Step, ...]:
        return self._steps

    @property
    def domain(self) -> ObjectType:
        return self._steps[0].domain

    @property
    def range(self) -> ObjectType:
        return self._steps[-1].range

    @property
    def functionality(self) -> TypeFunctionality:
        """Composition of the step functionalities, in order."""
        return compose_functionalities(step.functionality for step in self._steps)

    @property
    def function_names(self) -> tuple[str, ...]:
        return tuple(step.function.name for step in self._steps)

    def uses(self, name: str) -> bool:
        """Whether the named function appears in any step."""
        return any(step.function.name == name for step in self._steps)

    # -- equivalence tests (Section 2.1) --------------------------------------

    def syntactically_equivalent_to(self, function: FunctionDef) -> bool:
        """Same domain and range as ``function``."""
        return self.domain == function.domain and self.range == function.range

    def type_functionally_equivalent_to(self, function: FunctionDef) -> bool:
        return self.functionality == function.functionality

    def matches(self, function: FunctionDef) -> bool:
        """Syntactic *and* type-functional equivalence with ``function``.

        Under the UFA this is exactly the condition for the derivation to
        be semantically equivalent to ``function`` — i.e. to *be* a
        derivation of it.
        """
        return (
            self.syntactically_equivalent_to(function)
            and self.type_functionally_equivalent_to(function)
        )

    # -- algebra -----------------------------------------------------------------

    def inverted(self) -> "Derivation":
        """The derivation of the inverse mapping.

        ``(u1 f1 o ... o uk fk)^-1 = uk' fk o ... o u1' f1`` where each
        step is flipped and the order reversed.
        """
        return Derivation(step.inverted() for step in reversed(self._steps))

    def then(self, other: "Derivation") -> "Derivation":
        """Concatenate: ``self o other``."""
        return Derivation(self._steps + other._steps)

    # -- container protocol --------------------------------------------------------

    def __iter__(self) -> Iterator[Step]:
        return iter(self._steps)

    def __len__(self) -> int:
        return len(self._steps)

    def __getitem__(self, index: int) -> Step:
        return self._steps[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Derivation):
            return NotImplemented
        return self._steps == other._steps

    def __hash__(self) -> int:
        return hash(self._steps)

    def __str__(self) -> str:
        return " o ".join(str(step) for step in self._steps)

    def __repr__(self) -> str:
        return f"Derivation({list(self._steps)!r})"
