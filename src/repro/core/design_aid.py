"""The on-line interactive design aid (Method 2.1, Sections 2.2-2.3).

"At the heart of the on-line design methodology a function graph is
maintained dynamically. Initially we start with an empty graph and add
the functions of the conceptual schema one at a time. At any given time
during this process the function graph corresponds to the minimal schema
of the set of functions added so far."

A :class:`DesignSession` holds the dynamic function graph plus the
catalog of every function added so far; any catalog function absent from
the graph is derived, the rest are base. Adding a function runs steps
2-3 of Method 2.1: each cycle formed by the new edge is located, its
*candidate derived functions* identified (the edges whose syntactic and
type-functional information agree with the other path around the cycle),
and the pair (cycle, candidates) is reported to a :class:`Designer`, who
chooses an edge to remove — or declines, leaving the cycle in place (the
paper's ``grade``/``attendance`` example, where the system's suggestion
is wrong and the designer keeps all three functions).

Designers are pluggable:

* :class:`ScriptedDesigner` replays recorded decisions — used by the
  test suite and the benches to re-run the paper's Section 2.3 trace
  verbatim;
* :class:`AutoDesigner` applies a fixed heuristic (useful for scale
  benchmarks where no human is available);
* the interactive console designer lives in :mod:`repro.lang.repl`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.errors import DesignError
from repro.core.derivation import Derivation
from repro.core.graph import FunctionGraph, Path, PathStep
from repro.core.schema import FunctionDef, Schema
from repro.obs.hooks import OBS

__all__ = [
    "CycleReport",
    "Designer",
    "ScriptedDesigner",
    "AutoDesigner",
    "CallbackDesigner",
    "DesignEvent",
    "DesignOutcome",
    "DesignSession",
    "complement_in_cycle",
]


def complement_in_cycle(cycle: Path, index: int) -> Path:
    """The other path around ``cycle``, between the endpoints of step
    ``index``, oriented from that step's function's domain to its range.

    If the chosen edge is a candidate derived function, this path is its
    derivation. For a length-1 cycle (a self-loop) the complement is the
    empty path, which derives nothing.
    """
    steps = cycle.steps
    if not cycle.is_cycle:
        raise DesignError("complement_in_cycle needs a cycle")
    if not 0 <= index < len(steps):
        raise DesignError(f"no step {index} in a cycle of length {len(steps)}")
    chosen = steps[index]
    # Walking the rest of the cycle from the chosen step's target back
    # around to its source traverses, in order, the steps after ``index``
    # then the steps before it.
    onward: list[PathStep] = list(steps[index + 1:]) + list(steps[:index])
    forward_path = Path(chosen.target, onward)
    if chosen.forward:
        # Step went domain -> range; the complement must also read
        # domain -> range, i.e. from source to target the other way
        # around: reverse the onward walk.
        return forward_path.reversed()
    # Step went range -> domain, so the onward walk (target -> source)
    # already reads domain -> range.
    return forward_path


@dataclass(frozen=True)
class CycleReport:
    """What the system shows the designer for one cycle (step 3(ii)).

    Attributes
    ----------
    trigger:
        The function whose addition formed the cycle.
    cycle:
        The cycle, as a closed path starting with ``trigger`` traversed
        forward.
    candidates:
        The candidate derived functions: edges of the cycle whose
        syntactic and type-functional information agree with the rest of
        the cycle, paired with that complementary derivation.
    """

    trigger: FunctionDef
    cycle: Path
    candidates: tuple[tuple[FunctionDef, Derivation], ...]

    @property
    def cycle_functions(self) -> tuple[FunctionDef, ...]:
        return tuple(step.edge.function for step in self.cycle)

    @property
    def candidate_functions(self) -> tuple[FunctionDef, ...]:
        return tuple(function for function, _ in self.candidates)

    def derivation_for(self, name: str) -> Derivation:
        for function, derivation in self.candidates:
            if function.name == name:
                return derivation
        raise DesignError(f"{name!r} is not a candidate in this cycle")

    def describe(self) -> str:
        names = " - ".join(f.name for f in self.cycle_functions)
        if self.candidates:
            cands = ", ".join(f.name for f in self.candidate_functions)
        else:
            cands = "(none)"
        return f"cycle: {names}; candidate derived functions: {cands}"


class Designer(abc.ABC):
    """The human in the loop of Method 2.1."""

    @abc.abstractmethod
    def break_cycle(self, report: CycleReport) -> str | None:
        """Choose the candidate derived function to remove from the
        dynamic graph, by name, or return None to keep the cycle."""

    @abc.abstractmethod
    def confirm_derivation(self, function: FunctionDef,
                           derivation: Derivation) -> bool:
        """Vet one potential derivation of a derived function (the
        filtering step at the end of Section 2.2)."""


class ScriptedDesigner(Designer):
    """A designer that replays recorded decisions.

    ``removals`` maps a frozenset of cycle edge names to the name to
    remove (or None to keep the cycle). ``rejected_derivations`` lists
    ``(function_name, derivation_text)`` pairs to invalidate; everything
    else is confirmed — matching how the paper's designer confirms three
    derivations and invalidates ``grade = attendance o attendance_eval``.

    Unused removal entries are tolerated; a cycle with no entry raises,
    so a drifting trace fails loudly in tests.
    """

    def __init__(
        self,
        removals: dict[frozenset[str], str | None],
        rejected_derivations: Iterable[tuple[str, str]] = (),
    ) -> None:
        self._removals = dict(removals)
        self._rejected = set(rejected_derivations)
        self.unmatched_cycles: list[CycleReport] = []

    def break_cycle(self, report: CycleReport) -> str | None:
        key = frozenset(report.cycle.edge_names)
        if key not in self._removals:
            self.unmatched_cycles.append(report)
            raise DesignError(
                f"no scripted decision for cycle {sorted(key)}"
            )
        return self._removals[key]

    def confirm_derivation(self, function: FunctionDef,
                           derivation: Derivation) -> bool:
        return (function.name, str(derivation)) not in self._rejected


class AutoDesigner(Designer):
    """A non-interactive heuristic designer for large-scale runs.

    Prefers to classify the *triggering* (most recently added) function
    as derived when it is a candidate; otherwise removes the first
    candidate; keeps the cycle when there are no candidates. Confirms
    every derivation. With this policy the session computes the same
    separation AMS would under the UFA.
    """

    def break_cycle(self, report: CycleReport) -> str | None:
        if not report.candidates:
            return None
        candidate_names = [f.name for f in report.candidate_functions]
        if report.trigger.name in candidate_names:
            return report.trigger.name
        return candidate_names[0]

    def confirm_derivation(self, function: FunctionDef,
                           derivation: Derivation) -> bool:
        return True


class CallbackDesigner(Designer):
    """Adapter turning two callables into a designer — convenient for
    embedding the session in UIs or notebooks."""

    def __init__(
        self,
        on_cycle: Callable[[CycleReport], str | None],
        on_derivation: Callable[[FunctionDef, Derivation], bool] = (
            lambda function, derivation: True
        ),
    ) -> None:
        self._on_cycle = on_cycle
        self._on_derivation = on_derivation

    def break_cycle(self, report: CycleReport) -> str | None:
        return self._on_cycle(report)

    def confirm_derivation(self, function: FunctionDef,
                           derivation: Derivation) -> bool:
        return self._on_derivation(function, derivation)


@dataclass(frozen=True)
class DesignEvent:
    """One entry of the session log, for printing design traces."""

    kind: str  # "added" | "cycle" | "removed" | "kept" | "retracted"
    function: str | None = None
    report: CycleReport | None = None

    def describe(self) -> str:
        if self.kind == "added":
            return f"added {self.function}"
        if self.kind == "cycle":
            assert self.report is not None
            return self.report.describe()
        if self.kind == "removed":
            return f"designer removed {self.function} (derived)"
        if self.kind == "retracted":
            return f"retracted {self.function} from the design"
        return "designer kept the cycle (no edge removed)"


@dataclass(frozen=True)
class DesignOutcome:
    """Result of :meth:`DesignSession.finish`.

    ``derivations`` holds, for each derived function, the designer-
    confirmed derivations found in the final base graph.
    """

    base: Schema
    derived: Schema
    derivations: dict[str, tuple[Derivation, ...]]

    def summary(self) -> str:
        lines = ["Base functions: " + ", ".join(self.base.names)]
        lines.append("Derived functions: " + ", ".join(self.derived.names))
        for name in self.derived.names:
            for derivation in self.derivations.get(name, ()):
                lines.append(f"  {name} = {derivation}")
        return "\n".join(lines)


class DesignSession:
    """Method 2.1: dynamically maintain the minimal schema.

    >>> session = DesignSession(designer)      # doctest: +SKIP
    >>> session.add(teach); session.add(taught_by)  # doctest: +SKIP
    >>> outcome = session.finish()             # doctest: +SKIP
    """

    def __init__(self, designer: Designer,
                 max_cycle_length: int | None = None) -> None:
        """``max_cycle_length`` bounds the cycles reported per addition.

        Section 2.2 warns that a cyclic function graph can produce an
        exponential number of cycles. Long cycles are also the least
        interesting (a derivation through eight functions rarely
        matches any edge's functionality), so production sessions on
        deliberately cyclic designs can cap the search; None (the
        default) reports everything, as the paper's method does.
        """
        self.designer = designer
        self.max_cycle_length = max_cycle_length
        self.catalog = Schema()
        self.graph = FunctionGraph()
        self.log: list[DesignEvent] = []
        # Cycles the designer explicitly kept, by edge-name set, so the
        # same cycle is not re-reported within or across additions.
        self._kept_cycles: set[frozenset[str]] = set()

    # -- step 1-4 of Method 2.1 -------------------------------------------

    def add(self, function: FunctionDef) -> list[CycleReport]:
        """Add the next function; returns the cycle reports raised.

        Implements one iteration of Method 2.1: the function joins the
        dynamic graph, every cycle it forms is reported to the designer,
        and designer-chosen edges are removed (classified derived).
        """
        self.catalog.add(function)
        self.graph.add(function)
        self.log.append(DesignEvent("added", function.name))
        if OBS.enabled:
            OBS.inc("design.functions_added")
            # Scope the cycle-hunting loop so its design.cycle events
            # carry span context in the structured event log.
            with OBS.span("design.add", key=function.name,
                          function=function.name):
                return self._resolve_cycles(function)
        return self._resolve_cycles(function)

    def _resolve_cycles(self, function: FunctionDef) -> list[CycleReport]:
        reports: list[CycleReport] = []
        while function.name in self.graph:
            report = self._next_unhandled_cycle(function)
            if report is None:
                break
            reports.append(report)
            self.log.append(DesignEvent("cycle", report=report))
            if OBS.enabled:
                OBS.inc("design.cycles_reported")
                OBS.event(
                    "design.cycle",
                    trigger=function.name,
                    cycle=" - ".join(f.name for f in report.cycle_functions),
                    candidates=len(report.candidates),
                )
            choice = self.designer.break_cycle(report)
            if choice is None:
                self._kept_cycles.add(frozenset(report.cycle.edge_names))
                self.log.append(DesignEvent("kept"))
                if OBS.enabled:
                    OBS.inc("design.decisions_kept")
                continue
            if choice not in report.cycle.edge_names:
                raise DesignError(
                    f"designer chose {choice!r}, which is not in the cycle"
                )
            if choice not in (f.name for f in report.candidate_functions):
                raise DesignError(
                    f"designer chose {choice!r}, but only candidate derived "
                    "functions may be removed (its syntax/type functionality "
                    "must agree with the rest of the cycle)"
                )
            self.graph.remove(choice)
            self.log.append(DesignEvent("removed", choice))
            if OBS.enabled:
                OBS.inc("design.decisions_removed")
        if OBS.enabled:
            OBS.gauge("design.graph_edges", len(self.graph))
            OBS.gauge("design.graph_nodes", len(self.graph.nodes))
        return reports

    def add_all(self, functions: Iterable[FunctionDef]) -> None:
        for function in functions:
            self.add(function)

    def retract(self, name: str) -> FunctionDef:
        """Withdraw a function from the design entirely.

        Method 2.1 only adds, but real design is iterative: a function
        declared by mistake must be removable. The function leaves the
        catalog and (if base) the dynamic graph; kept-cycle records
        that mention it are dropped, so an equivalent cycle formed
        later is reported afresh.
        """
        function = self.catalog.remove(name)
        if name in self.graph:
            self.graph.remove(name)
        self._kept_cycles = {
            cycle for cycle in self._kept_cycles if name not in cycle
        }
        self.log.append(DesignEvent("retracted", name))
        if OBS.enabled:
            OBS.inc("design.functions_retracted")
            OBS.gauge("design.graph_edges", len(self.graph))
            OBS.gauge("design.graph_nodes", len(self.graph.nodes))
        return function

    def _next_unhandled_cycle(self, trigger: FunctionDef) -> CycleReport | None:
        """First cycle through ``trigger`` whose edge set has not been
        kept by the designer already."""
        for cycle in self.graph.cycles_through(
            trigger.name, max_length=self.max_cycle_length
        ):
            key = frozenset(cycle.edge_names)
            if key in self._kept_cycles:
                continue
            return self._report_for(trigger, cycle)
        return None

    def _report_for(self, trigger: FunctionDef, cycle: Path) -> CycleReport:
        """Step 3(i): identify the candidate derived functions of a cycle.

        "A necessary condition for an edge to be a derived function is
        that its syntactic and type functional information agree with the
        other path between that pair of nodes in the cycle."
        """
        candidates: list[tuple[FunctionDef, Derivation]] = []
        for index, step in enumerate(cycle.steps):
            complement = complement_in_cycle(cycle, index)
            if not complement.steps:
                continue  # self-loop: nothing derives it
            function = step.edge.function
            if complement.equivalent_to(function):
                candidates.append((function, complement.to_derivation()))
        return CycleReport(trigger, cycle, tuple(candidates))

    # -- inspection --------------------------------------------------------

    @property
    def base_schema(self) -> Schema:
        """The current minimal schema (the dynamic graph's functions)."""
        return self.graph.to_schema()

    @property
    def derived_schema(self) -> Schema:
        """Catalog functions not in the graph — the derived functions."""
        return self.catalog - self.base_schema

    def is_derived(self, name: str) -> bool:
        if name not in self.catalog:
            raise DesignError(f"{name!r} was never added to this session")
        return name not in self.graph

    def potential_derivations(self, name: str) -> Iterator[Derivation]:
        """All syntactically and type-functionally equivalent paths in the
        current base graph — before designer filtering."""
        function = self.catalog[name]
        for path in self.graph.iter_equivalent_paths(function):
            yield path.to_derivation()

    def confirmed_derivations(self, name: str) -> tuple[Derivation, ...]:
        """Potential derivations that survive designer vetting."""
        function = self.catalog[name]
        return tuple(
            derivation
            for derivation in self.potential_derivations(name)
            if self.designer.confirm_derivation(function, derivation)
        )

    def finish(self) -> DesignOutcome:
        """Extract the design (typically at the end): base and derived
        subschemas plus confirmed derivations of every derived function.
        """
        derived = self.derived_schema
        derivations = {
            name: self.confirmed_derivations(name) for name in derived.names
        }
        return DesignOutcome(self.base_schema, derived, derivations)

    def trace(self) -> str:
        """The session log as printable text (used by examples/benches to
        reproduce the Section 2.3 trace)."""
        return "\n".join(event.describe() for event in self.log)
