"""Graphviz (DOT) export of function graphs and designs.

Figure 1 of the paper is a drawing of the dynamic function graph. This
module renders :class:`repro.core.graph.FunctionGraph` instances and
finished :class:`repro.core.design_aid.DesignOutcome` designs as DOT
text, so the figure can actually be drawn (``dot -Tpng``). Derived
functions appear as dashed edges labelled with their derivations.

Output is deterministic: nodes and edges are emitted in insertion
order, so the same design always produces the same file.
"""

from __future__ import annotations

from repro.core.design_aid import DesignOutcome
from repro.core.graph import FunctionGraph

__all__ = ["graph_to_dot", "design_to_dot", "dag_to_dot"]


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def graph_to_dot(graph: FunctionGraph, *, name: str = "function_graph",
                 rankdir: str = "LR") -> str:
    """The function graph as an undirected DOT graph.

    Each edge is labelled ``function (functionality)`` and drawn from
    domain to range so orientation stays readable even in an undirected
    drawing.
    """
    lines = [f"graph {_quote(name)} {{", f"  rankdir={rankdir};",
             "  node [shape=ellipse];"]
    for node in graph.nodes:
        lines.append(f"  {_quote(str(node))};")
    for edge in graph.edges:
        label = f"{edge.name} ({edge.function.functionality})"
        lines.append(
            f"  {_quote(str(edge.u))} -- {_quote(str(edge.v))} "
            f"[label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)


_DAG_STYLES = {
    "span": "shape=box",
    "event": "shape=ellipse, style=dashed, color=gray40, "
             "fontcolor=gray40",
    "action": "shape=ellipse, style=bold",
    "cause": "shape=diamond, style=filled, fillcolor=lightyellow",
}


def dag_to_dot(nodes, edges, *, name: str = "dag",
               rankdir: str = "TB") -> str:
    """A generic directed acyclic graph as DOT text.

    ``nodes`` is an iterable of ``(node_id, label, kind)`` triples —
    ``kind`` selects a node style (span/event/action/cause, anything
    else drawn plain); ``edges`` of ``(src_id, dst_id, label)``
    triples. Used for update-propagation DAGs reconstructed from the
    structured event log (:func:`repro.obs.events.propagation_dag`),
    but intentionally knows nothing about events: any DAG renders.
    """
    lines = [f"digraph {_quote(name)} {{", f"  rankdir={rankdir};"]
    for node_id, label, kind in nodes:
        style = _DAG_STYLES.get(kind)
        # Multi-line labels use DOT's \n escape, not raw newlines.
        attrs = "label=" + _quote(label).replace("\n", "\\n")
        if style:
            attrs += f", {style}"
        lines.append(f"  {_quote(node_id)} [{attrs}];")
    for src, dst, label in edges:
        attrs = f" [label={_quote(label)}]" if label else ""
        lines.append(f"  {_quote(src)} -> {_quote(dst)}{attrs};")
    lines.append("}")
    return "\n".join(lines)


def design_to_dot(outcome: DesignOutcome, *, name: str = "design",
                  rankdir: str = "LR") -> str:
    """A finished design: base edges solid, derived edges dashed and
    annotated with their confirmed derivations (Figure 1 with the
    derived functions drawn back in)."""
    lines = [f"graph {_quote(name)} {{", f"  rankdir={rankdir};",
             "  node [shape=ellipse];"]
    nodes: dict[str, None] = {}
    for function in list(outcome.base) + list(outcome.derived):
        nodes.setdefault(str(function.domain))
        nodes.setdefault(str(function.range))
    for node in nodes:
        lines.append(f"  {_quote(node)};")
    for function in outcome.base:
        label = f"{function.name} ({function.functionality})"
        lines.append(
            f"  {_quote(str(function.domain))} -- "
            f"{_quote(str(function.range))} [label={_quote(label)}];"
        )
    for function in outcome.derived:
        derivations = outcome.derivations.get(function.name, ())
        how = "; ".join(str(d) for d in derivations) or "?"
        label = f"{function.name} = {how}"
        lines.append(
            f"  {_quote(str(function.domain))} -- "
            f"{_quote(str(function.range))} "
            f"[style=dashed, color=gray40, fontcolor=gray40, "
            f"label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)
