"""The function graph of a functional database schema.

Section 2.1: "We define the function graph of an FDB F with schema S as
an undirected graph G_F = (V, E) where V is the set of object types of F
(i.e., domains and ranges of the various functions) and E = {(D1, D2) |
for some F in S, F: D1 -> D2}. The syntax and type functionality of an
edge follow from the function it represents. We define the syntax of a
path D_i1, ..., D_ik as D_i1 -> D_ik. The type functionality of a path
is the composition of the type functionality of the edges in the path."

Because two distinct functions may connect the same pair of object types
(``teach`` and ``taught_by`` both join faculty and course), the graph is
an undirected *multigraph*: one edge per function, identified by the
function's name. Traversing an edge against its function's direction
applies the inverse operator, so a path is exactly a derivation
``u1(f_i1) o ... o uk(f_ik)`` with ``u_j in {identity, inverse}``.

Two kinds of path search are provided:

* :meth:`FunctionGraph.iter_paths` enumerates *simple* paths (no repeated
  node), which is what cycle detection and derivation listing need;
* :meth:`FunctionGraph.has_equivalent_walk` decides, via a BFS over
  ``(node, type-functionality)`` states, whether *any* walk between two
  nodes realizes a target type functionality. Type functionalities only
  grow (toward many-many) under composition, so the state space has at
  most ``4 |V|`` states and the search runs in O(V + E) — this is the
  "search traversal of the function graph which takes O(n) time" inside
  Algorithm AMS (Lemma 3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.errors import GraphError
from repro.core.derivation import Derivation, Op, Step
from repro.core.schema import FunctionDef, Schema
from repro.core.types import (
    Multiplicity,
    ObjectType,
    TypeFunctionality,
    compose_functionalities,
)

__all__ = ["Edge", "PathStep", "Path", "FunctionGraph"]


@dataclass(frozen=True, slots=True)
class Edge:
    """An edge of the function graph: one function of the schema.

    ``u``/``v`` are the function's domain/range; as a graph edge it is
    undirected, but the orientation matters for the syntax and type
    functionality of paths through it.
    """

    function: FunctionDef

    @property
    def name(self) -> str:
        return self.function.name

    @property
    def u(self) -> ObjectType:
        return self.function.domain

    @property
    def v(self) -> ObjectType:
        return self.function.range

    @property
    def is_self_loop(self) -> bool:
        return self.u == self.v

    def other_end(self, node: ObjectType) -> ObjectType:
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise GraphError(f"{node} is not an endpoint of edge {self.name!r}")

    def __str__(self) -> str:
        return f"{self.name}({self.u} -- {self.v})"


@dataclass(frozen=True, slots=True)
class PathStep:
    """One edge traversal within a path.

    ``forward`` is True when the edge is traversed from the function's
    domain to its range (identity operator) and False when traversed
    against it (inverse operator).
    """

    edge: Edge
    forward: bool

    @property
    def op(self) -> Op:
        return Op.IDENTITY if self.forward else Op.INVERSE

    @property
    def source(self) -> ObjectType:
        return self.edge.u if self.forward else self.edge.v

    @property
    def target(self) -> ObjectType:
        return self.edge.v if self.forward else self.edge.u

    @property
    def functionality(self) -> TypeFunctionality:
        tf = self.edge.function.functionality
        return tf if self.forward else tf.inverse()

    def reversed(self) -> "PathStep":
        return PathStep(self.edge, not self.forward)

    def to_step(self) -> Step:
        return Step(self.edge.function, self.op)

    def __str__(self) -> str:
        suffix = "" if self.forward else "^-1"
        return f"{self.edge.name}{suffix}"


class Path:
    """A path (or cycle, when start == end) in the function graph.

    The empty path at a node is permitted (it is the identity mapping with
    type functionality one-one); non-empty paths must chain.
    """

    def __init__(self, start: ObjectType, steps: Iterable[PathStep] = ()) -> None:
        self.start = start
        self.steps = tuple(steps)
        at = start
        for step in self.steps:
            if step.source != at:
                raise GraphError(
                    f"path step {step} does not start at {at}"
                )
            at = step.target
        self.end = at

    # -- the paper's path attributes --------------------------------------

    @property
    def syntax(self) -> tuple[ObjectType, ObjectType]:
        """The syntax of the path: ``start -> end`` (Section 2.1)."""
        return (self.start, self.end)

    @property
    def functionality(self) -> TypeFunctionality:
        """Composition of the traversed edges' type functionalities."""
        return compose_functionalities(step.functionality for step in self.steps)

    def equivalent_to(self, function: FunctionDef) -> bool:
        """Syntactic and type-functional equivalence with ``function``."""
        return (
            self.start == function.domain
            and self.end == function.range
            and self.functionality == function.functionality
        )

    # -- structure ----------------------------------------------------------

    @property
    def nodes(self) -> tuple[ObjectType, ...]:
        result = [self.start]
        for step in self.steps:
            result.append(step.target)
        return tuple(result)

    @property
    def edge_names(self) -> tuple[str, ...]:
        return tuple(step.edge.name for step in self.steps)

    @property
    def is_cycle(self) -> bool:
        return bool(self.steps) and self.start == self.end

    def uses(self, edge_name: str) -> bool:
        return edge_name in self.edge_names

    def reversed(self) -> "Path":
        return Path(
            self.end, (step.reversed() for step in reversed(self.steps))
        )

    def to_derivation(self) -> Derivation:
        """The derivation this path denotes (non-empty paths only)."""
        if not self.steps:
            raise GraphError("the empty path denotes no derivation")
        return Derivation(step.to_step() for step in self.steps)

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[PathStep]:
        return iter(self.steps)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self.start == other.start and self.steps == other.steps

    def __hash__(self) -> int:
        return hash((self.start, self.steps))

    def __str__(self) -> str:
        if not self.steps:
            return f"<empty path at {self.start}>"
        return " o ".join(str(step) for step in self.steps)

    def __repr__(self) -> str:
        return f"Path({self.start!r}, {list(self.steps)!r})"


def _exceeds(current: TypeFunctionality, target: TypeFunctionality) -> bool:
    """True when ``current`` already has MANY where ``target`` needs ONE.

    Composition can only push components toward MANY, so such a state can
    never reach ``target`` and may be pruned.
    """
    if (current.src_per_tgt is Multiplicity.MANY
            and target.src_per_tgt is Multiplicity.ONE):
        return True
    return (current.tgt_per_src is Multiplicity.MANY
            and target.tgt_per_src is Multiplicity.ONE)


class FunctionGraph:
    """An undirected multigraph with one edge per schema function."""

    def __init__(self, functions: Iterable[FunctionDef] = ()) -> None:
        self._edges: dict[str, Edge] = {}
        self._adjacency: dict[ObjectType, list[Edge]] = {}
        for function in functions:
            self.add(function)

    # -- construction ---------------------------------------------------------

    def add(self, function: FunctionDef) -> Edge:
        """Insert an edge for ``function``; names must be unique."""
        if function.name in self._edges:
            raise GraphError(f"edge {function.name!r} already in graph")
        edge = Edge(function)
        self._edges[function.name] = edge
        self._adjacency.setdefault(edge.u, []).append(edge)
        if not edge.is_self_loop:
            self._adjacency.setdefault(edge.v, []).append(edge)
        return edge

    def remove(self, name: str) -> Edge:
        """Remove the named edge. Isolated nodes are kept: the object
        types of the schema do not disappear when a function is
        classified as derived."""
        try:
            edge = self._edges.pop(name)
        except KeyError:
            raise GraphError(f"no edge named {name!r}") from None
        self._adjacency[edge.u].remove(edge)
        if not edge.is_self_loop:
            self._adjacency[edge.v].remove(edge)
        return edge

    @classmethod
    def of_schema(cls, schema: Schema) -> "FunctionGraph":
        return cls(schema)

    # -- inspection ----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._edges

    def __len__(self) -> int:
        return len(self._edges)

    @property
    def edges(self) -> tuple[Edge, ...]:
        return tuple(self._edges.values())

    @property
    def edge_names(self) -> tuple[str, ...]:
        return tuple(self._edges)

    @property
    def nodes(self) -> tuple[ObjectType, ...]:
        return tuple(self._adjacency)

    def edge(self, name: str) -> Edge:
        try:
            return self._edges[name]
        except KeyError:
            raise GraphError(f"no edge named {name!r}") from None

    def edges_at(self, node: ObjectType) -> tuple[Edge, ...]:
        return tuple(self._adjacency.get(node, ()))

    def degree(self, node: ObjectType) -> int:
        """Number of edge traversals available at ``node`` (a self-loop
        contributes two)."""
        total = 0
        for edge in self._adjacency.get(node, ()):
            total += 2 if edge.is_self_loop else 1
        return total

    def to_schema(self) -> Schema:
        return Schema(edge.function for edge in self.edges)

    def copy(self) -> "FunctionGraph":
        return FunctionGraph(edge.function for edge in self.edges)

    # -- traversal helpers -----------------------------------------------------

    def _traversals_from(self, node: ObjectType,
                         avoiding: frozenset[str]) -> Iterator[PathStep]:
        """Every single-edge traversal leaving ``node``.

        A non-loop edge yields one traversal (toward its other end); a
        self-loop yields two (forward and backward), since composing with
        the function or its inverse are distinct derivation steps.
        """
        for edge in self._adjacency.get(node, ()):
            if edge.name in avoiding:
                continue
            if edge.is_self_loop:
                yield PathStep(edge, forward=True)
                yield PathStep(edge, forward=False)
            else:
                yield PathStep(edge, forward=(node == edge.u))

    # -- simple-path enumeration -------------------------------------------------

    def iter_paths(
        self,
        source: ObjectType,
        target: ObjectType,
        *,
        avoiding: Iterable[str] = (),
        max_length: int | None = None,
        prune: Callable[[TypeFunctionality], bool] | None = None,
    ) -> Iterator[Path]:
        """Enumerate simple paths from ``source`` to ``target``.

        A path is simple when it repeats no node and no edge — except
        that when ``source == target`` the result is a simple *cycle*
        returning to the start. Single self-loop traversals at
        ``source`` count as cycles of length one. (Without the no-edge-
        repeat rule, ``f o f^-1`` would count as a length-2 cycle at
        every node; such immediate backtracks are walks, not cycles.)

        ``avoiding`` names edges that may not be used. ``prune``, when
        given, receives the type functionality composed so far and may
        return True to abandon the branch (used to search for paths with
        a target functionality without enumerating everything).
        """
        avoiding = frozenset(avoiding)
        if source not in self._adjacency and source != target:
            return

        steps: list[PathStep] = []
        visited: set[ObjectType] = {source}
        used_edges: set[str] = set()

        def extend(node: ObjectType, tf: TypeFunctionality) -> Iterator[Path]:
            for traversal in self._traversals_from(node, avoiding):
                if traversal.edge.name in used_edges:
                    continue
                nxt = traversal.target
                new_tf = tf.compose(traversal.functionality)
                if prune is not None and prune(new_tf):
                    continue
                if nxt == target:
                    if max_length is None or len(steps) + 1 <= max_length:
                        yield Path(source, (*steps, traversal))
                    continue
                if nxt in visited:
                    continue
                if max_length is not None and len(steps) + 1 >= max_length:
                    continue
                visited.add(nxt)
                used_edges.add(traversal.edge.name)
                steps.append(traversal)
                yield from extend(nxt, new_tf)
                steps.pop()
                used_edges.remove(traversal.edge.name)
                visited.remove(nxt)

        yield from extend(source, TypeFunctionality.ONE_ONE)

    def iter_equivalent_paths(
        self,
        function: FunctionDef,
        *,
        avoiding: Iterable[str] = (),
        include_self: bool = False,
    ) -> Iterator[Path]:
        """Simple paths syntactically and type-functionally equivalent to
        ``function``, i.e. the *potential derivations* of it present in
        this graph (Section 2.2: "the set of derivations of a derived
        function is given by the set of syntactic and type functionally
        equivalent paths").

        The function's own edge is excluded unless ``include_self``.
        """
        excluded = set(avoiding)
        if not include_self:
            excluded.add(function.name)
        target_tf = function.functionality
        for path in self.iter_paths(
            function.domain,
            function.range,
            avoiding=excluded,
            prune=lambda tf: _exceeds(tf, target_tf),
        ):
            if path.functionality == target_tf:
                yield path

    # -- walk-based equivalence decision (the AMS inner loop) -------------------

    def has_equivalent_walk(
        self,
        function: FunctionDef,
        *,
        avoiding: Iterable[str] = (),
    ) -> bool:
        """Whether some walk (repeats allowed) from ``function.domain`` to
        ``function.range`` composes to ``function.functionality``.

        Derivations are sequences of base functions with repetition
        allowed (the closure <G> of Section 2.1 places no distinctness
        requirement on the f_ij), so a walk witnesses derivability just as
        a simple path does. The BFS runs over (node, functionality)
        states; since composition is monotone toward many-many, at most
        ``4 |V|`` states exist and the scan is linear in the graph size.
        """
        excluded = frozenset(set(avoiding) | {function.name})
        target_node = function.range
        target_tf = function.functionality
        start = (function.domain, TypeFunctionality.ONE_ONE)
        seen: set[tuple[ObjectType, TypeFunctionality]] = {start}
        queue: deque[tuple[ObjectType, TypeFunctionality]] = deque([start])
        while queue:
            node, tf = queue.popleft()
            for traversal in self._traversals_from(node, excluded):
                new_tf = tf.compose(traversal.functionality)
                if _exceeds(new_tf, target_tf):
                    continue
                if traversal.target == target_node and new_tf == target_tf:
                    return True
                state = (traversal.target, new_tf)
                if state in seen:
                    continue
                seen.add(state)
                queue.append(state)
        return False

    # -- cycles -------------------------------------------------------------------

    def cycles_through(self, name: str,
                       max_length: int | None = None) -> Iterator[Path]:
        """Simple cycles containing the named edge.

        Each cycle is returned as a :class:`Path` that starts by
        traversing the edge forward (domain to range) and returns to the
        domain. A pair of parallel edges forms a length-2 cycle; a
        self-loop forms a length-1 cycle.
        """
        edge = self.edge(name)
        head = PathStep(edge, forward=True)
        if edge.is_self_loop:
            yield Path(edge.u, (head,))
            return
        remaining = None if max_length is None else max_length - 1
        for back in self.iter_paths(
            edge.v, edge.u, avoiding=(name,), max_length=remaining
        ):
            yield Path(edge.u, (head, *back.steps))

    def is_acyclic(self) -> bool:
        """Whether the graph (as a multigraph) has no cycle."""
        color: dict[ObjectType, int] = {}
        for root in self._adjacency:
            if root in color:
                continue
            # Iterative DFS tracking the edge used to enter each node, so
            # parallel edges and self-loops register as cycles.
            stack: list[tuple[ObjectType, str | None]] = [(root, None)]
            color[root] = 1
            while stack:
                node, entry_edge = stack.pop()
                for edge in self._adjacency.get(node, ()):
                    if edge.is_self_loop:
                        return False
                    if edge.name == entry_edge:
                        continue
                    nxt = edge.other_end(node)
                    if nxt in color:
                        return False
                    color[nxt] = 1
                    stack.append((nxt, edge.name))
        return True

    def __str__(self) -> str:
        lines = [f"FunctionGraph with {len(self._adjacency)} nodes, "
                 f"{len(self._edges)} edges"]
        for edge in self.edges:
            lines.append(f"  {edge}")
        return "\n".join(lines)
