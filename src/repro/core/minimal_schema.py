"""The Minimal Schema Problem (Section 2).

Given an FDB schema S, a *minimal schema* M is a minimal subschema such
that every function of S is either in M or derivable (by composition and
inverse) from functions of M. Solving the MSP separates base functions
(those in M) from derived ones (the rest).

Two regimes, matching the paper:

* **Without the Unique Form Assumption** the minimal schema is S itself
  (Lemma 1): nothing can be proved derived from syntax alone, because an
  instance can make any single function non-empty while all others are
  empty. :func:`minimal_schema_without_ufa` implements this degenerate
  but correct answer.

* **Under the UFA**, syntactic + type-functional equivalence of an edge
  with a path implies semantic equivalence, so the MSP reduces to graph
  search: Algorithm AMS (:func:`minimal_schema_ams`) removes every edge
  for which an equivalent path exists among the edges not yet removed,
  in O(n^2) time (Lemma 3).

Minimal schemas are not unique — in the paper's first example either of
``teach``/``taught_by`` may be kept. AMS resolves ties by declaration
order: the earlier-declared function is kept. Callers that want a
different tie-break can reorder the schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.derivation import Derivation
from repro.core.graph import FunctionGraph
from repro.core.schema import Schema
from repro.obs.hooks import OBS

__all__ = [
    "MinimalSchemaResult",
    "minimal_schema",
    "minimal_schema_ams",
    "minimal_schema_without_ufa",
    "all_minimal_schemas",
]


@dataclass(frozen=True)
class MinimalSchemaResult:
    """Outcome of a minimal-schema computation.

    Attributes
    ----------
    minimal:
        The minimal schema M — the base functions.
    derived:
        The subschema S - M — the derived functions.
    derivations:
        For each derived function name, the derivations found in the
        function graph of M (every syntactically and type-functionally
        equivalent simple path). Under the UFA each of these is
        semantically valid; without it they are *potential* derivations
        for a designer to vet.
    """

    minimal: Schema
    derived: Schema
    derivations: dict[str, tuple[Derivation, ...]] = field(default_factory=dict)

    @property
    def base_names(self) -> tuple[str, ...]:
        return self.minimal.names

    @property
    def derived_names(self) -> tuple[str, ...]:
        return self.derived.names

    def summary(self) -> str:
        """A human-readable report, in the style of Section 2.3."""
        lines = ["Base functions:"]
        for function in self.minimal:
            lines.append(f"  {function}")
        lines.append("Derived functions:")
        for function in self.derived:
            lines.append(f"  {function}")
            for derivation in self.derivations.get(function.name, ()):
                lines.append(f"    {function.name} = {derivation}")
        return "\n".join(lines)


def minimal_schema_ams(schema: Schema) -> MinimalSchemaResult:
    """Algorithm AMS (Section 2.1).

    Step 1 constructs the function graph G_F; step 2 scans the edges in
    declaration order, moving edge e to the removed set M-bar whenever
    the remaining graph G' = (V, E - M-bar - {e}) contains a path
    syntactically and type-functionally equivalent to e; step 3 returns
    M = S - M-bar.

    The inner existence test uses the walk-based BFS of
    :meth:`FunctionGraph.has_equivalent_walk`, which runs in time linear
    in the graph, giving the O(n^2) total of Lemma 3.
    """
    if OBS.enabled:
        OBS.inc("design.ams.runs")
        with OBS.span("design.ams", key=f"n={len(schema)}",
                      functions=len(schema)):
            result = _run_ams(schema)
        OBS.inc("design.ams.edges_scanned", len(schema))
        OBS.inc("design.ams.removed", len(result.derived))
        return result
    return _run_ams(schema)


def _run_ams(schema: Schema) -> MinimalSchemaResult:
    graph = FunctionGraph.of_schema(schema)
    removed: set[str] = set()
    for function in schema:
        # has_equivalent_walk already excludes the function's own edge,
        # so G' = (V, E - removed - {e}) as in step 2 of AMS.
        if graph.has_equivalent_walk(function, avoiding=removed):
            removed.add(function.name)
    minimal = Schema(f for f in schema if f.name not in removed)
    derived = schema - minimal

    minimal_graph = FunctionGraph.of_schema(minimal)
    derivations = {
        function.name: tuple(
            path.to_derivation()
            for path in minimal_graph.iter_equivalent_paths(function)
        )
        for function in derived
    }
    return MinimalSchemaResult(minimal, derived, derivations)


def minimal_schema_without_ufa(schema: Schema) -> MinimalSchemaResult:
    """Lemma 1: without the UFA the minimal schema is the schema itself.

    For any function f, the instance in which f is non-empty and every
    other function empty is possible, so no proper subschema can derive
    f. Every function is base; there are no derived functions.
    """
    return MinimalSchemaResult(schema.copy(), Schema(), {})


def all_minimal_schemas(schema: Schema,
                        limit: int = 64) -> list[Schema]:
    """Every minimal schema of the FDB, under the UFA.

    AMS returns *one* minimal schema, chosen by declaration order;
    the paper's first example shows the designer may prefer another
    (keep ``teach`` or keep ``taught_by``). This enumerates the whole
    space by branching on every removable function and deduplicating
    the fixpoints. Worst case exponential — ``limit`` caps the result
    count (a :class:`repro.errors.GraphError` would be surprising
    here, so exceeding the cap raises ``ValueError`` instead).

    For Table 1 this yields exactly two minimal schemas:
    ``{score, cutoff, teach}`` and ``{score, cutoff, taught_by}``.
    """
    results: dict[frozenset[str], Schema] = {}
    visited: set[frozenset[str]] = set()

    def explore(kept_names: frozenset[str]) -> None:
        if kept_names in visited:
            return
        visited.add(kept_names)
        kept = schema.restricted_to(kept_names)
        graph = FunctionGraph.of_schema(kept)
        removable = [
            function.name
            for function in kept
            if graph.has_equivalent_walk(function)
        ]
        if not removable:
            if kept_names not in results:
                if len(results) >= limit:
                    raise ValueError(
                        f"more than {limit} minimal schemas; raise the "
                        "limit to enumerate them all"
                    )
                results[kept_names] = kept
            return
        for name in removable:
            explore(kept_names - {name})

    explore(frozenset(schema.names))
    # Deterministic order: by kept-name tuple.
    return [
        results[key]
        for key in sorted(results, key=lambda names: tuple(sorted(names)))
    ]


def minimal_schema(schema: Schema, *, ufa: bool = True) -> MinimalSchemaResult:
    """Solve the MSP for ``schema``.

    ``ufa=True`` applies Algorithm AMS (the schema is trusted to satisfy
    the Unique Form Assumption); ``ufa=False`` returns the Lemma-1
    answer. For schemas that violate the UFA, use the interactive
    :class:`repro.core.design_aid.DesignSession` instead — AMS will
    happily misclassify functions such as ``class_list`` in the paper's
    S2 example, which is exactly the paper's argument for the on-line
    methodology.
    """
    if ufa:
        return minimal_schema_ams(schema)
    return minimal_schema_without_ufa(schema)
