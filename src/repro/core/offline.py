"""Off-line design verification (the paper's reference [13]).

Section 5 contrasts the on-line methodology with "off-line approaches
[13] to perform the task of identifying derived functions [that] rely
upon constraints placed on the conceptual design". The off-line
workflow is: the designer hands in a *finished* design — the schema,
the base/derived partition, and optionally the claimed derivations —
and the system verifies it wholesale instead of interacting.

:func:`verify_offline_design` performs that audit:

* every claimed derivation must be well-formed over the base functions
  and syntactically/type-functionally equivalent to its function;
* every derived function must have at least one candidate derivation
  in the base function graph (otherwise the partition is untenable);
* base functions that are themselves derivable from the *other* base
  functions are flagged as redundancy warnings (the base set is not
  minimal — legal, but exactly the inconsistency risk the paper's
  introduction warns about).

The report distinguishes hard *problems* (the design cannot stand)
from *warnings* (the design works but embeds unmanaged redundancy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.core.derivation import Derivation
from repro.core.graph import FunctionGraph
from repro.core.schema import Schema

__all__ = ["OfflineDesignReport", "verify_offline_design"]


@dataclass
class OfflineDesignReport:
    """Outcome of verifying a finished design."""

    base: Schema
    derived: Schema
    problems: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    candidate_derivations: dict[str, tuple[Derivation, ...]] = field(
        default_factory=dict
    )

    @property
    def ok(self) -> bool:
        """No hard problems (warnings allowed)."""
        return not self.problems

    def summary(self) -> str:
        lines = [
            f"off-line design check: "
            f"{'OK' if self.ok else 'REJECTED'} "
            f"({len(self.problems)} problems, "
            f"{len(self.warnings)} warnings)"
        ]
        for problem in self.problems:
            lines.append(f"  problem: {problem}")
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        for name, derivations in self.candidate_derivations.items():
            for derivation in derivations:
                lines.append(f"  {name} = {derivation}")
        return "\n".join(lines)


def verify_offline_design(
    schema: Schema,
    base_names: list[str] | tuple[str, ...],
    claimed: dict[str, Derivation] | None = None,
) -> OfflineDesignReport:
    """Audit a designer-supplied base/derived partition of ``schema``.

    ``claimed`` optionally maps derived function names to the exact
    derivation the designer asserts; unclaimed derived functions are
    checked for the existence of *some* candidate derivation.
    """
    claimed = dict(claimed or {})
    base_set = set(base_names)
    unknown = base_set - set(schema.names)
    if unknown:
        raise SchemaError(
            f"base names not in schema: {sorted(unknown)}"
        )
    base = schema.restricted_to(base_set)
    derived = schema - base
    report = OfflineDesignReport(base, derived)
    graph = FunctionGraph.of_schema(base)

    for name, derivation in claimed.items():
        if name in base_set:
            report.problems.append(
                f"{name} is declared base but has a claimed derivation"
            )
            continue
        if name not in schema:
            report.problems.append(
                f"claimed derivation for unknown function {name!r}"
            )
            continue
        function = schema[name]
        outside = [
            step.function.name
            for step in derivation
            if step.function.name not in base_set
        ]
        if outside:
            report.problems.append(
                f"derivation of {name} uses non-base functions: "
                f"{outside}"
            )
            continue
        if not derivation.matches(function):
            report.problems.append(
                f"derivation {derivation} does not match {name}'s "
                "syntax/type functionality"
            )

    for function in derived:
        candidates = tuple(
            path.to_derivation()
            for path in graph.iter_equivalent_paths(function)
        )
        report.candidate_derivations[function.name] = candidates
        if not candidates and function.name not in claimed:
            report.problems.append(
                f"derived function {function.name} has no candidate "
                "derivation over the base functions"
            )

    for function in base:
        if graph.has_equivalent_walk(function):
            report.warnings.append(
                f"base function {function.name} is derivable from the "
                "other base functions (base set is not minimal)"
            )
    return report
