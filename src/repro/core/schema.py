"""Function definitions and conceptual schemas.

A conceptual schema of a functional database is "a collection of
functions" (Section 1): each function is a triplet
``<function_name, domain_type, range_type>`` plus its declared type
functionality. :class:`Schema` is an ordered, name-indexed collection of
:class:`FunctionDef` with set-like operations (the paper constantly forms
subschemas ``S - M`` and asks whether one schema is contained in
another).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import DuplicateFunctionError, SchemaError, UnknownFunctionError
from repro.core.types import ObjectType, TypeFunctionality

__all__ = ["FunctionDef", "Schema"]


@dataclass(frozen=True, slots=True)
class FunctionDef:
    """A function definition ``name: domain -> range; (functionality)``.

    Function definitions are *syntactic* objects: two functions with the
    same domain and range are syntactically equivalent but may be
    semantically different (Section 2.1). Identity of a ``FunctionDef``
    is therefore by all four components; lookups in a :class:`Schema` are
    by name.
    """

    name: str
    domain: ObjectType
    range: ObjectType
    functionality: TypeFunctionality = TypeFunctionality.MANY_MANY

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("function name must be non-empty")

    def syntactically_equivalent(self, other: "FunctionDef") -> bool:
        """Same domain type and same range type (Section 2.1)."""
        return self.domain == other.domain and self.range == other.range

    def type_functionally_equivalent(self, other: "FunctionDef") -> bool:
        return self.functionality == other.functionality

    @property
    def endpoints(self) -> tuple[ObjectType, ObjectType]:
        return (self.domain, self.range)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.domain} -> {self.range}; "
            f"({self.functionality})"
        )

    def __repr__(self) -> str:
        return (
            f"FunctionDef({self.name!r}, {self.domain!r}, {self.range!r}, "
            f"{self.functionality!r})"
        )


class Schema:
    """An ordered collection of function definitions with unique names.

    Order matters: Algorithm AMS iterates over edges "for each edge e in
    E", and the on-line design aid adds functions "one at a time" — both
    in declaration order, so results are deterministic.

    The class supports the subschema arithmetic used throughout Section 2:

    >>> s = Schema([f1, f2, f3])          # doctest: +SKIP
    >>> s - Schema([f2])                  # doctest: +SKIP
    Schema([f1, f3])
    """

    def __init__(self, functions: Iterable[FunctionDef] = ()) -> None:
        self._functions: dict[str, FunctionDef] = {}
        for function in functions:
            self.add(function)

    # -- construction -----------------------------------------------------

    def add(self, function: FunctionDef) -> None:
        """Append a function definition; names must be unique."""
        if function.name in self._functions:
            raise DuplicateFunctionError(function.name)
        self._functions[function.name] = function

    def remove(self, name: str) -> FunctionDef:
        """Remove and return the definition called ``name``."""
        try:
            return self._functions.pop(name)
        except KeyError:
            raise UnknownFunctionError(name) from None

    # -- lookup ------------------------------------------------------------

    def __getitem__(self, name: str) -> FunctionDef:
        try:
            return self._functions[name]
        except KeyError:
            raise UnknownFunctionError(name) from None

    def get(self, name: str) -> FunctionDef | None:
        return self._functions.get(name)

    def __contains__(self, item: str | FunctionDef) -> bool:
        if isinstance(item, FunctionDef):
            return self._functions.get(item.name) == item
        return item in self._functions

    def __iter__(self) -> Iterator[FunctionDef]:
        return iter(self._functions.values())

    def __len__(self) -> int:
        return len(self._functions)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._functions)

    @property
    def object_types(self) -> tuple[ObjectType, ...]:
        """Every domain and range appearing in the schema, in first-use
        order (the vertex set of the function graph)."""
        seen: dict[ObjectType, None] = {}
        for function in self:
            seen.setdefault(function.domain)
            seen.setdefault(function.range)
        return tuple(seen)

    # -- subschema arithmetic ----------------------------------------------

    def __sub__(self, other: "Schema | Iterable[FunctionDef]") -> "Schema":
        excluded = {f.name for f in other}
        return Schema(f for f in self if f.name not in excluded)

    def __or__(self, other: "Schema") -> "Schema":
        merged = Schema(self)
        for function in other:
            if function.name not in merged._functions:
                merged.add(function)
            elif merged[function.name] != function:
                raise SchemaError(
                    f"conflicting definitions of {function.name!r} in union"
                )
        return merged

    def restricted_to(self, names: Iterable[str]) -> "Schema":
        """The subschema containing exactly the named functions."""
        wanted = set(names)
        missing = wanted - set(self._functions)
        if missing:
            raise UnknownFunctionError(sorted(missing)[0])
        return Schema(f for f in self if f.name in wanted)

    def is_subschema_of(self, other: "Schema") -> bool:
        return all(f in other for f in self)

    # -- misc ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return set(self._functions.values()) == set(other._functions.values())

    def __hash__(self) -> int:  # schemas are mutable; keep them unhashable
        raise TypeError("Schema is not hashable")

    def copy(self) -> "Schema":
        return Schema(self)

    def __str__(self) -> str:
        return "\n".join(str(f) for f in self)

    def __repr__(self) -> str:
        return f"Schema({list(self._functions.values())!r})"
