"""Text format for conceptual schemas, matching the paper's notation.

The paper prints function definitions as::

    grade: [student; course] -> letter_grade; (many - one)
    teach: faculty -> course

(Table 1 and Section 2.1; the arrow appears in the paper as a unicode
right arrow, rendered here as ``->``. The type functionality annotation
is optional and defaults to many-many, the weakest assumption.)

:func:`parse_schema` reads a block of such lines (blank lines and ``#``
comments ignored); :func:`format_schema` prints a schema back in the
same notation, so the Table 1 bench can round-trip the paper's figure.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.core.schema import FunctionDef, Schema
from repro.core.types import ObjectType, TypeFunctionality

__all__ = ["parse_function_def", "parse_schema", "format_schema"]

_ARROW = re.compile(r"->|→")
_FUNCTIONALITY = re.compile(
    r";?\s*\(\s*(one|many)\s*-\s*(one|many)\s*\)\s*;?\s*$", re.IGNORECASE
)


def parse_function_def(text: str, line: int | None = None) -> FunctionDef:
    """Parse one definition line.

    >>> str(parse_function_def("cutoff: marks -> letter_grade; (many-one)"))
    'cutoff: marks -> letter_grade; (many-one)'
    """
    stripped = text.strip().rstrip(";").strip()
    if not stripped:
        raise ParseError("empty function definition", line)

    functionality = TypeFunctionality.MANY_MANY
    match = _FUNCTIONALITY.search(text)
    if match:
        functionality = TypeFunctionality.parse(
            f"{match.group(1)}-{match.group(2)}"
        )
        stripped = text[: match.start()].strip().rstrip(";").strip()

    if ":" not in stripped:
        raise ParseError(
            f"missing ':' in function definition {text!r}", line
        )
    name, _, signature = stripped.partition(":")
    name = name.strip()
    if not name or not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
        raise ParseError(f"bad function name {name!r}", line)

    parts = _ARROW.split(signature)
    if len(parts) != 2:
        raise ParseError(
            f"expected exactly one '->' in {text!r}", line
        )
    try:
        domain = ObjectType.parse(parts[0])
        range_ = ObjectType.parse(parts[1])
    except ValueError as exc:
        raise ParseError(str(exc), line) from exc
    return FunctionDef(name, domain, range_, functionality)


def parse_schema(text: str) -> Schema:
    """Parse a newline-separated block of function definitions.

    Lines may be numbered in the Table 1 style (``1. grade: ...``);
    leading enumeration, blank lines and ``#`` comments are ignored.
    """
    schema = Schema()
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.split("#", 1)[0].strip()
        if not stripped:
            continue
        stripped = re.sub(r"^\d+\.\s*", "", stripped)
        schema.add(parse_function_def(stripped, line=number))
    return schema


def format_schema(schema: Schema, *, numbered: bool = False) -> str:
    """Render a schema in the paper's notation.

    With ``numbered=True`` the output matches Table 1's enumerated
    layout.
    """
    lines = []
    for index, function in enumerate(schema, start=1):
        prefix = f"{index}. " if numbered else ""
        lines.append(prefix + str(function))
    return "\n".join(lines)
