"""Object types and the type-functionality algebra.

The paper models a functional database as a set of *object types* together
with functions ``F: alpha -> beta`` between them. Functions are in general
multi-valued mappings, and each carries a *type functionality* describing
the nature of the mapping: one-one, one-many, many-one or many-many
(Section 2.1).

We represent a type functionality as a pair of :class:`Multiplicity`
components:

``src_per_tgt``
    how many domain objects may map to a single range object;

``tgt_per_src``
    how many range objects a single domain object may map to.

Under this encoding the paper's names read naturally: ``cutoff: marks ->
letter_grade`` is *many-one* — many marks per letter grade
(``src_per_tgt = MANY``), one letter grade per mark
(``tgt_per_src = ONE``).

The paper composes type functionalities along paths of the function graph
("the type functionality of a path is the composition of the type
functionality of the edges in the path"). Composition here is the natural
worst-case rule: a component of the composite is ONE only when the
corresponding components of both factors are ONE; MANY is absorbing.
This makes ``(TypeFunctionality, compose)`` a commutative idempotent
monoid with identity ``ONE_ONE`` and with ``inverse`` an involution that
anti-commutes with composition — small algebraic laws the test suite
checks exhaustively and by property.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import ClassVar, Iterable

__all__ = [
    "Multiplicity",
    "TypeFunctionality",
    "ObjectType",
    "product_type",
    "compose_functionalities",
]


class Multiplicity(enum.Enum):
    """How many objects on one side of a mapping may pair with one object
    on the other side."""

    ONE = "one"
    MANY = "many"

    def join(self, other: "Multiplicity") -> "Multiplicity":
        """Worst-case combination: MANY absorbs."""
        if self is Multiplicity.MANY or other is Multiplicity.MANY:
            return Multiplicity.MANY
        return Multiplicity.ONE

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class TypeFunctionality:
    """The four mapping natures of the paper, as a pair of multiplicities.

    >>> TypeFunctionality.parse("many-one").inverse()
    TypeFunctionality.ONE_MANY
    >>> TypeFunctionality.MANY_ONE.compose(TypeFunctionality.MANY_ONE)
    TypeFunctionality.MANY_ONE
    """

    src_per_tgt: Multiplicity
    tgt_per_src: Multiplicity

    # The four canonical instances are attached to the class after its
    # definition (``TypeFunctionality.MANY_ONE`` etc.) so user code never
    # needs to build one from components.
    ONE_ONE: ClassVar["TypeFunctionality"]
    ONE_MANY: ClassVar["TypeFunctionality"]
    MANY_ONE: ClassVar["TypeFunctionality"]
    MANY_MANY: ClassVar["TypeFunctionality"]

    def compose(self, other: "TypeFunctionality") -> "TypeFunctionality":
        """Type functionality of ``self`` followed by ``other``.

        If ``f: A -> B`` has functionality ``self`` and ``g: B -> C`` has
        ``other``, the composite mapping ``f o g: A -> C`` (the paper's
        ``x:(f o g) = (x:f):g``) has the returned functionality. The rule
        is componentwise worst case: the composite maps a source to a
        single target only when both stages do, and a target is reached
        from a single source only when both stages are injective in that
        sense.
        """
        return TypeFunctionality(
            self.src_per_tgt.join(other.src_per_tgt),
            self.tgt_per_src.join(other.tgt_per_src),
        )

    def inverse(self) -> "TypeFunctionality":
        """Type functionality of the inverse mapping (components swap)."""
        return TypeFunctionality(self.tgt_per_src, self.src_per_tgt)

    @property
    def is_single_valued(self) -> bool:
        """True when each domain object maps to at most one range object.

        In Section 5 the paper notes that "the type functional information
        indicates relevant functional dependencies": a single-valued
        function is exactly a functional dependency from its domain to its
        range, which :mod:`repro.fdb.constraints` exploits to resolve
        null values.
        """
        return self.tgt_per_src is Multiplicity.ONE

    @property
    def is_injective(self) -> bool:
        """True when each range object is mapped to by at most one domain
        object."""
        return self.src_per_tgt is Multiplicity.ONE

    @classmethod
    def parse(cls, text: str) -> "TypeFunctionality":
        """Parse the paper's notation, e.g. ``"many-one"`` or
        ``"many - many"``. Case-insensitive; interior whitespace ignored.
        """
        normalized = "".join(text.split()).lower()
        try:
            src, tgt = normalized.split("-")
            return cls(Multiplicity(src), Multiplicity(tgt))
        except ValueError:
            raise ValueError(
                f"not a type functionality: {text!r} "
                "(expected e.g. 'many-one')"
            ) from None

    @staticmethod
    def all() -> tuple["TypeFunctionality", ...]:
        """The four possible type functionalities, in a fixed order."""
        return (
            TypeFunctionality.ONE_ONE,
            TypeFunctionality.ONE_MANY,
            TypeFunctionality.MANY_ONE,
            TypeFunctionality.MANY_MANY,
        )

    def __str__(self) -> str:
        return f"{self.src_per_tgt}-{self.tgt_per_src}"

    def __repr__(self) -> str:
        name = f"{self.src_per_tgt.name}_{self.tgt_per_src.name}"
        return f"TypeFunctionality.{name}"


# Canonical instances.
TypeFunctionality.ONE_ONE = TypeFunctionality(Multiplicity.ONE, Multiplicity.ONE)
TypeFunctionality.ONE_MANY = TypeFunctionality(Multiplicity.ONE, Multiplicity.MANY)
TypeFunctionality.MANY_ONE = TypeFunctionality(Multiplicity.MANY, Multiplicity.ONE)
TypeFunctionality.MANY_MANY = TypeFunctionality(Multiplicity.MANY, Multiplicity.MANY)


def compose_functionalities(
    functionalities: Iterable[TypeFunctionality],
) -> TypeFunctionality:
    """Fold :meth:`TypeFunctionality.compose` over a sequence.

    The empty sequence yields the identity ``ONE_ONE``, matching the
    convention that an empty path is the identity mapping.
    """
    result = TypeFunctionality.ONE_ONE
    for tf in functionalities:
        result = result.compose(tf)
    return result


@dataclass(frozen=True, slots=True)
class ObjectType:
    """An object (entity) type: a node of the function graph.

    The paper's schemas include *product* domains like
    ``[student; course]`` (the domain of ``grade`` in Table 1). A product
    type is a single object type whose ``components`` record the factor
    names; two product types are equal iff their component sequences are
    equal. Simple types have an empty ``components`` tuple.
    """

    name: str
    components: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("object type name must be non-empty")

    @property
    def is_product(self) -> bool:
        return bool(self.components)

    @classmethod
    def parse(cls, text: str) -> "ObjectType":
        """Parse a type name, accepting the paper's product syntax.

        >>> ObjectType.parse("marks")
        ObjectType('marks')
        >>> ObjectType.parse("[student; course]")
        ObjectType('[student; course]')
        """
        text = text.strip()
        if text.startswith("[") and text.endswith("]"):
            parts = tuple(
                part.strip() for part in text[1:-1].split(";") if part.strip()
            )
            if not parts:
                raise ValueError(f"empty product type: {text!r}")
            return product_type(*parts)
        if not text:
            raise ValueError("empty object type name")
        return cls(text)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"ObjectType({self.name!r})"


def product_type(*components: str) -> ObjectType:
    """Build a product object type from component names.

    The canonical name matches the paper's notation:
    ``product_type("student", "course")`` prints as
    ``[student; course]``.
    """
    if not components:
        raise ValueError("a product type needs at least one component")
    name = "[" + "; ".join(components) + "]"
    return ObjectType(name, tuple(components))
