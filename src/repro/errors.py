"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the engine can catch one type. The subclasses mirror the
layers of the system: schema-level errors, function-graph errors, update
errors, and language errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "UnknownFunctionError",
    "UnknownTypeError",
    "DuplicateFunctionError",
    "DerivationError",
    "GraphError",
    "DesignError",
    "UpdateError",
    "ConstraintViolation",
    "NotABaseFunctionError",
    "NotADerivedFunctionError",
    "TransactionError",
    "PersistenceError",
    "ParseError",
    "OperationCancelled",
    "DeadlineExceeded",
    "ServiceError",
    "LockTimeout",
    "DeadlockDetected",
    "ServiceOverloaded",
    "ServiceReadOnly",
    "ServiceClosed",
    "CrossShardError",
    "ReplicationError",
    "StalePrimary",
    "LeaseExpired",
    "ReplicationTimeout",
    "StalenessUnserved",
    "ReplicaDiverged",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A schema-level inconsistency (bad definition, bad reference)."""


class UnknownFunctionError(SchemaError):
    """A function name was referenced that is not in the schema."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown function: {name!r}")
        self.name = name


class UnknownTypeError(SchemaError):
    """An object type was referenced that is not in the schema."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown object type: {name!r}")
        self.name = name


class DuplicateFunctionError(SchemaError):
    """Two function definitions share a name."""

    def __init__(self, name: str) -> None:
        super().__init__(f"duplicate function definition: {name!r}")
        self.name = name


class DerivationError(ReproError):
    """A derivation is malformed (steps do not chain, wrong endpoints...)."""


class GraphError(ReproError):
    """A function-graph operation failed (missing edge, bad path...)."""


class DesignError(ReproError):
    """An on-line design session was driven incorrectly."""


class UpdateError(ReproError):
    """An update could not be carried out."""


class ConstraintViolation(UpdateError):
    """An update would violate a declared constraint.

    Carries the constraint description so tools can report it.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)


class NotABaseFunctionError(UpdateError):
    """A base-only operation was attempted on a derived function."""

    def __init__(self, name: str) -> None:
        super().__init__(f"{name!r} is a derived function, not a base function")
        self.name = name


class NotADerivedFunctionError(UpdateError):
    """A derived-only operation was attempted on a base function."""

    def __init__(self, name: str) -> None:
        super().__init__(f"{name!r} is a base function, not a derived function")
        self.name = name


class TransactionError(ReproError):
    """Transaction misuse (nested begin, commit without begin...)."""


class PersistenceError(ReproError):
    """A snapshot could not be written or read back."""


class OperationCancelled(ReproError):
    """An operation observed a cancellation checkpoint and aborted.

    Raised *between* units of work (chains enumerated, log records
    appended), never mid-mutation; inside a transaction or the WAL's
    write-ahead wrapper the abort rolls back cleanly.
    """


class DeadlineExceeded(OperationCancelled):
    """A request ran past its deadline and was cooperatively cancelled."""


class ServiceError(ReproError):
    """A request could not be served by the concurrent service layer."""


class LockTimeout(ServiceError):
    """A lock could not be acquired within the request's timeout.

    Transient by nature — the standard response is backoff and retry
    (see :class:`repro.service.retry.RetryPolicy`).
    """


class DeadlockDetected(ServiceError):
    """The lock manager found a wait-for cycle involving this request.

    The requester is the chosen victim: it holds its other locks until
    it releases them, so it must back off (drop everything it holds)
    and retry.
    """


class ServiceOverloaded(ServiceError):
    """Admission control shed the request (queue full or queue wait
    timed out). The client should back off before resubmitting."""


class ServiceReadOnly(ServiceError):
    """The durable-storage circuit breaker is open: updates are
    rejected fast while reads continue to be served."""


class ServiceClosed(ServiceError):
    """The service is draining or closed and accepts no new requests."""


class CrossShardError(ServiceError):
    """An operation crossed shard-lane boundaries where the sharded
    facade guarantees none (e.g. read-modify-write over clusters owned
    by different shards, or a single-lane read spanning shards).
    Callers should use the facade's scatter-gather or multi-shard
    write paths, which carry weaker guarantees — see
    ``docs/SHARDING.md``."""


class ReplicationError(ServiceError):
    """A replication-layer operation failed (shipping, failover,
    catch-up). Subclasses distinguish the caller-visible cases."""


class StalePrimary(ReplicationError):
    """A deposed primary tried to commit after the group moved on.

    Raised by the epoch fence: the writer's term is below the group's
    current term, so accepting the write would fork the committed
    history (split brain). The write was rejected *before* it could
    reach the write-ahead log.
    """

    def __init__(self, writer_term: int, group_term: int) -> None:
        super().__init__(
            f"stale primary: writer holds term {writer_term}, the "
            f"group is at term {group_term}"
        )
        self.writer_term = writer_term
        self.group_term = group_term


class LeaseExpired(StalePrimary, ServiceReadOnly):
    """The primary's leadership lease lapsed: no quorum of the group
    confirmed it within the validity window, so it self-demoted.

    Raised on the write path *before* any WAL append, like every
    :class:`StalePrimary` — a partitioned primary stops writing on its
    own, which is what makes split-brain structurally impossible. Also
    a :class:`ServiceReadOnly`: to clients the node is read-only until
    a quorum renews the lease (same term, no fence) or a new primary
    is elected (term fence).
    """

    def __init__(self, term: int, age: float,
                 validity: float) -> None:
        ReplicationError.__init__(
            self,
            f"leadership lease expired: term {term} was last "
            f"quorum-confirmed {age:.3f}s ago (validity window "
            f"{validity:.3f}s) — writes refused until a quorum renews "
            f"or a new primary is elected"
        )
        self.writer_term = term
        self.group_term = term
        self.age = age
        self.validity = validity


class ReplicationTimeout(ReplicationError):
    """The commit mode's durability quota (sync(k)/quorum acks) was
    not met within the ack timeout. The update is durable and applied
    on the primary but was *not* acknowledged to the caller — after a
    failover it may legitimately be absent."""


class StalenessUnserved(ReplicationError):
    """No replica satisfied the read's bounded-staleness requirement
    (``max_lag_seq`` / ``max_lag_seconds``)."""


class ReplicaDiverged(ReplicationError):
    """A replica refused a record stream that conflicts with what it
    already applied (term regression or sequence mismatch) — the
    catch-up protocol must re-bootstrap it from a checkpoint."""


class ParseError(ReproError):
    """The surface language could not be parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        position = ""
        if line is not None:
            position = f" at line {line}"
            if column is not None:
                position += f", column {column}"
        super().__init__(message + position)
        self.line = line
        self.column = column
