"""Deterministic fault injection (see :mod:`repro.faults.registry`).

The registry and fault types live here; the crash-matrix driver that
exercises every registered point is :mod:`repro.faults.harness`
(imported explicitly — not re-exported — so that the storage/WAL
modules, which register fault points at import time, never form an
import cycle with the harness that drives them).

Run the full matrix from the command line::

    python -m repro.faults
"""

from repro.faults.registry import (
    FAULTS,
    CrashFault,
    ErrorFault,
    Fault,
    FaultRegistry,
    LatencyFault,
    SimulatedCrash,
    TornWrite,
    TransientError,
)

__all__ = [
    "FAULTS",
    "CrashFault",
    "ErrorFault",
    "Fault",
    "FaultRegistry",
    "LatencyFault",
    "SimulatedCrash",
    "TornWrite",
    "TransientError",
]
