"""``python -m repro.faults`` — run the crash matrix and exit nonzero
on any divergence or unreached fault point."""

from repro.faults.harness import main

if __name__ == "__main__":
    raise SystemExit(main())
