"""``python -m repro.faults`` — crash matrix by default, chaos soak
with ``--soak``. Both exit nonzero on any divergence."""

from __future__ import annotations

import argparse


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description=(
            "Fault-injection harnesses: the single-failure crash "
            "matrix (default) or the concurrent chaos soak (--soak)."
        ),
    )
    parser.add_argument("--soak", action="store_true",
                        help="run the concurrent chaos soak instead of "
                             "the crash matrix")
    parser.add_argument("--shards", type=int, default=0,
                        help="with --soak: run the sharded-keyspace "
                             "soak (parallel per-shard write lanes, "
                             "multi-shard global-lane writes, "
                             "scatter-gather reads) across this many "
                             "lanes; combine with --replicas R for a "
                             "replication group per lane and "
                             "--auto-failover for a leased shard-0 "
                             "lane failed over by election mid-run")
    parser.add_argument("--replicas", type=int, default=0,
                        help="with --soak: run the replication soak "
                             "(partition / replica-crash / "
                             "primary-kill failover matrix) against "
                             "this many replicas instead of the "
                             "single-node soak")
    parser.add_argument("--modes", default="sync(1),quorum",
                        help="replication soak commit modes, "
                             "comma-separated (default "
                             "'sync(1),quorum')")
    parser.add_argument("--scenarios",
                        default="partition,replica_crash,primary_kill",
                        help="replication soak scenarios, "
                             "comma-separated")
    parser.add_argument("--threads", type=int, default=8,
                        help="soak worker threads (default 8)")
    parser.add_argument("--ops", type=int, default=30,
                        help="ops per worker (default 30)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    parser.add_argument("--jsonl", default=None,
                        help="event-log JSONL path (default: inside "
                             "the soak's temp workdir)")
    parser.add_argument("--no-faults", action="store_true",
                        help="soak without the fault schedule "
                             "(pure concurrency check)")
    parser.add_argument("--scrape-dir", default=None,
                        help="directory for the mid-soak /metrics and "
                             "/health scrape snapshots (default: the "
                             "soak workdir)")
    parser.add_argument("--no-endpoint", action="store_true",
                        help="soak without the live metrics endpoint "
                             "(skips the scrape checks)")
    parser.add_argument("--auto-failover", action="store_true",
                        help="with --soak --replicas: run every cell "
                             "under lease-based leadership (heartbeat "
                             "failure detection, coordinator-driven "
                             "election) with clock skew and heartbeat "
                             "loss injected; the primary-kill and "
                             "partition cells must then fail over "
                             "without any harness-driven promote()")
    args = parser.parse_args(argv)

    if not args.soak:
        from repro.faults.harness import main as matrix_main

        return matrix_main()

    if args.shards > 0:
        from repro.faults.shard import ShardSoakConfig, run_shard_soak

        shard_report = run_shard_soak(ShardSoakConfig(
            shards=args.shards,
            threads=args.threads,
            ops_per_thread=args.ops,
            seed=args.seed,
            replicas=args.replicas,
            auto_failover=args.auto_failover,
            jsonl=args.jsonl,
            faults=not args.no_faults,
            serve_endpoint=not args.no_endpoint,
            scrape_dir=args.scrape_dir,
        ))
        for line in shard_report.lines():
            print(line)
        return 0 if shard_report.ok else 1

    if args.replicas > 0:
        from repro.faults.replication import (
            ReplicationSoakConfig,
            run_replication_soak,
        )

        repl_report = run_replication_soak(ReplicationSoakConfig(
            replicas=args.replicas,
            threads=args.threads,
            ops_per_thread=args.ops,
            seed=args.seed,
            jsonl=args.jsonl,
            modes=tuple(
                m.strip() for m in args.modes.split(",") if m.strip()
            ),
            scenarios=tuple(
                s.strip() for s in args.scenarios.split(",")
                if s.strip()
            ),
            serve_endpoint=not args.no_endpoint,
            scrape_dir=args.scrape_dir,
            auto_failover=args.auto_failover,
        ))
        for line in repl_report.lines():
            print(line)
        return 0 if repl_report.ok else 1

    from repro.faults.soak import SoakConfig, run_soak

    report = run_soak(SoakConfig(
        threads=args.threads,
        ops_per_thread=args.ops,
        seed=args.seed,
        jsonl=args.jsonl,
        faults=not args.no_faults,
        serve_endpoint=not args.no_endpoint,
        scrape_dir=args.scrape_dir,
    ))
    for line in report.lines():
        print(line)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
