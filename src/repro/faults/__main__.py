"""``python -m repro.faults`` — crash matrix by default, chaos soak
with ``--soak``. Both exit nonzero on any divergence."""

from __future__ import annotations

import argparse


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description=(
            "Fault-injection harnesses: the single-failure crash "
            "matrix (default) or the concurrent chaos soak (--soak)."
        ),
    )
    parser.add_argument("--soak", action="store_true",
                        help="run the concurrent chaos soak instead of "
                             "the crash matrix")
    parser.add_argument("--threads", type=int, default=8,
                        help="soak worker threads (default 8)")
    parser.add_argument("--ops", type=int, default=30,
                        help="ops per worker (default 30)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    parser.add_argument("--jsonl", default=None,
                        help="event-log JSONL path (default: inside "
                             "the soak's temp workdir)")
    parser.add_argument("--no-faults", action="store_true",
                        help="soak without the fault schedule "
                             "(pure concurrency check)")
    parser.add_argument("--scrape-dir", default=None,
                        help="directory for the mid-soak /metrics and "
                             "/health scrape snapshots (default: the "
                             "soak workdir)")
    parser.add_argument("--no-endpoint", action="store_true",
                        help="soak without the live metrics endpoint "
                             "(skips the scrape checks)")
    args = parser.parse_args(argv)

    if not args.soak:
        from repro.faults.harness import main as matrix_main

        return matrix_main()

    from repro.faults.soak import SoakConfig, run_soak

    report = run_soak(SoakConfig(
        threads=args.threads,
        ops_per_thread=args.ops,
        seed=args.seed,
        jsonl=args.jsonl,
        faults=not args.no_faults,
        serve_endpoint=not args.no_endpoint,
        scrape_dir=args.scrape_dir,
    ))
    for line in report.lines():
        print(line)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
