"""The crash-matrix harness: kill the process at every fault point,
then prove recovery.

For each registered fault point the driver runs a scripted workload —
updates through a :class:`repro.fdb.wal.LoggedDatabase`, a checkpoint
in the middle — with a fault armed at that point, catches the
:class:`SimulatedCrash`, and recovers from the files the "dead
process" left behind. The assertion is always the same, and it is the
paper's durability contract: **recovery reproduces exactly the
committed prefix** — every update that was acknowledged (or durably
logged at the crash instant) and nothing else.

What "committed" means at a crash is decided by the fault point's
registered ``durable`` flag: an update in flight when the process dies
*before* its record is durably appended never happened; one in flight
*after* the durable append is committed intent and must replay. The
expected state is computed independently of recovery, by re-running
the committed updates on a fresh copy of the seed instance (update
application is deterministic, which is the whole reason log replay
works — Section 4.1's procedures draw null and NC indices from
persisted counters).

Two sweeps complement the point matrix:

* torn writes — the torn-capable points run again with
  :class:`TornWrite` faults that persist only a prefix of the record;
* a byte-truncation sweep over *every* offset of the final WAL record
  of a cleanly finished run, simulating the tail loss an fsync-less
  filesystem can inflict after the fact.

Run the whole thing from the command line::

    python -m repro.faults
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.faults.registry import (
    FAULTS,
    CrashFault,
    ErrorFault,
    Fault,
    SimulatedCrash,
    TornWrite,
)
from repro.fdb import persistence
from repro.fdb.database import FunctionalDatabase
from repro.fdb.updates import Update, UpdateSequence, apply_update
from repro.fdb.wal import LoggedDatabase, RecoveryReport, UpdateLog, \
    checkpoint, recover
from repro.workloads.university import pupil_database, section_42_updates

__all__ = [
    "CrashOutcome",
    "default_workload",
    "states_diff",
    "run_scenario",
    "run_crash_matrix",
    "run_truncation_sweep",
    "main",
]

# Points that only fire when an *apply* fails: their runs additionally
# arm an ErrorFault at wal.apply.before so the failure path is taken.
_FAILURE_PATH_POINTS = frozenset({
    "txn.rollback.before-restore",
    "wal.abort.append",
})

# Torn-write prefix lengths tried at torn-capable points (clamped by
# TornWrite itself to the payload length).
_TORN_PREFIXES = (0, 1, 17)


def default_workload() -> list[tuple]:
    """The scripted run: the paper's Section 4.2 update sequence with
    a checkpoint in the middle, then a replace and an atomic sequence
    so the transactional paths fire too."""
    u = section_42_updates()
    return [
        ("update", u[0]),
        ("update", u[1]),
        ("update", u[2]),
        ("checkpoint",),
        ("update", u[3]),
        ("update", u[4]),
        ("update", Update.rep("teach", ("euclid", "math"),
                              ("euclid", "cs"))),
        ("update", UpdateSequence((
            Update.ins("teach", "noether", "algebra"),
            Update.delete("teach", "noether", "algebra"),
        ), label="churn")),
    ]


def states_diff(expected: FunctionalDatabase,
                actual: FunctionalDatabase) -> str | None:
    """The first observable difference between two instances, or None.

    Compares everything update semantics can touch: stored rows (with
    flags and NCLs), the NC registry, and both index counters.
    """
    names = set(expected.base_names) | set(actual.base_names)
    for name in sorted(names):
        left = expected.table(name).rows()
        right = actual.table(name).rows()
        if left != right:
            return (f"table {name}: expected {left!r}, "
                    f"recovered {right!r}")
    left_ncs = {nc.index: nc.members for nc in expected.ncs}
    right_ncs = {nc.index: nc.members for nc in actual.ncs}
    if left_ncs != right_ncs:
        return f"NCs: expected {left_ncs!r}, recovered {right_ncs!r}"
    if expected.nulls.next_index != actual.nulls.next_index:
        return (f"null counter: expected {expected.nulls.next_index}, "
                f"recovered {actual.nulls.next_index}")
    if expected.ncs.next_index != actual.ncs.next_index:
        return (f"NC counter: expected {expected.ncs.next_index}, "
                f"recovered {actual.ncs.next_index}")
    return None


@dataclass(frozen=True)
class CrashOutcome:
    """One cell of the crash matrix."""

    point: str
    fault: str
    fired: bool
    crashed: bool
    divergence: str | None
    report: RecoveryReport | None

    @property
    def ok(self) -> bool:
        return self.fired and self.divergence is None

    def __str__(self) -> str:
        status = "ok" if self.ok else (
            "NOT-REACHED" if not self.fired else "DIVERGED"
        )
        crash = "crashed" if self.crashed else "survived"
        return f"{self.point:38s} {self.fault:18s} {crash:9s} {status}"


def _expected_state(committed: list) -> FunctionalDatabase:
    """The oracle: the committed prefix applied to a fresh seed
    instance, with no recovery machinery involved."""
    db = pupil_database()
    for update in committed:
        if isinstance(update, UpdateSequence):
            for simple in update:
                apply_update(db, simple)
        else:
            apply_update(db, update)
    return db


def run_scenario(point: str, fault: Fault, workdir: Path,
                 workload: list[tuple] | None = None) -> CrashOutcome:
    """Run the workload with ``fault`` armed at ``point`` in a fresh
    directory, then recover and compare against the committed prefix.
    """
    steps = workload if workload is not None else default_workload()
    workdir.mkdir(parents=True, exist_ok=True)
    snapshot = workdir / "snapshot.json"
    log_path = workdir / "wal.log"

    # Setup runs un-faulted: the seed snapshot is the recovery base.
    FAULTS.disarm_all()
    db = pupil_database()
    persistence.save(db, snapshot)
    logged = LoggedDatabase(db, UpdateLog(log_path))

    durable = {info.name: info.durable for info in FAULTS.points()}
    hits_before = FAULTS.hits(point)
    FAULTS.arm(point, fault)
    if point in _FAILURE_PATH_POINTS:
        FAULTS.arm("wal.apply.before", ErrorFault(times=1))

    committed: list = []
    in_flight = None
    crashed = False
    try:
        for step in steps:
            if step[0] == "checkpoint":
                checkpoint(logged, snapshot)
                continue
            update = step[1]
            in_flight = update
            try:
                logged.execute(update)
            except SimulatedCrash:
                raise
            except Exception:
                # Apply failed and was compensated (abort record):
                # not committed; the run carries on.
                in_flight = None
                continue
            committed.append(update)
            in_flight = None
    except SimulatedCrash:
        crashed = True
    finally:
        FAULTS.disarm_all()

    fired = FAULTS.hits(point) > hits_before
    if crashed and in_flight is not None and durable.get(point):
        # The process died with this update durably logged but not
        # (fully) applied: replay must produce it.
        committed.append(in_flight)

    report = recover(snapshot, log_path, policy="salvage")
    divergence = states_diff(_expected_state(committed), report.db)
    return CrashOutcome(point, repr(fault), fired, crashed,
                        divergence, report)


def run_crash_matrix(base_dir: Path,
                     workload: list[tuple] | None = None
                     ) -> list[CrashOutcome]:
    """Every registered single-node fault point × its applicable
    faults, plus one un-faulted control run. ``repl.*`` points only
    fire in a replicated topology; the failover matrix in
    :mod:`repro.faults.replication` owns them."""
    outcomes: list[CrashOutcome] = []
    cell = 0
    for info in FAULTS.points():
        if info.name.startswith("repl."):
            continue
        faults: list[Fault] = [CrashFault()]
        if info.supports_torn_write:
            faults.extend(TornWrite(n) for n in _TORN_PREFIXES)
        for fault in faults:
            cell += 1
            outcomes.append(run_scenario(
                info.name, fault, base_dir / f"cell-{cell:03d}",
                workload,
            ))
    # Control: no fault at all; the clean run must also round-trip.
    control_dir = base_dir / "control"
    control = run_scenario("wal.append.after", _NoopFault(),
                           control_dir, workload)
    outcomes.append(CrashOutcome(
        "(control: no fault)", "None", True, control.crashed,
        control.divergence, control.report,
    ))
    return outcomes


class _NoopFault(Fault):
    def trigger(self, point: str, **context) -> None:
        return

    def __repr__(self) -> str:
        return "None"


def run_truncation_sweep(base_dir: Path,
                         workload: list[tuple] | None = None
                         ) -> list[CrashOutcome]:
    """Cut the final WAL record of a clean run at *every* byte offset
    and recover: each tear must yield the state without the final
    update; the complete-but-unterminated record must yield the full
    state (it was written and fsync'd — only the newline is cosmetic).
    """
    steps = workload if workload is not None else default_workload()
    updates = [step[1] for step in steps if step[0] == "update"]
    workdir = base_dir / "sweep-base"
    clean = run_scenario("wal.append.after", _NoopFault(), workdir,
                         steps)
    if clean.divergence is not None:  # pragma: no cover - matrix bug
        raise AssertionError(f"clean run diverged: {clean.divergence}")

    log_path = workdir / "wal.log"
    snapshot = workdir / "snapshot.json"
    raw = log_path.read_bytes()
    last_line = raw.rstrip(b"\n").rsplit(b"\n", 1)[-1]
    body_start = len(raw) - len(last_line) - 1  # -1: trailing newline

    without_last = _expected_state(updates[:-1])
    with_last = _expected_state(updates)
    outcomes: list[CrashOutcome] = []
    torn_path = base_dir / "sweep-torn.log"
    for offset in range(len(last_line) + 1):
        torn_path.write_bytes(raw[: body_start + offset])
        report = recover(snapshot, torn_path, policy="strict")
        expected = (with_last if offset == len(last_line)
                    else without_last)
        divergence = states_diff(expected, report.db)
        outcomes.append(CrashOutcome(
            f"truncation@{offset}", f"cut to {offset}B", True, True,
            divergence, report,
        ))
    return outcomes


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the full matrix + sweep, report, and fail
    on any divergence or unreached fault point."""
    import sys
    import tempfile

    base = Path(tempfile.mkdtemp(prefix="fdb-crash-matrix-"))
    matrix = run_crash_matrix(base / "matrix")
    sweep = run_truncation_sweep(base / "sweep")
    bad = [o for o in matrix + sweep if not o.ok]
    for outcome in matrix:
        print(outcome)
    print(f"truncation sweep: {len(sweep)} offsets, "
          f"{sum(1 for o in sweep if o.ok)} ok")
    print(f"matrix: {len(matrix)} cells, "
          f"{sum(1 for o in matrix if o.ok)} ok")
    for outcome in bad:
        print(f"FAIL: {outcome}"
              + (f"\n  {outcome.divergence}" if outcome.divergence
                 else ""), file=sys.stderr)
    return 1 if bad else 0
