"""Deterministic fault injection for the durability layer.

Crash-safety claims are only as good as the crashes they were tested
against. This module provides a process-wide :data:`FAULTS` registry of
*named fault points* threaded through the storage, WAL, persistence and
transaction code. In production nothing is armed and every
:meth:`FaultRegistry.fire` call is a single dict lookup that finds
nothing; under test, a harness arms a fault at a point and the next
``fire`` there simulates the failure:

* :class:`CrashFault` — the process dies *at* the point (raises
  :class:`SimulatedCrash`, which derives from ``BaseException`` so no
  library ``except Exception`` handler can accidentally "survive" it);
* :class:`TornWrite` — the process dies mid-write, leaving only the
  first *n* bytes of the payload on disk (the classic torn record);
* :class:`TransientError` — the operation fails with ``OSError`` a set
  number of times and then works, exercising retry paths.

Every point is registered up front with a description, so harnesses can
*enumerate* the catalogue and prove they exercised all of it — a fault
matrix with a hole in it is the bug that ships.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "SimulatedCrash",
    "Fault",
    "CrashFault",
    "TornWrite",
    "TransientError",
    "ErrorFault",
    "LatencyFault",
    "ClockSkewFault",
    "HeartbeatDropFault",
    "FaultRegistry",
    "FAULTS",
]


class SimulatedCrash(BaseException):
    """The simulated death of the process at a fault point.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so that
    library-level ``except Exception`` recovery code cannot catch it: a
    real crash gives no such chance, and the harness must observe the
    same on-disk state a real crash would leave.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at fault point {point!r}")
        self.point = point


class Fault:
    """Base class for injectable faults. Subclasses implement
    :meth:`trigger`, called with the point name and whatever context
    the fire site provides."""

    def trigger(self, point: str, **context) -> None:
        raise NotImplementedError


class CrashFault(Fault):
    """Die at the point, touching nothing."""

    def trigger(self, point: str, **context) -> None:
        raise SimulatedCrash(point)

    def __repr__(self) -> str:
        return "CrashFault()"


class TornWrite(Fault):
    """Die mid-write: persist only the first ``nbytes`` of the payload.

    Fire sites that support torn writes pass ``handle`` (a binary or
    text file object positioned for the write) and ``data`` (the full
    payload). The fault writes the prefix, forces it to disk so the
    tear is really there, and then crashes.
    """

    def __init__(self, nbytes: int) -> None:
        self.nbytes = nbytes

    def trigger(self, point: str, **context) -> None:
        handle = context.get("handle")
        data = context.get("data")
        if handle is None or data is None:
            raise SimulatedCrash(point)
        handle.write(data[: self.nbytes])
        handle.flush()
        os.fsync(handle.fileno())
        raise SimulatedCrash(point)

    def __repr__(self) -> str:
        return f"TornWrite({self.nbytes})"


class TransientError(Fault):
    """Fail with ``OSError`` the first ``times`` firings, then recover.

    Exercises retry-with-backoff paths: the caller should succeed once
    the transient condition clears, without duplicating the write.
    The countdown is guarded by a lock so that concurrent firings
    consume exactly ``times`` failures in total.
    """

    def __init__(self, times: int = 1,
                 make: Callable[[], OSError] | None = None) -> None:
        self.times = times
        self.remaining = times
        self._lock = threading.Lock()
        self._make = make or (lambda: OSError("injected transient I/O "
                                              "error"))

    def trigger(self, point: str, **context) -> None:
        with self._lock:
            if self.remaining <= 0:
                return
            self.remaining -= 1
        raise self._make()

    def __repr__(self) -> str:
        return f"TransientError(times={self.times})"


class ErrorFault(Fault):
    """Fail with an ordinary (catchable) exception the first ``times``
    firings.

    Unlike :class:`SimulatedCrash` the process survives; this drives
    code paths that *handle* failure — the WAL's compensating abort
    record, transaction rollback — rather than code paths that die.
    """

    def __init__(self, times: int = 1,
                 make: Callable[[], Exception] | None = None) -> None:
        self.times = times
        self.remaining = times
        self._lock = threading.Lock()
        self._make = make or (lambda: RuntimeError("injected failure"))

    def trigger(self, point: str, **context) -> None:
        with self._lock:
            if self.remaining <= 0:
                return
            self.remaining -= 1
        raise self._make()

    def __repr__(self) -> str:
        return f"ErrorFault(times={self.times})"


class LatencyFault(Fault):
    """Stall the point instead of failing it: sleep ``delay`` seconds
    plus a uniformly drawn jitter in ``[0, jitter]``.

    Stretches critical sections so that lock contention, deadline
    expiry and queue build-up actually happen under test. The jitter
    stream comes from a dedicated seeded :class:`random.Random` so a
    soak run's *schedule pressure* is reproducible even though thread
    interleaving is not. ``times=None`` stalls every firing;
    an integer bounds how many firings stall.
    """

    def __init__(self, delay: float, jitter: float = 0.0, *,
                 times: int | None = None, seed: int = 0) -> None:
        if delay < 0 or jitter < 0:
            raise ValueError("delay and jitter must be >= 0")
        self.delay = delay
        self.jitter = jitter
        self.times = times
        self.remaining = times
        self._lock = threading.Lock()
        self._rng = random.Random(seed)

    def trigger(self, point: str, **context) -> None:
        with self._lock:
            if self.remaining is not None:
                if self.remaining <= 0:
                    return
                self.remaining -= 1
            pause = self.delay
            if self.jitter:
                pause += self._rng.uniform(0.0, self.jitter)
        # Sleep outside the lock: concurrent victims stall in parallel,
        # the way real device latency hits them.
        if pause > 0:
            time.sleep(pause)

    def __repr__(self) -> str:
        extra = f", times={self.times}" if self.times is not None else ""
        return f"LatencyFault({self.delay}, jitter={self.jitter}{extra})"


class ClockSkewFault(Fault):
    """Skew a node's monotonic clock instead of failing anything.

    Fire sites (the lease layer's ``repl.lease.clock``) pass ``node``
    and a one-element ``skew`` list; the fault adds that node's
    configured drift to it and the clock read comes back shifted. Per
    the lease safety argument, drifts up to the configured lease
    ``margin`` must be harmless — the chaos soak runs its failovers
    with the leader and one elector skewed in opposite directions.
    """

    def __init__(self, offsets: dict[str, float] | None = None, *,
                 default: float = 0.0) -> None:
        self.offsets = dict(offsets or {})
        self.default = default

    def trigger(self, point: str, **context) -> None:
        sink = context.get("skew")
        if sink is None:
            return
        sink[0] += self.offsets.get(context.get("node"), self.default)

    def __repr__(self) -> str:
        return f"ClockSkewFault({self.offsets}, default={self.default})"


class HeartbeatDropFault(Fault):
    """Drop lease heartbeats: fail the exchange with ``ConnectionError``
    with probability ``rate``, optionally only for the named replicas
    and at most ``times`` drops in total.

    The draw stream comes from a seeded :class:`random.Random`, so a
    soak run's heartbeat-loss schedule is reproducible. Dropped beats
    must *not* demote a healthy primary — renewal votes also ride
    every shipping exchange — which is exactly what arming this during
    live traffic proves.
    """

    def __init__(self, rate: float = 1.0, *, times: int | None = None,
                 seed: int = 0,
                 replicas: set[str] | None = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate
        self.times = times
        self.remaining = times
        self.replicas = set(replicas) if replicas is not None else None
        self.dropped = 0
        self._lock = threading.Lock()
        self._rng = random.Random(seed)

    def trigger(self, point: str, **context) -> None:
        replica = context.get("replica")
        with self._lock:
            if self.replicas is not None \
                    and replica not in self.replicas:
                return
            if self.remaining is not None and self.remaining <= 0:
                return
            if self._rng.random() >= self.rate:
                return
            if self.remaining is not None:
                self.remaining -= 1
            self.dropped += 1
        raise ConnectionError(
            f"heartbeat to {replica or 'replica'} dropped at {point}"
        )

    def __repr__(self) -> str:
        extra = f", times={self.times}" if self.times is not None else ""
        return f"HeartbeatDropFault({self.rate}{extra})"


@dataclass
class _Point:
    name: str
    description: str
    supports_torn_write: bool = False
    # An update in flight when this point fires is expected durable
    # (recovery must replay it) — see the crash-matrix harness.
    durable: bool = False
    hits: int = 0
    armed: Fault | None = None


@dataclass(frozen=True)
class FaultPointInfo:
    """Public view of one registered fault point."""

    name: str
    description: str
    supports_torn_write: bool
    durable: bool
    hits: int


class FaultRegistry:
    """The catalogue of fault points and whatever is armed at them.

    Thread-safe: arming, disarming and firing may happen concurrently
    (the chaos soak harness flips faults from a controller thread while
    worker threads are mid-write). A single re-entrant lock guards the
    catalogue and hit counters; armed faults *trigger outside the
    lock* so a stalling fault (:class:`LatencyFault`) never serialises
    unrelated fire sites or deadlocks against a fault that itself
    touches the registry.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._points: dict[str, _Point] = {}

    # -- catalogue ----------------------------------------------------------

    def register(self, name: str, description: str, *,
                 supports_torn_write: bool = False,
                 durable: bool = False) -> None:
        """Declare a fault point (idempotent; modules register at
        import time)."""
        with self._lock:
            if name not in self._points:
                self._points[name] = _Point(
                    name, description,
                    supports_torn_write=supports_torn_write,
                    durable=durable,
                )

    def points(self) -> tuple[FaultPointInfo, ...]:
        """The registered catalogue, in registration order."""
        with self._lock:
            return tuple(
                FaultPointInfo(p.name, p.description,
                               p.supports_torn_write, p.durable, p.hits)
                for p in self._points.values()
            )

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._points

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(tuple(self._points))

    def _point(self, name: str) -> _Point:
        try:
            return self._points[name]
        except KeyError:
            raise KeyError(
                f"unknown fault point {name!r}; registered: "
                f"{sorted(self._points)}"
            ) from None

    # -- arming -------------------------------------------------------------

    def arm(self, name: str, fault: Fault) -> None:
        """Arm ``fault`` at the named point (replacing any prior)."""
        with self._lock:
            self._point(name).armed = fault

    def disarm(self, name: str) -> None:
        with self._lock:
            self._point(name).armed = None

    def disarm_all(self) -> None:
        with self._lock:
            for point in self._points.values():
                point.armed = None

    def injected(self, name: str, fault: Fault) -> "_Injection":
        """Context manager: arm on entry, disarm on exit."""
        return _Injection(self, name, fault)

    # -- firing -------------------------------------------------------------

    def fire(self, name: str, **context) -> None:
        """Hit a fault point. No-op unless something is armed there.

        Fire sites for torn-write-capable points pass ``handle`` and
        ``data``; the armed fault decides what to do with them.
        """
        with self._lock:
            point = self._points.get(name)
            if point is None:
                raise KeyError(
                    f"fire at unregistered fault point {name!r}")
            point.hits += 1
            armed = point.armed
        if armed is not None:
            armed.trigger(name, **context)

    def hits(self, name: str) -> int:
        """How many times the named point has fired."""
        with self._lock:
            return self._point(name).hits

    def reset_hits(self) -> None:
        with self._lock:
            for point in self._points.values():
                point.hits = 0


class _Injection:
    def __init__(self, registry: FaultRegistry, name: str,
                 fault: Fault) -> None:
        self._registry = registry
        self._name = name
        self._fault = fault

    def __enter__(self) -> Fault:
        self._registry.arm(self._name, self._fault)
        return self._fault

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._registry.disarm(self._name)
        return False


FAULTS = FaultRegistry()
"""The process-wide fault registry (nothing armed by default)."""
