"""Replication chaos soak: failover and partitions under live load.

The single-node soak (:mod:`repro.faults.soak`) proves one service
degrades gracefully; this harness points the same mixed workload at a
*replicated* service and attacks the replication layer instead. It
runs a matrix of cells — commit mode x scenario — and inside each
cell N worker threads drive reads, writes, atomic sequences,
read-modify-writes, bounded-staleness replica reads and checkpoints
through a :class:`DatabaseService
<repro.service.service.DatabaseService>` wired to a
:class:`ReplicationGroup <repro.replication.group.ReplicationGroup>`
while a controller thread injects the scenario's faults underneath:

* ``partition`` — replica links flap (one at a time, periodically all
  at once) via the in-process transport's partition switch; commits
  must keep meeting their ack quota through the survivors and the
  healed replicas must converge.
* ``replica_crash`` — replicas die mid-apply (the
  ``repl.replica.apply`` fault point raises :class:`SimulatedCrash
  <repro.faults.registry.SimulatedCrash>` between the local
  write-ahead append and the state change) and restart from their own
  disk, catching up by delta or snapshot as the log floor dictates.
* ``primary_kill`` — after the workers finish, the primary is
  isolated from every replica and forced to commit an op nobody acks
  (:class:`ReplicationTimeout <repro.errors.ReplicationTimeout>`),
  then deposed: :meth:`promote
  <repro.replication.group.ReplicationGroup.promote>` elects the
  longest applied prefix, the deposed primary's next write must raise
  :class:`StalePrimary <repro.errors.StalePrimary>`, a new service is
  built on the chosen replica's working directory, and the old
  primary rejoins as a follower — truncating its unacked tail.

Every cell ends with the same verdicts:

1. **No acked loss** — after a failover, every sequence number the
   old primary acknowledged to a caller sits at or below the fence
   (it survived into the new history); replica state equals the
   primary's exactly (:func:`states_diff
   <repro.faults.harness.states_diff>`).
2. **The stream is the history** — replaying the shipped-record
   journal (every record that entered the replication stream, minus
   compensated aborts) over an identically seeded fresh instance
   reproduces the live primary, across the failover boundary.
3. **Fencing fired** — the deposed primary's write raised
   :exc:`StalePrimary`, and the rejoin dropped at least the
   deliberately unacknowledged tail record.
4. **Telemetry is live** — a mid-soak ``/metrics`` scrape over real
   HTTP parses as Prometheus text and contains the per-replica
   ``replication.lag.seq.*`` gauges; ``/health`` carries the
   replication block. Snapshots are kept as CI artifacts.
5. **The trace is the pipeline** — each cell's own event stream
   (``<cell>/events.jsonl``) must show every acked sequence number
   covered by the commit mode's ack quota of ``replica.apply`` spans
   (or a subsuming snapshot install); the folded
   :func:`replication_timeline
   <repro.obs.events.replication_timeline>` must pass its
   fence-ordering audit and, after a failover, contain the fence,
   promote and rejoin entries. The last acked commit's cross-node
   propagation DAG (``pipeline-<cell>.dot``) and the timeline
   (``timeline-<cell>.jsonl``) are kept as CI artifacts.

With ``--auto-failover`` every cell additionally runs lease-based
leadership (:mod:`repro.replication.lease`): the primary holds a
quorum-renewed lease, each replica runs a failure detector, and a
:class:`FailoverCoordinator
<repro.replication.lease.FailoverCoordinator>` elects on expiry —
while :class:`ClockSkewFault <repro.faults.registry.ClockSkewFault>`
drifts the participants' clocks apart by the full configured margin
and :class:`HeartbeatDropFault
<repro.faults.registry.HeartbeatDropFault>` drops renewal beats
underneath. The ``primary_kill`` *and* ``partition`` cells then end
with :func:`_auto_failover_epilogue` instead of the manual one: the
primary is isolated mid-commit and the harness only *observes* —
self-demotion must land before the WAL (``StalePrimary``), exactly
one election must run, no acked write may cross the fence, and the
``promote()`` call count must equal the election count (nothing
promoted by hand).

Run it: ``python -m repro.faults --soak --replicas 2``
(add ``--auto-failover`` for the lease/election matrix).
"""

from __future__ import annotations

import json
import random
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import (
    PersistenceError,
    ReplicationError,
    ReplicationTimeout,
    ReproError,
    StalenessUnserved,
    StalePrimary,
)
from repro.faults.harness import states_diff
from repro.faults.registry import (
    FAULTS,
    ClockSkewFault,
    CrashFault,
    HeartbeatDropFault,
    LatencyFault,
)
from repro.faults.soak import (
    _OUTCOMES,
    SoakConfig,
    _classify,
    _plan_worker_ops,
    soak_database,
)
from repro.fdb import persistence
from repro.fdb.updates import (
    Update,
    UpdateSequence,
    apply_sequence,
    apply_update,
)
from repro.fdb.values import is_null
from repro.fdb.wal import UpdateLog, _decode_entry
from repro.obs.endpoint import ExpositionError, parse_prometheus
from repro.obs.events import (
    FileSink,
    propagation_dag,
    read_jsonl,
    replication_timeline,
)
from repro.obs.hooks import OBS
from repro.replication import (
    CommitMode,
    FailoverCoordinator,
    LeaseConfig,
    Replica,
    ReplicationGroup,
)
from repro.service import CircuitBreaker, DatabaseService, RetryPolicy

__all__ = [
    "ReplicationSoakConfig",
    "ReplicationCellReport",
    "ReplicationSoakReport",
    "run_replication_soak",
]


@dataclass(frozen=True)
class ReplicationSoakConfig:
    """Knobs for one replication soak. Defaults match the CI job."""

    replicas: int = 2
    threads: int = 4
    ops_per_thread: int = 24
    seed: int = 0
    rows_per_function: int = 8
    value_pool: int = 12
    modes: tuple = ("sync(1)", "quorum")
    scenarios: tuple = ("partition", "replica_crash", "primary_kill")
    ack_timeout: float = 2.0
    phase_seconds: float = 0.08
    lock_timeout: float = 0.25
    tight_deadline: float = 0.003
    loose_deadline: float = 2.0
    wall_clock_limit: float = 120.0
    # Fraction of planned reads redirected to replicas, and how many
    # of those demand zero staleness (exercising StalenessUnserved).
    replica_read_rate: float = 0.5
    tight_read_rate: float = 0.2
    workdir: str | None = None
    jsonl: str | None = None  # default: <workdir>/replication-events.jsonl
    serve_endpoint: bool = True
    scrape_dir: str | None = None
    # Lease-based leadership: when set, every cell runs with a
    # quorum-renewed lease and a live FailoverCoordinator, clock skew
    # (±margin) and heartbeat loss are injected underneath, and the
    # primary_kill / partition epilogues expect the *coordinator* to
    # elect the new primary — the harness never calls promote().
    auto_failover: bool = False
    lease_duration: float = 0.5
    lease_margin: float = 0.1
    lease_renew_interval: float = 0.08
    heartbeat_drop_rate: float = 0.15


@dataclass
class ReplicationCellReport:
    """One mode x scenario cell: counts, failover facts, verdicts."""

    mode: str
    scenario: str
    duration: float = 0.0
    counts: dict = field(default_factory=dict)
    committed: int = 0
    acked: int = 0
    fence_seq: int | None = None
    promotion: dict | None = None
    elections: int = 0
    rejoin: dict | None = None
    failures: list = field(default_factory=list)
    scrape_paths: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def lines(self) -> list[str]:
        head = f"[{self.mode} / {self.scenario}]"
        out = [
            f"{head} {self.duration:.2f}s, committed {self.committed}, "
            f"acked {self.acked}"
            + (f", fence {self.fence_seq}" if self.fence_seq is not None
               else ""),
            f"{head} ops: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.counts.items()) if v
            ),
        ]
        if self.promotion:
            out.append(
                f"{head} promoted {self.promotion['chosen']} at seq "
                f"{self.promotion['applied_seq']} (term "
                f"{self.promotion['old_term']} -> "
                f"{self.promotion['new_term']})"
                + (f" via automatic election" if self.elections else "")
            )
        if self.rejoin:
            out.append(
                f"{head} rejoin dropped "
                f"{self.rejoin['records_dropped']} records at fence "
                f"{self.rejoin['fence_seq']}"
                + (" (rebootstrapped)" if self.rejoin["rebootstrapped"]
                   else "")
            )
        out.extend(f"{head} note: {note}" for note in self.notes)
        out.extend(f"{head} FAILED: {failure}"
                   for failure in self.failures)
        out.append(f"{head} " + ("ok" if self.ok else "FAILED"))
        return out


@dataclass
class ReplicationSoakReport:
    """The whole matrix plus the cross-cell event-log checks."""

    config: ReplicationSoakConfig
    duration: float = 0.0
    cells: list = field(default_factory=list)
    jsonl_path: str = ""
    promotions: int = 0
    elections: int = 0
    fenced_writes: int = 0
    rejoins: int = 0
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and all(cell.ok for cell in self.cells)

    def lines(self) -> list[str]:
        out = [
            f"replication soak: {len(self.cells)} cells "
            f"({' | '.join(self.config.modes)}) x "
            f"({' | '.join(self.config.scenarios)}), "
            f"{self.config.replicas} replicas, seed "
            f"{self.config.seed}, {self.duration:.2f}s",
        ]
        for cell in self.cells:
            out.extend(cell.lines())
        out.append(
            f"events: {self.promotions} promotions "
            f"({self.elections} by election), "
            f"{self.fenced_writes} fenced writes, {self.rejoins} "
            f"rejoins in {self.jsonl_path}"
        )
        out.extend(f"FAILED: {failure}" for failure in self.failures)
        out.append("replication soak: " + ("ok" if self.ok else "FAILED"))
        return out


# -- workload -----------------------------------------------------------------


_REPL_OUTCOMES = _OUTCOMES + ("repl_timeout", "fenced", "stale_read")


def _classify_repl(exc: BaseException) -> str:
    if isinstance(exc, ReplicationTimeout):
        return "repl_timeout"
    if isinstance(exc, StalePrimary):
        return "fenced"
    if isinstance(exc, StalenessUnserved):
        return "stale_read"
    return _classify(exc)


def _cell_plans(db, config: ReplicationSoakConfig) -> list[list[tuple]]:
    """The single-node soak's op plans with a slice of the reads
    redirected to replicas under a staleness bound."""
    shim = SoakConfig(
        threads=config.threads,
        ops_per_thread=config.ops_per_thread,
        seed=config.seed,
        rows_per_function=config.rows_per_function,
        value_pool=config.value_pool,
        tight_deadline=config.tight_deadline,
        loose_deadline=config.loose_deadline,
    )
    plans: list[list[tuple]] = []
    for worker in range(config.threads):
        rng = random.Random(config.seed * 6151 + worker)
        ops: list[tuple] = []
        for kind, payload, deadline in _plan_worker_ops(db, worker, shim):
            if kind == "read" and rng.random() < config.replica_read_rate:
                bound = 0 if rng.random() < config.tight_read_rate \
                    else None
                ops.append(("replica_read", (payload, bound), deadline))
            else:
                ops.append((kind, payload, deadline))
        plans.append(ops)
    return plans


def _run_worker(service: DatabaseService, ops: list[tuple],
                snapshot_path: Path, counts: dict,
                counts_lock: threading.Lock, errors: list) -> None:
    local = dict.fromkeys(_REPL_OUTCOMES, 0)
    for kind, payload, deadline in ops:
        try:
            if kind == "replica_read":
                name, bound = payload
                service.read_replica(
                    lambda db, n=name: db.extension(n),
                    max_lag_seq=bound,
                )
                local["applied"] += 1
            elif kind == "read":
                name = payload
                service.read((name,),
                             lambda db, n=name: db.extension(n),
                             deadline=deadline)
                local["applied"] += 1
            elif kind == "rmw":
                name = payload

                def build(db, n=name):
                    pairs = sorted(
                        p for p in db.table(n).pairs()
                        if not (is_null(p[0]) or is_null(p[1]))
                    )
                    if not pairs:
                        return None
                    x, y = pairs[0]
                    return Update.rep(n, (x, y), (x, f"{y}~r"))

                applied = service.read_modify_write((name,), build,
                                                    deadline=deadline)
                local["applied" if applied is not None else "noop"] += 1
            elif kind == "checkpoint":
                service.checkpoint(snapshot_path)
                local["applied"] += 1
            else:  # "write" | "seq"
                service.execute(payload, deadline=deadline)
                local["applied"] += 1
        except ReproError as exc:
            local[_classify_repl(exc)] += 1
        except (RuntimeError, OSError) as exc:
            local[_classify_repl(exc)] += 1
        except BaseException as exc:  # pragma: no cover - harness bug
            errors.append(exc)
            raise
    with counts_lock:
        for key, value in local.items():
            counts[key] = counts.get(key, 0) + value


# -- fault controllers --------------------------------------------------------


def _links_by_name(group: ReplicationGroup) -> dict:
    shipper = group.shipper
    if shipper is None:
        return {}
    return {link.name: link for link in shipper.links()}


def _set_partition(link, value: bool) -> None:
    if hasattr(link.transport, "partitioned"):
        link.transport.partitioned = value


def _partition_controller(group: ReplicationGroup, names: list[str],
                          config: ReplicationSoakConfig,
                          stop: threading.Event) -> None:
    """Flap one link per cycle; every fourth cycle cut them all at
    once (the ack quota must wait it out, not lose anything)."""
    index = 0
    while not stop.is_set():
        links = _links_by_name(group)
        if index % 4 == 3:
            targets = [links[n] for n in names if n in links]
            label = "*"
        else:
            name = names[index % len(names)]
            targets = [links[name]] if name in links else []
            label = name
        for link in targets:
            _set_partition(link, True)
        if targets and OBS.enabled:
            OBS.action("soak.partition", replica=label)
        stop.wait(config.phase_seconds)
        for link in targets:
            _set_partition(link, False)
        if targets and OBS.enabled:
            OBS.action("soak.heal", replica=label)
        stop.wait(config.phase_seconds)
        index += 1


def _crash_controller(group: ReplicationGroup, names: list[str],
                      config: ReplicationSoakConfig,
                      stop: threading.Event,
                      rng: random.Random) -> None:
    """Kill replicas mid-stream — half the cycles through the
    ``repl.replica.apply`` crash point (dying *between* the local
    write-ahead append and the apply), half by dropping the process
    outright — then restart them from their own disk."""
    index = 0
    while not stop.is_set():
        if rng.random() < 0.5:
            FAULTS.arm("repl.replica.apply", CrashFault())
            stop.wait(config.phase_seconds / 2)
            FAULTS.disarm("repl.replica.apply")
        else:
            name = names[index % len(names)]
            try:
                group.replica(name).crash()
                if OBS.enabled:
                    OBS.action("soak.replica_crash", replica=name)
            except ReplicationError:
                pass
        stop.wait(config.phase_seconds)
        _restart_crashed(group, names)
        stop.wait(config.phase_seconds)
        index += 1
    FAULTS.disarm("repl.replica.apply")


def _restart_crashed(group: ReplicationGroup, names: list[str]) -> None:
    for name in names:
        try:
            replica = group.replica(name)
        except ReplicationError:
            continue
        if replica.crashed:
            try:
                replica.restart()
            except (ReproError, OSError):
                pass  # settle-time sync will surface it as a failure


def _heal(group: ReplicationGroup, names: list[str]) -> None:
    for link in _links_by_name(group).values():
        _set_partition(link, False)
    _restart_crashed(group, names)


# -- verification -------------------------------------------------------------


def _verify_replay(cell: ReplicationCellReport,
                   config: ReplicationSoakConfig, committed,
                   primary_db) -> None:
    expected = soak_database(config.seed, config.rows_per_function,
                             config.value_pool)
    for op in committed:
        if isinstance(op, UpdateSequence):
            apply_sequence(expected, op)
        else:
            apply_update(expected, op)
    diff = states_diff(expected, primary_db)
    if diff:
        cell.failures.append(f"committed replay diverged: {diff}")


def _verify_journal(cell: ReplicationCellReport,
                    config: ReplicationSoakConfig,
                    group: ReplicationGroup, primary_db) -> None:
    """The shipped-stream oracle: replaying every journalled record
    (minus compensated aborts) over a fresh seeded instance must equal
    the live primary — across a failover, this is the proof that the
    surviving history and only the surviving history was applied."""
    shipper = group.shipper
    if shipper is None:
        cell.failures.append("no shipper to read the journal from")
        return
    journal = shipper.journal()
    aborted: set[int] = set()
    entries: list[tuple[int, dict]] = []
    for _, line in journal:
        payload = json.loads(line)
        if "abort_of" in payload:
            aborted.add(payload["abort_of"])
        elif "entry" in payload:
            entries.append((payload["seq"], payload["entry"]))
    expected = soak_database(config.seed, config.rows_per_function,
                             config.value_pool)
    for seq, raw in entries:
        if seq in aborted:
            continue
        entry = _decode_entry(raw)
        if isinstance(entry, UpdateSequence):
            apply_sequence(expected, entry)
        else:
            apply_update(expected, entry)
    diff = states_diff(expected, primary_db)
    if diff:
        cell.failures.append(f"journal replay diverged: {diff}")


def _verify_replicas(cell: ReplicationCellReport,
                     group: ReplicationGroup, primary_db) -> None:
    checked = 0
    for name in group.replica_names():
        try:
            replica = group.replica(name)
        except ReplicationError:
            continue  # a remote link: not inspectable from here
        if replica.db is None:
            cell.failures.append(
                f"replica {name} has no state after settling"
            )
            continue
        diff = states_diff(primary_db, replica.db)
        if diff:
            cell.failures.append(f"replica {name} diverged: {diff}")
        checked += 1
    if checked == 0:
        cell.failures.append("no replica state was checked")


def _scrape(service: DatabaseService, group: ReplicationGroup,
            dest: Path, label: str,
            cell: ReplicationCellReport) -> None:
    """Scrape ``/metrics`` + ``/health`` over real HTTP; the metrics
    body must parse and carry the per-replica lag gauges, the health
    body the replication block. Snapshots are kept as artifacts."""
    import urllib.error
    import urllib.request

    endpoint = service.endpoint
    if endpoint is None or not endpoint.running:
        cell.failures.append(f"scrape {label}: endpoint not running")
        return
    try:
        group.lag()  # refresh the gauges the scrape must contain
    except ReproError:
        pass
    try:
        url = endpoint.url
        with urllib.request.urlopen(url + "/metrics", timeout=5) as resp:
            body = resp.read().decode("utf-8")
        families = parse_prometheus(body)
        if not any(name.startswith("replication_lag_seq_")
                   for name in families):
            cell.failures.append(
                f"scrape {label}: no replication.lag.seq.* gauges in "
                f"/metrics"
            )
        if group.lease is not None and not any(
                name.startswith("replication_lease_")
                for name in families):
            cell.failures.append(
                f"scrape {label}: lease enabled but no "
                f"replication_lease_* gauges in /metrics"
            )
        metrics_path = dest / f"metrics-{label}.prom"
        metrics_path.write_text(body, encoding="utf-8")
        cell.scrape_paths.append(str(metrics_path))
        try:
            with urllib.request.urlopen(url + "/health",
                                        timeout=5) as resp:
                health_body = resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            # 503 == unservable-but-well-formed; still validated below.
            health_body = exc.read().decode("utf-8")
        verdict = json.loads(health_body)
        replication = verdict.get("replication")
        if not isinstance(replication, dict) \
                or "term" not in replication:
            cell.failures.append(
                f"scrape {label}: /health lacks the replication block"
            )
        health_path = dest / f"health-{label}.json"
        health_path.write_text(health_body, encoding="utf-8")
        cell.scrape_paths.append(str(health_path))
    except (OSError, ValueError, ExpositionError) as exc:
        cell.failures.append(f"scrape {label}: {exc}")


def _attr_int(record, key: str) -> int | None:
    try:
        return int(str(record.attrs.get(key)))
    except (TypeError, ValueError):
        return None


def _verify_pipeline_coverage(cell: ReplicationCellReport, mode: str,
                              replicas: int, records,
                              acked: list) -> None:
    """The span-stream oracle for the commit pipeline: every sequence
    number the primary acked must be covered by at least the commit
    mode's ack quota of ``replica.apply`` spans (their
    ``[from_seq, applied_to]`` interval contains it) or by a snapshot
    install whose ``wal_applied`` floor subsumes it."""
    needed = CommitMode.parse(mode).required_acks(replicas)
    if needed == 0 or not acked:
        return
    applied: dict[str, list[tuple[int, int]]] = {}
    floors: dict[str, int] = {}
    for record in records:
        if record.kind != "span.end":
            continue
        if record.name == "replica.apply":
            name = str(record.attrs.get("replica"))
            low = _attr_int(record, "from_seq")
            high = _attr_int(record, "applied_to")
            if low is not None and high is not None and high >= low:
                applied.setdefault(name, []).append((low, high))
        elif record.name == "replica.snapshot_install":
            name = str(record.attrs.get("replica"))
            wal = _attr_int(record, "wal_applied")
            if wal is not None:
                floors[name] = max(floors.get(name, 0), wal)
    uncovered = []
    for seq, _ in acked:
        covering = {
            name for name, spans in applied.items()
            if any(low <= seq <= high for low, high in spans)
        }
        covering |= {name for name, floor in floors.items()
                     if floor >= seq}
        if len(covering) < needed:
            uncovered.append((seq, sorted(covering)))
    if uncovered:
        cell.failures.append(
            f"acked commits lacking {needed} replica applies in the "
            f"span stream: {uncovered[:5]}"
            + (f" (+{len(uncovered) - 5} more)"
               if len(uncovered) > 5 else "")
        )


def _verify_timeline(cell: ReplicationCellReport, failover: bool,
                     records, dest: Path, label: str) -> None:
    """Fold the cell's event stream into the audit timeline, keep it
    as a JSONL artifact, and audit the fence ordering: every acked
    old-term commit at or below the fence must precede the fence
    record, every new-term commit must follow it."""
    timeline = replication_timeline(records)
    path = dest / f"timeline-{label}.jsonl"
    path.write_text(timeline.to_jsonl() + "\n", encoding="utf-8")
    cell.scrape_paths.append(str(path))
    problems = timeline.fence_violations()
    if problems:
        cell.failures.append(
            f"timeline fence ordering violated: {problems[:3]}"
        )
    if not failover:
        return
    if cell.elections:
        # An automatic failover must leave the lease lifecycle in the
        # audit trail: the expiry that triggered it and the election
        # that resolved it.
        if not timeline.of_kind("lease_expire"):
            cell.failures.append(
                "no lease_expire entry in the auto-failover timeline"
            )
        if not timeline.of_kind("elect"):
            cell.failures.append(
                "no elect entry in the auto-failover timeline"
            )
    fences = timeline.of_kind("fence")
    if not fences:
        cell.failures.append("no fence entry in the failover timeline")
        return
    fence = fences[-1]
    if cell.fence_seq is not None and fence.fence_seq != cell.fence_seq:
        cell.failures.append(
            f"timeline fence at seq {fence.fence_seq}, promotion "
            f"reported {cell.fence_seq}"
        )
    if not timeline.of_kind("promote"):
        cell.failures.append("no promote entry in the failover timeline")
    if not timeline.of_kind("rejoin"):
        cell.failures.append("no rejoin entry in the failover timeline")


def _write_pipeline_dot(cell: ReplicationCellReport, records,
                        acked: list, dest: Path, label: str) -> None:
    """Fold the last acked commit's cross-node trace — the
    ``service.request`` root down through ship, receive, WAL append,
    apply and ack spans on every replica — into a DOT artifact."""
    if not acked:
        return
    last_seq = acked[-1][0]
    spans = {record.span_id: record for record in records
             if record.kind == "span.end"
             and record.span_id is not None}
    def _root_of(record):
        while record.parent_span is not None \
                and record.parent_span in spans:
            record = spans[record.parent_span]
        return record

    target = None
    for record in spans.values():
        if record.name != "replication.ship":
            continue
        low = _attr_int(record, "from_seq")
        high = _attr_int(record, "through_seq")
        if low is not None and high is not None \
                and low <= last_seq <= high:
            # Prefer the commit-path ship (rooted in the request that
            # carried the commit) over later catch-up re-ships.
            if target is None \
                    or _root_of(record).name == "service.request":
                target = record
    if target is None:
        cell.notes.append(
            f"no ship span covering acked seq {last_seq}; pipeline "
            f"DOT skipped"
        )
        return
    root = _root_of(target)
    children: dict[int, list[int]] = {}
    for record in spans.values():
        if record.parent_span is not None:
            children.setdefault(record.parent_span,
                                []).append(record.span_id)
    keep: set[int] = set()
    stack = [root.span_id]
    while stack:
        span_id = stack.pop()
        if span_id in keep:
            continue
        keep.add(span_id)
        stack.extend(children.get(span_id, ()))
    subset = [record for record in records if record.span_id in keep]
    dag = propagation_dag(subset)
    path = dest / f"pipeline-{label}.dot"
    path.write_text(dag.to_dot(name="pipeline") + "\n",
                    encoding="utf-8")
    cell.scrape_paths.append(str(path))


# -- the failover epilogue ----------------------------------------------------


def _failover_epilogue(cell: ReplicationCellReport,
                       config: ReplicationSoakConfig,
                       group: ReplicationGroup,
                       service: DatabaseService,
                       primary_dir: Path) -> DatabaseService | None:
    """Kill the primary mid-commit and fail over.

    Isolate the primary from every replica, force one commit through
    (durable locally, acked by nobody — the deterministic unacked
    tail), promote the longest applied prefix, prove the deposed
    primary is fenced, stand a new service up on the chosen replica's
    working directory, write through it, and rejoin the old primary
    as a follower. Returns the new primary service (or ``None`` when
    the failover could not even start)."""
    links = _links_by_name(group)
    for link in links.values():
        _set_partition(link, True)
    if OBS.enabled:
        OBS.action("soak.partition", replica="*", phase="primary_kill")
    old_timeout = group.ack_timeout
    group.ack_timeout = 0.3
    timed_out = False
    try:
        service.insert("c", "C0_tail", "C1_tail", deadline=5.0)
    except ReplicationTimeout:
        timed_out = True
    except ReproError as exc:
        cell.failures.append(
            f"isolated-primary write failed unexpectedly: {exc!r}"
        )
    finally:
        group.ack_timeout = old_timeout
    if not timed_out:
        cell.failures.append(
            "isolated-primary commit did not raise ReplicationTimeout"
        )
    for link in links.values():
        _set_partition(link, False)

    acked = service.acked_ops()
    old_term = group.term
    try:
        promotion = group.promote()
    except ReplicationError as exc:
        cell.failures.append(f"promotion failed: {exc!r}")
        return None
    cell.promotion = promotion.as_dict()
    fence = group.fence_seq(old_term)
    cell.fence_seq = fence
    lost = [seq for seq, _ in acked if seq > fence]
    if lost:
        cell.failures.append(
            f"acked commits past the fence (lost by failover): {lost}"
        )

    # The deposed primary must be turned away at the door.
    try:
        service.insert("c", "C0_deposed", "C1_deposed", deadline=5.0)
        cell.failures.append(
            "deposed primary wrote after promotion (no fence)"
        )
    except StalePrimary:
        pass
    except ReproError as exc:
        cell.failures.append(
            f"deposed write raised {exc!r}, wanted StalePrimary"
        )
    service.close(timeout=10.0)

    chosen = group.replica(promotion.chosen)
    group.remove_replica(promotion.chosen)
    new_service = DatabaseService(
        chosen.db,
        log=UpdateLog(chosen.wal_path),
        lock_timeout=config.lock_timeout,
        replication=group,
        node=chosen.name,
        seed=config.seed + 1,
    )
    for index in range(5):
        try:
            new_service.insert("c", "C0_post", f"C1_post{index}",
                               deadline=5.0)
        except ReproError as exc:
            cell.failures.append(f"post-failover write failed: {exc!r}")
            break

    old_primary = Replica("old-primary", primary_dir)
    try:
        rejoin = group.rejoin(old_primary, old_term)
        cell.rejoin = rejoin.as_dict()
        if rejoin.records_dropped < 1 and not rejoin.rebootstrapped:
            cell.failures.append(
                "rejoin dropped no records despite the unacked tail"
            )
    except ReproError as exc:
        cell.failures.append(f"rejoin failed: {exc!r}")
    return new_service


def _auto_failover_epilogue(cell: ReplicationCellReport,
                            config: ReplicationSoakConfig,
                            group: ReplicationGroup,
                            service: DatabaseService,
                            primary_dir: Path,
                            coordinator) -> DatabaseService | None:
    """Kill the primary mid-commit and let the lease machinery fail
    over on its own — the harness never calls ``promote()``.

    Isolate the primary, force one commit through that nobody acks,
    then *wait*: the primary must self-demote the instant its lease
    lapses (its next write raises :exc:`StalePrimary` before touching
    its WAL), the replica-side failure detectors must expire, and the
    :class:`FailoverCoordinator
    <repro.replication.lease.FailoverCoordinator>` must elect and
    promote unprompted. A new service is stood up on the elected
    replica, written through under the new term, and the old primary
    rejoins as a follower."""
    lease = group.lease
    assert lease is not None
    links = _links_by_name(group)
    for link in links.values():
        _set_partition(link, True)
    if OBS.enabled:
        OBS.action("soak.partition", replica="*",
                   phase="auto_failover")
    old_term = group.term
    old_timeout = group.ack_timeout
    # Time the ack wait out well inside the lease validity window so
    # the mid-commit kill surfaces as ReplicationTimeout (durable
    # locally, acked by nobody) rather than the later self-demotion.
    group.ack_timeout = min(0.2, lease.config.primary_validity / 2)
    timed_out = False
    try:
        service.insert("c", "C0_tail", "C1_tail", deadline=5.0)
    except ReplicationTimeout:
        timed_out = True
    except ReproError as exc:
        cell.failures.append(
            f"isolated-primary write failed unexpectedly: {exc!r}"
        )
    finally:
        group.ack_timeout = old_timeout
    if not timed_out:
        cell.failures.append(
            "isolated-primary commit did not raise ReplicationTimeout"
        )
    acked = service.acked_ops()

    # Self-demotion: once a quorum can no longer renew the lease, the
    # primary must refuse writes *before* any election has run and
    # *before* the update reaches its WAL.
    horizon = lease.config.detector_horizon
    deadline = time.monotonic() + horizon + 5.0
    while not group.leaderless() and time.monotonic() < deadline:
        time.sleep(0.01)
    if not group.leaderless():
        cell.failures.append("isolated primary never self-demoted")
        return None
    wal_before = (service.logged.log.last_seq()
                  if service.logged is not None else None)
    try:
        service.insert("c", "C0_deposed", "C1_deposed", deadline=5.0)
        cell.failures.append(
            "deposed primary wrote after lease expiry "
            "(no self-demotion)"
        )
    except StalePrimary:
        pass
    except ReproError as exc:
        cell.failures.append(
            f"deposed write raised {exc!r}, wanted StalePrimary"
        )
    if wal_before is not None and service.logged is not None \
            and service.logged.log.last_seq() != wal_before:
        cell.failures.append(
            "deposed write reached the old primary's WAL"
        )

    # The election: the coordinator must run it unprompted.
    deadline = time.monotonic() + horizon + 5.0
    while not coordinator.elections \
            and time.monotonic() < deadline:
        time.sleep(0.01)
    if not coordinator.elections:
        cell.failures.append(
            "no automatic election inside the detection window"
        )
        return None
    promotion = coordinator.elections[-1]
    cell.promotion = promotion.as_dict()
    cell.elections = len(coordinator.elections)
    if cell.elections != 1:
        cell.failures.append(
            f"{cell.elections} elections ran, expected exactly one"
        )
    fence = group.fence_seq(old_term)
    cell.fence_seq = fence
    lost = [seq for seq, _ in acked if seq > fence]
    if lost:
        cell.failures.append(
            f"acked commits past the fence (lost by failover): {lost}"
        )

    # Post-election the old term stays fenced (StalePrimary from the
    # term check now, not just the lapsed lease) — exactly one writer.
    try:
        service.insert("c", "C0_deposed2", "C1_deposed2", deadline=5.0)
        cell.failures.append(
            "deposed primary wrote after the election (no fence)"
        )
    except StalePrimary:
        pass
    except ReproError as exc:
        cell.failures.append(
            f"post-election deposed write raised {exc!r}, wanted "
            f"StalePrimary"
        )
    service.close(timeout=10.0)

    chosen = group.replica(promotion.chosen)
    group.remove_replica(promotion.chosen)
    new_service = DatabaseService(
        chosen.db,
        log=UpdateLog(chosen.wal_path),
        lock_timeout=config.lock_timeout,
        replication=group,
        node=chosen.name,
        seed=config.seed + 1,
    )
    for index in range(5):
        try:
            new_service.insert("c", "C0_post", f"C1_post{index}",
                               deadline=5.0)
        except ReproError as exc:
            cell.failures.append(f"post-failover write failed: {exc!r}")
            break

    old_primary = Replica("old-primary", primary_dir)
    try:
        rejoin = group.rejoin(old_primary, old_term)
        cell.rejoin = rejoin.as_dict()
        if rejoin.records_dropped < 1 and not rejoin.rebootstrapped:
            cell.failures.append(
                "rejoin dropped no records despite the unacked tail"
            )
    except ReproError as exc:
        cell.failures.append(f"rejoin failed: {exc!r}")
    return new_service


# -- one cell -----------------------------------------------------------------


def _slug(mode: str, scenario: str) -> str:
    return f"{mode.replace('(', '').replace(')', '')}-{scenario}"


def _run_cell(mode: str, scenario: str,
              config: ReplicationSoakConfig, cell_dir: Path,
              scrape_dir: Path, serve: bool) -> ReplicationCellReport:
    cell = ReplicationCellReport(mode=mode, scenario=scenario)
    started = time.monotonic()
    primary_dir = cell_dir / "primary"
    primary_dir.mkdir(parents=True, exist_ok=True)
    # The primary keeps the same file layout a Replica expects
    # (snapshot.json + wal.log), so after a failover its directory
    # rejoins the group as a follower unchanged.
    snapshot_path = primary_dir / "snapshot.json"
    wal_path = primary_dir / "wal.log"

    db = soak_database(config.seed, config.rows_per_function,
                       config.value_pool)
    persistence.save(db, snapshot_path, wal_applied=0)
    group = ReplicationGroup(
        mode, ack_timeout=config.ack_timeout, retry_interval=0.01,
        journal=True,
    )
    lease_mgr = None
    coordinator = None
    if config.auto_failover:
        # Enabled before the service attaches so the very first term
        # is lease-granted; the coordinator starts once the replicas
        # exist below.
        lease_mgr = group.enable_lease(LeaseConfig(
            duration=config.lease_duration,
            margin=config.lease_margin,
            renew_interval=config.lease_renew_interval,
            check_interval=0.02,
        ))
    service = DatabaseService(
        db,
        log=wal_path,
        lock_timeout=config.lock_timeout,
        retry=RetryPolicy(
            max_attempts=4, base_delay=0.004, max_delay=0.05,
            jitter=0.004,
            retryable=RetryPolicy().retryable + (PersistenceError,),
        ),
        breaker=CircuitBreaker(failure_threshold=4, reset_timeout=0.1),
        replication=group,
        node="primary",
        seed=config.seed,
    )
    names = [f"r{i}" for i in range(config.replicas)]
    for name in names:
        group.add_replica(name, Replica(name, cell_dir / name))
    if config.auto_failover:
        assert lease_mgr is not None
        coordinator = FailoverCoordinator(group, lease_mgr.config)
        for name in names:
            coordinator.watch(group.replica(name))
        lease_mgr.start()
        coordinator.start()
        # Clock skew out to the configured drift margin — the primary
        # runs fast, one replica slow — plus lossy heartbeats: lease
        # safety must not depend on comparable clocks or a reliable
        # beat stream.
        FAULTS.arm("repl.lease.clock", ClockSkewFault(offsets={
            "primary": config.lease_margin,
            names[0]: -config.lease_margin,
        }))
        FAULTS.arm("repl.lease.heartbeat", HeartbeatDropFault(
            rate=config.heartbeat_drop_rate, seed=config.seed,
        ))

    # A per-cell record stream: the process-wide soak JSONL interleaves
    # every cell (and the primary's WAL seq restarts between them), so
    # the span-coverage and timeline oracles fold this file instead.
    cell_sink = FileSink(cell_dir / "events.jsonl")
    OBS.events.add_sink(cell_sink)
    acked_pairs: list = []
    verify_events = False

    FAULTS.arm("repl.transport.deliver",
               LatencyFault(0.0005, jitter=0.002, seed=config.seed))
    plans = _cell_plans(db, config)
    counts: dict[str, int] = {}
    counts_lock = threading.Lock()
    harness_errors: list = []
    stop = threading.Event()
    controller = None
    if scenario == "partition":
        controller = threading.Thread(
            target=_partition_controller,
            args=(group, names, config, stop),
            name=f"repl-ctl-{_slug(mode, scenario)}", daemon=True,
        )
    elif scenario == "replica_crash":
        controller = threading.Thread(
            target=_crash_controller,
            args=(group, names, config, stop,
                  random.Random(config.seed * 48611 + 7)),
            name=f"repl-ctl-{_slug(mode, scenario)}", daemon=True,
        )
    workers = [
        threading.Thread(
            target=_run_worker,
            args=(service, plans[i], snapshot_path, counts,
                  counts_lock, harness_errors),
            name=f"repl-worker-{i}", daemon=True,
        )
        for i in range(config.threads)
    ]
    new_service: DatabaseService | None = None
    try:
        if controller is not None:
            controller.start()
        for worker in workers:
            worker.start()
        if serve:
            service.serve_metrics()
            # Mid-soak scrape with the workers (and the scenario's
            # faults) live: the lag gauges must be present while the
            # stream is actually lagging, not just at rest.
            time.sleep(min(0.2, config.wall_clock_limit / 10))
            _scrape(service, group, scrape_dir,
                    f"{_slug(mode, scenario)}-mid", cell)
        budget = started + config.wall_clock_limit
        for worker in workers:
            worker.join(max(budget - time.monotonic(), 0.1))
        hung = sum(1 for worker in workers if worker.is_alive())
        if hung:
            cell.failures.append(f"{hung} workers hung")
        stop.set()
        if controller is not None:
            controller.join(config.phase_seconds * 4 + 1.0)
        FAULTS.disarm("repl.transport.deliver")
        FAULTS.disarm("repl.replica.apply")
        for exc in harness_errors:
            cell.failures.append(f"harness error: {exc!r}")
        if hung or harness_errors:
            return cell

        _heal(group, names)
        cell.committed = len(service.committed_ops())
        acked_pairs = list(service.acked_ops())
        cell.acked = len(acked_pairs)
        active = service
        primary_db = db
        # With auto-failover on, the partition cells fail over too —
        # the kill then happens on a group whose links just spent the
        # whole workload flapping.
        failover = scenario == "primary_kill" or (
            config.auto_failover and scenario == "partition"
        )
        if failover:
            if config.auto_failover:
                # Deterministic epilogue timing: stop dropping beats,
                # but leave the clock skew in — expiry, election and
                # fencing must hold under drift up to the margin.
                FAULTS.disarm("repl.lease.heartbeat")
                new_service = _auto_failover_epilogue(
                    cell, config, group, service, primary_dir,
                    coordinator,
                )
            else:
                new_service = _failover_epilogue(cell, config, group,
                                                 service, primary_dir)
            if new_service is None:
                return cell
            active = new_service
            primary_db = new_service.db
            cell.committed += len(new_service.committed_ops())
            new_acked = list(new_service.acked_ops())
            acked_pairs.extend(new_acked)
            cell.acked += len(new_acked)
        for attempt in range(2):
            _heal(group, names + ["old-primary"])
            try:
                verdict = group.sync_all(timeout=10.0)
            except ReproError as exc:
                cell.failures.append(f"settling failed: {exc!r}")
                break
            if not verdict["lagging"]:
                break
        else:
            cell.failures.append(
                f"replicas never settled: {verdict['lagging']}"
            )
        if cell.promotion is None:
            # Valid only without a failover: after one, the old
            # primary's committed log includes the fenced-away tail.
            _verify_replay(cell, config, service.committed_ops(),
                           primary_db)
        _verify_journal(cell, config, group, primary_db)
        _verify_replicas(cell, group, primary_db)
        if serve:
            if new_service is not None:
                new_service.serve_metrics()
            _scrape(active, group, scrape_dir,
                    f"{_slug(mode, scenario)}-final", cell)
        verify_events = True
    finally:
        stop.set()
        FAULTS.disarm("repl.transport.deliver")
        FAULTS.disarm("repl.replica.apply")
        if coordinator is not None:
            coordinator.stop()
        if lease_mgr is not None:
            lease_mgr.stop()
        FAULTS.disarm("repl.lease.clock")
        FAULTS.disarm("repl.lease.heartbeat")
        try:
            service.close(timeout=5.0)
        except ReproError:
            pass
        if new_service is not None:
            try:
                new_service.close(timeout=5.0)
            except ReproError:
                pass
        OBS.events.remove_sink(cell_sink)
        cell_sink.close()
        cell.duration = time.monotonic() - started
        cell.counts = counts
    if verify_events:
        if not cell_sink.path.exists():
            cell.notes.append(
                "no cell event stream (collection disabled); span "
                "oracles skipped"
            )
            return cell
        label = _slug(mode, scenario)
        try:
            records = read_jsonl(cell_sink.path)
        except (OSError, ValueError) as exc:
            cell.failures.append(f"cell event stream unreadable: {exc}")
            return cell
        _verify_pipeline_coverage(cell, mode, config.replicas, records,
                                  acked_pairs)
        _verify_timeline(cell, cell.promotion is not None, records,
                         scrape_dir, label)
        _write_pipeline_dot(cell, records, acked_pairs, scrape_dir,
                            label)
    return cell


# -- the run ------------------------------------------------------------------


def run_replication_soak(
    config: ReplicationSoakConfig = ReplicationSoakConfig(),
) -> ReplicationSoakReport:
    """Run the full matrix; see the module docstring for the checks."""
    workdir = Path(config.workdir
                   or tempfile.mkdtemp(prefix="fdb-repl-soak-"))
    workdir.mkdir(parents=True, exist_ok=True)
    jsonl = Path(config.jsonl or workdir / "replication-events.jsonl")
    scrape_dir = Path(config.scrape_dir or workdir)
    scrape_dir.mkdir(parents=True, exist_ok=True)
    report = ReplicationSoakReport(config=config,
                                   jsonl_path=str(jsonl))
    sink = FileSink(jsonl)
    was_enabled = OBS.enabled
    OBS.events.add_sink(sink)
    OBS.enable()
    started = time.monotonic()
    try:
        for mode in config.modes:
            for scenario in config.scenarios:
                cell_dir = workdir / _slug(mode, scenario)
                cell_dir.mkdir(parents=True, exist_ok=True)
                report.cells.append(
                    _run_cell(mode, scenario, config, cell_dir,
                              scrape_dir, config.serve_endpoint)
                )
    finally:
        FAULTS.disarm_all()
        if not was_enabled:
            OBS.disable()
        OBS.events.remove_sink(sink)
    report.duration = time.monotonic() - started

    records = read_jsonl(jsonl)

    def actions(name: str) -> int:
        return sum(1 for r in records
                   if r.kind == "action" and r.name == name)

    report.promotions = actions("replication.promote")
    report.elections = actions("replication.elected")
    report.fenced_writes = actions("replication.write_fenced")
    report.rejoins = actions("replication.rejoin")
    if config.auto_failover:
        expected = sum(1 for _ in config.modes
                       for s in config.scenarios
                       if s in ("primary_kill", "partition"))
        if report.elections < expected:
            report.failures.append(
                f"event log shows {report.elections} elections for "
                f"{expected} auto-failover cells"
            )
        if report.promotions != report.elections:
            report.failures.append(
                f"{report.promotions} promotions vs {report.elections}"
                f" elections: a promotion ran outside the coordinator"
            )
    if "primary_kill" in config.scenarios:
        kills = sum(1 for mode in config.modes
                    for s in config.scenarios if s == "primary_kill")
        if report.promotions < kills:
            report.failures.append(
                f"event log shows {report.promotions} promotions for "
                f"{kills} primary_kill cells"
            )
        if report.fenced_writes < kills:
            report.failures.append(
                f"event log shows {report.fenced_writes} fenced "
                f"writes for {kills} primary_kill cells"
            )
        if report.rejoins < kills:
            report.failures.append(
                f"event log shows {report.rejoins} rejoins for "
                f"{kills} primary_kill cells"
            )
    return report
