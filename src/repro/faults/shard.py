"""Sharded chaos soak: parallel write lanes under live load.

``python -m repro.faults --soak --shards N`` points the mixed workload
at a :class:`ShardedDatabaseService
<repro.shard.sharded.ShardedDatabaseService>` instead of one service:
N worker threads drive single-cluster reads and writes, single-shard
atomic sequences, *multi-shard* sequences through the global lane,
scatter-gather reads and read-modify-writes at a facade whose lanes
commit in parallel, while a fault controller cycles storage latency
and transient WAL errors underneath. With ``--replicas R`` each lane
gets its own replication group, and with ``--auto-failover`` shard
0's lane additionally runs lease-based leadership — the epilogue then
isolates that lane's primary and the *coordinator* must elect, fence
and promote on its own, after which the facade's lane is swapped to
the new primary.

The oracle, per the sharding contract (``docs/SHARDING.md``):

1. **Per-shard sequential replay** — every lane's final state must
   equal a fresh instance (same schema factory, same deterministic
   preload of that shard's functions) replaying that lane's
   committed-op log in order. Lanes commit concurrently, but each
   lane's history must still be sequential — that is exactly what the
   per-shard ``__write__`` token buys.
2. **Cross-shard markers are ordered** — each lane's
   ``(marker, committed-index)`` journal must be strictly increasing
   in both coordinates, and every marker must appear on at least two
   lanes (a multi-shard write involves several shards by definition).
3. **No cross-shard deadlock** — every worker joins inside the wall
   clock budget; the sorted shard-id lock order in the global lane
   must make that boring.
4. **Zero acked loss through failover** — when shard 0 fails over,
   every sequence number its old primary acked must sit at or below
   the fence, and the survivors' replicas must converge to the new
   primary's state.
5. **Telemetry is live** — a mid-soak ``/metrics`` scrape over real
   HTTP parses as Prometheus text and carries ``service_shard_*``
   series for every shard. Per-shard op journals
   (``shard-<i>.jsonl``) and the scrapes are kept as CI artifacts.
"""

from __future__ import annotations

import json
import random
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.derivation import Derivation
from repro.core.schema import FunctionDef, ObjectType, TypeFunctionality
from repro.errors import (
    CrossShardError,
    PersistenceError,
    ReplicationError,
    ReplicationTimeout,
    ReproError,
    StalePrimary,
)
from repro.faults.harness import states_diff
from repro.faults.registry import FAULTS, LatencyFault, TransientError
from repro.faults.replication import _links_by_name, _set_partition
from repro.faults.soak import _OUTCOMES, _classify
from repro.fdb import persistence
from repro.fdb.database import FunctionalDatabase
from repro.fdb.updates import (
    Update,
    UpdateSequence,
    apply_sequence,
    apply_update,
)
from repro.fdb.values import is_null
from repro.fdb.wal import UpdateLog
from repro.obs.endpoint import ExpositionError, parse_prometheus
from repro.obs.events import FileSink
from repro.obs.hooks import OBS
from repro.replication import (
    FailoverCoordinator,
    LeaseConfig,
    Replica,
    ReplicationGroup,
)
from repro.service import CircuitBreaker, DatabaseService, RetryPolicy
from repro.service.service import clusters_of
from repro.shard import ShardedDatabaseService

__all__ = ["ShardSoakConfig", "ShardSoakReport", "run_shard_soak",
           "shard_soak_database", "shard_preload"]


@dataclass(frozen=True)
class ShardSoakConfig:
    """Knobs for one sharded soak. Defaults match the CI job."""

    shards: int = 2
    threads: int = 8
    ops_per_thread: int = 24
    seed: int = 0
    clusters: int = 6
    preload_rows: int = 6
    replicas: int = 0
    mode: str = "sync(1)"
    ack_timeout: float = 2.0
    auto_failover: bool = False
    lease_duration: float = 0.5
    lease_margin: float = 0.1
    lease_renew_interval: float = 0.08
    lock_timeout: float = 0.25
    tight_deadline: float = 0.003
    loose_deadline: float = 2.0
    phase_seconds: float = 0.08
    wall_clock_limit: float = 120.0
    faults: bool = True
    serve_endpoint: bool = True
    workdir: str | None = None
    jsonl: str | None = None  # default: <workdir>/shard-events.jsonl
    scrape_dir: str | None = None


@dataclass
class ShardSoakReport:
    """Counts, per-shard facts and verdicts for one sharded soak."""

    config: ShardSoakConfig
    duration: float = 0.0
    counts: dict = field(default_factory=dict)
    committed: dict = field(default_factory=dict)   # shard -> count
    markers: dict = field(default_factory=dict)     # shard -> count
    multi_writes: int = 0
    failover: dict | None = None
    failures: list = field(default_factory=list)
    notes: list = field(default_factory=list)
    scrape_paths: list = field(default_factory=list)
    jsonl_path: str = ""
    shard_jsonl: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def lines(self) -> list[str]:
        out = [
            f"shard soak: {self.config.shards} shards x "
            f"{self.config.threads} threads x "
            f"{self.config.ops_per_thread} ops, "
            f"{self.config.replicas} replicas/lane, seed "
            f"{self.config.seed}, {self.duration:.2f}s",
            "ops: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.counts.items()) if v
            ),
            "committed per shard: " + ", ".join(
                f"{shard}={count}"
                for shard, count in sorted(self.committed.items())
            ) + f"; multi-shard writes {self.multi_writes}",
        ]
        if self.markers:
            out.append("cross-shard markers per shard: " + ", ".join(
                f"{shard}={count}"
                for shard, count in sorted(self.markers.items())
            ))
        if self.failover:
            out.append(
                f"failover on shard 0: promoted "
                f"{self.failover['chosen']} at fence "
                f"{self.failover['fence_seq']}"
                + (" via automatic election"
                   if self.failover.get("elections") else "")
            )
        out.extend(f"note: {note}" for note in self.notes)
        out.extend(f"FAILED: {failure}" for failure in self.failures)
        out.append("shard soak: " + ("ok" if self.ok else "FAILED"))
        return out


# -- the instance -------------------------------------------------------------


def shard_soak_database(clusters: int = 6) -> FunctionalDatabase:
    """An *empty* multi-cluster schema: ``clusters`` independent
    chains ``s<i>a . s<i>b -> s<i>v``. Every lane gets the full schema
    (routing needs it everywhere); data arrives per shard through
    :func:`shard_preload` and the workload itself."""
    db = FunctionalDatabase()
    mm = TypeFunctionality.MANY_MANY
    for index in range(clusters):
        prefix = f"s{index}"
        types = [ObjectType(f"S{index}_{j}") for j in range(3)]
        first = FunctionDef(f"{prefix}a", types[0], types[1], mm)
        second = FunctionDef(f"{prefix}b", types[1], types[2], mm)
        db.declare_base(first)
        db.declare_base(second)
        db.declare_derived(
            FunctionDef(f"{prefix}v", types[0], types[2], mm),
            Derivation.of(first, second),
        )
    return db


def _balanced_pins(config: ShardSoakConfig) -> dict[str, int]:
    """Round-robin cluster -> shard pins: the soak must have every
    lane populated (the failover epilogue writes to shard 0 and shard
    1 by name) and real multi-shard traffic, which a pure hash
    placement cannot promise for a handful of clusters."""
    if config.clusters < config.shards:
        raise ValueError(
            f"shard soak needs at least one cluster per shard "
            f"({config.clusters} clusters < {config.shards} shards)"
        )
    clusters = sorted(set(
        clusters_of(shard_soak_database(config.clusters)).values()
    ))
    return {cluster: index % config.shards
            for index, cluster in enumerate(clusters)}


def shard_preload(db: FunctionalDatabase, names, rows: int = 6) -> None:
    """Deterministically load ``rows`` true facts into each *base*
    function in ``names``. Loads bypass the update machinery (plain
    stored facts, no NCs, no nulls), so a replay oracle seeds its
    fresh instance with the same call and the same names."""
    for name in sorted(names):
        if db.is_base(name):
            db.load(name, [(f"{name}_x{j}", f"{name}_y{j}")
                           for j in range(rows)])


# -- workload -----------------------------------------------------------------


def _plan_worker(service: ShardedDatabaseService, worker: int,
                 config: ShardSoakConfig) -> list[tuple]:
    """Pre-generate one worker's ops against the routing map (no map
    lookups once threads are live). Single-shard traffic dominates;
    multi-shard sequences and scatter reads exercise the global lane
    and the gather path."""
    rng = random.Random(config.seed * 7919 + worker)
    shard_map = service.map
    db = service.lanes[0].db
    bases = sorted(db.base_names)
    deriveds = sorted(db.derived_names)
    by_shard: dict[int, list[str]] = {}
    for name in bases:
        by_shard.setdefault(shard_map.shard_of(name), []).append(name)
    multi_ready = len(by_shard) >= 2
    shard_ids = sorted(by_shard)

    def deadline() -> float:
        return config.tight_deadline if rng.random() < 0.1 \
            else config.loose_deadline

    ops: list[tuple] = []
    for index in range(config.ops_per_thread):
        roll = rng.random()
        tag = f"w{worker}i{index}"
        if roll < 0.35:
            name = rng.choice(bases)
            ops.append(("write",
                        Update.ins(name, f"{tag}x", f"{tag}y"),
                        deadline()))
        elif roll < 0.45:
            name = rng.choice(deriveds)
            ops.append(("write",
                        Update.ins(name, f"{tag}dx", f"{tag}dy"),
                        deadline()))
        elif roll < 0.55:
            # Single-shard atomic sequence within one cluster.
            prefix = rng.choice(bases).rstrip("ab")
            ops.append(("seq", UpdateSequence((
                Update.ins(f"{prefix}a", f"{tag}sx", f"{tag}sm"),
                Update.ins(f"{prefix}b", f"{tag}sm", f"{tag}sy"),
            ), label=f"seq-{tag}"), deadline()))
        elif roll < 0.67 and multi_ready:
            # Multi-shard sequence: one insert on each of two shards.
            first, second = rng.sample(shard_ids, 2)
            ops.append(("multi", UpdateSequence((
                Update.ins(rng.choice(by_shard[first]),
                           f"{tag}mx", f"{tag}my"),
                Update.ins(rng.choice(by_shard[second]),
                           f"{tag}nx", f"{tag}ny"),
            ), label=f"multi-{tag}"), deadline()))
        elif roll < 0.77:
            ops.append(("read", rng.choice(bases + deriveds),
                        deadline()))
        elif roll < 0.87 and multi_ready:
            first, second = rng.sample(shard_ids, 2)
            ops.append(("scatter",
                        (rng.choice(by_shard[first]),
                         rng.choice(by_shard[second])),
                        deadline()))
        elif roll < 0.95:
            ops.append(("rmw", rng.choice(bases), deadline()))
        else:
            # Delete a preloaded fact (may already be gone: noop path).
            name = rng.choice(bases)
            row = rng.randrange(config.preload_rows)
            ops.append(("write",
                        Update.delete(name, f"{name}_x{row}",
                                      f"{name}_y{row}"),
                        deadline()))
    return ops


_SHARD_OUTCOMES = _OUTCOMES + ("cross_shard", "repl_timeout", "fenced")


def _classify_shard(exc: BaseException) -> str:
    if isinstance(exc, CrossShardError):
        return "cross_shard"
    if isinstance(exc, ReplicationTimeout):
        return "repl_timeout"
    if isinstance(exc, StalePrimary):
        return "fenced"
    return _classify(exc)


def _run_worker(service: ShardedDatabaseService, ops: list[tuple],
                counts: dict, counts_lock: threading.Lock,
                errors: list) -> None:
    local = dict.fromkeys(_SHARD_OUTCOMES, 0)
    for kind, payload, deadline in ops:
        try:
            if kind == "read":
                name = payload
                service.read((name,),
                             lambda db, n=name: db.extension(n),
                             deadline=deadline)
                local["applied"] += 1
            elif kind == "scatter":
                service.scatter_read(
                    payload,
                    lambda db, names: {n: len(db.table(n))
                                       for n in names},
                    deadline=deadline,
                )
                local["applied"] += 1
            elif kind == "rmw":
                name = payload

                def build(db, n=name):
                    pairs = sorted(
                        p for p in db.table(n).pairs()
                        if not (is_null(p[0]) or is_null(p[1]))
                    )
                    if not pairs:
                        return None
                    x, y = pairs[0]
                    return Update.rep(n, (x, y), (x, f"{y}~r"))

                applied = service.read_modify_write((name,), build,
                                                    deadline=deadline)
                local["applied" if applied is not None else "noop"] += 1
            else:  # "write" | "seq" | "multi"
                service.execute(payload, deadline=deadline)
                local["applied"] += 1
        except ReproError as exc:
            local[_classify_shard(exc)] += 1
        except (RuntimeError, OSError) as exc:
            local[_classify_shard(exc)] += 1
        except BaseException as exc:  # pragma: no cover - harness bug
            errors.append(exc)
            raise
    with counts_lock:
        for key, value in local.items():
            counts[key] = counts.get(key, 0) + value


def _fault_controller(config: ShardSoakConfig,
                      stop: threading.Event) -> None:
    """Cycle storage latency and transient WAL errors under the
    workload (the full outage/breaker choreography lives in the
    single-node soak; here the oracle is about lanes, not breakers)."""
    seed = config.seed
    phases = [
        ("quiet", []),
        ("latency", [
            ("storage.append.payload",
             LatencyFault(0.002, jitter=0.004, seed=seed)),
            ("storage.atomic.payload",
             LatencyFault(0.002, jitter=0.004, seed=seed + 1)),
        ]),
        ("transient", [
            ("wal.append.before", TransientError(times=2)),
        ]),
    ]
    index = 0
    while not stop.is_set():
        name, arms = phases[index % len(phases)]
        for point, fault in arms:
            FAULTS.arm(point, fault)
        if OBS.enabled:
            OBS.action("soak.phase", phase=name)
        stop.wait(config.phase_seconds)
        for point, _ in arms:
            FAULTS.disarm(point)
        index += 1
    for _, arms in phases:
        for point, _ in arms:
            FAULTS.disarm(point)


# -- verification -------------------------------------------------------------


def _verify_shard_replay(report: ShardSoakReport,
                         config: ShardSoakConfig,
                         service: ShardedDatabaseService,
                         skip: set[int]) -> None:
    """Oracle 1: lane state ≡ sequential replay of the lane's log."""
    for shard in range(config.shards):
        if shard in skip:
            report.notes.append(
                f"shard {shard}: replay equality skipped (its log "
                f"includes the fenced-away tail); covered by the "
                f"acked-loss and replica-convergence checks"
            )
            continue
        expected = shard_soak_database(config.clusters)
        shard_preload(expected, service.map.names_on(shard),
                      config.preload_rows)
        for op in service.committed_ops(shard):
            if isinstance(op, UpdateSequence):
                apply_sequence(expected, op)
            else:
                apply_update(expected, op)
        diff = states_diff(expected, service.lane(shard).db)
        if diff:
            report.failures.append(
                f"shard {shard} diverged from its sequential replay: "
                f"{diff}"
            )


def _verify_markers(report: ShardSoakReport,
                    service: ShardedDatabaseService,
                    shards: int, swapped: set[int]) -> None:
    """Oracle 2: marker journals strictly increasing per lane, every
    marker on >= 2 lanes. A failed-over lane's journal restarts empty
    (the swap installs a fresh service), so with a swap in the run the
    pairing check only covers markers minted after it."""
    seen: dict[int, list[int]] = {}
    for shard in range(shards):
        journal = service.cross_markers(shard)
        report.markers[shard] = len(journal)
        markers = [marker for marker, _ in journal]
        indices = [index for _, index in journal]
        if markers != sorted(set(markers)):
            report.failures.append(
                f"shard {shard} marker journal not strictly "
                f"increasing: {markers[:10]}"
            )
        if indices != sorted(set(indices)):
            report.failures.append(
                f"shard {shard} marker commit indices not strictly "
                f"increasing: {indices[:10]}"
            )
        committed = len(service.committed_ops(shard))
        bad = [index for index in indices if index >= committed]
        if bad:
            report.failures.append(
                f"shard {shard} marker indices past its committed "
                f"log: {bad[:10]}"
            )
        for marker in markers:
            seen.setdefault(marker, []).append(shard)
    floor = 0
    if swapped:
        # Markers minted before the swap may have lost their partner
        # with the old lane's journal; only markers the new lane
        # itself recorded (and everything after) are fully paired.
        post_swap = [marker for shard in swapped
                     for marker, _ in service.cross_markers(shard)]
        floor = min(post_swap) if post_swap \
            else max(seen, default=0) + 1
        report.notes.append(
            f"marker pairing checked from marker {floor} on (lanes "
            f"{sorted(swapped)} restarted their journals at failover)"
        )
    lonely = {marker: lanes for marker, lanes in seen.items()
              if len(lanes) < 2 and marker >= floor}
    if lonely:
        report.failures.append(
            f"cross-shard markers on a single lane (a multi-shard "
            f"write involves >= 2): {dict(list(lonely.items())[:5])}"
        )


def _scrape(report: ShardSoakReport, service: ShardedDatabaseService,
            dest: Path, label: str, shards: int) -> None:
    """Oracle 5: /metrics over real HTTP parses and carries every
    lane's service_shard_<i>_* series; /health folds all lanes."""
    import urllib.error
    import urllib.request

    endpoint = service.endpoint
    if endpoint is None or not endpoint.running:
        report.failures.append(f"scrape {label}: endpoint not running")
        return
    try:
        url = endpoint.url
        with urllib.request.urlopen(url + "/metrics", timeout=5) as resp:
            body = resp.read().decode("utf-8")
        families = parse_prometheus(body)
        for shard in range(shards):
            prefix = f"service_shard_{shard}_"
            if not any(name.startswith(prefix) for name in families):
                report.failures.append(
                    f"scrape {label}: no {prefix}* series in /metrics"
                )
        path = dest / f"metrics-{label}.prom"
        path.write_text(body, encoding="utf-8")
        report.scrape_paths.append(str(path))
        try:
            with urllib.request.urlopen(url + "/health",
                                        timeout=5) as resp:
                health_body = resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            health_body = exc.read().decode("utf-8")
        verdict = json.loads(health_body)
        if len(verdict.get("lanes", {})) != shards:
            report.failures.append(
                f"scrape {label}: /health lacks the per-lane verdicts"
            )
        health_path = dest / f"health-{label}.json"
        health_path.write_text(health_body, encoding="utf-8")
        report.scrape_paths.append(str(health_path))
    except (OSError, ValueError, ExpositionError) as exc:
        report.failures.append(f"scrape {label}: {exc}")


def _dump_shard_journals(report: ShardSoakReport,
                         service: ShardedDatabaseService,
                         dest: Path, shards: int) -> None:
    """Per-shard JSONL artifacts: one line per committed op, with the
    cross-shard marker where one applies."""
    for shard in range(shards):
        by_index = {index: marker for marker, index
                    in service.cross_markers(shard)}
        path = dest / f"shard-{shard}.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            for index, op in enumerate(service.committed_ops(shard)):
                handle.write(json.dumps({
                    "index": index,
                    "op": str(op),
                    "marker": by_index.get(index),
                }, sort_keys=True) + "\n")
        report.shard_jsonl.append(str(path))


# -- failover epilogue --------------------------------------------------------


def _failover_epilogue(report: ShardSoakReport,
                       config: ShardSoakConfig,
                       service: ShardedDatabaseService,
                       group: ReplicationGroup, lane_dir: Path,
                       coordinator) -> bool:
    """Oracle 4: isolate shard 0's primary mid-commit, fail the lane
    over (by coordinator election under --auto-failover, by explicit
    promote otherwise), assert zero acked loss, swap the facade's
    lane to the new primary and write through it. The other lanes
    must stay writable throughout. Returns True when the swap
    happened (so the caller skips replay equality on shard 0)."""
    lane = service.lane(0)
    victim = sorted(service.map.names_on(0))[0]
    links = _links_by_name(group)
    for link in links.values():
        _set_partition(link, True)
    if OBS.enabled:
        OBS.action("soak.partition", replica="*", shard=0)
    old_term = group.term
    old_timeout = group.ack_timeout
    group.ack_timeout = 0.2
    timed_out = False
    try:
        lane.insert(victim, "tail_x", "tail_y", deadline=5.0)
    except ReplicationTimeout:
        timed_out = True
    except ReproError as exc:
        report.failures.append(
            f"isolated shard-0 write failed unexpectedly: {exc!r}"
        )
    finally:
        group.ack_timeout = old_timeout
    if not timed_out:
        report.failures.append(
            "isolated shard-0 commit did not raise ReplicationTimeout"
        )
    acked = lane.acked_ops()

    # The other lanes must not notice shard 0's outage.
    for shard in range(1, config.shards):
        other = sorted(service.map.names_on(shard))[0]
        try:
            service.insert(other, "during_failover_x",
                           f"during_failover_y{shard}", deadline=5.0)
        except ReproError as exc:
            report.failures.append(
                f"shard {shard} write failed during shard 0's "
                f"failover: {exc!r}"
            )

    elections = 0
    if coordinator is not None:
        lease = group.lease
        horizon = lease.config.detector_horizon if lease is not None \
            else 2.0
        deadline = time.monotonic() + horizon + 5.0
        while not group.leaderless() and time.monotonic() < deadline:
            time.sleep(0.01)
        if not group.leaderless():
            report.failures.append(
                "isolated shard-0 primary never self-demoted"
            )
            return False
        deadline = time.monotonic() + horizon + 5.0
        while not coordinator.elections \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        if not coordinator.elections:
            report.failures.append(
                "no automatic election on shard 0 inside the window"
            )
            return False
        promotion = coordinator.elections[-1]
        elections = len(coordinator.elections)
    else:
        for link in links.values():
            _set_partition(link, False)
        try:
            promotion = group.promote()
        except ReplicationError as exc:
            report.failures.append(f"shard 0 promotion failed: {exc!r}")
            return False
    fence = group.fence_seq(old_term)
    lost = [seq for seq, _ in acked if seq > fence]
    if lost:
        report.failures.append(
            f"shard 0 acked commits past the fence (lost): {lost}"
        )
    try:
        lane.insert(victim, "deposed_x", "deposed_y", deadline=5.0)
        report.failures.append(
            "deposed shard-0 primary wrote after promotion (no fence)"
        )
    except StalePrimary:
        pass
    except ReproError as exc:
        report.failures.append(
            f"deposed shard-0 write raised {exc!r}, wanted StalePrimary"
        )
    lane.close(timeout=10.0)

    for link in _links_by_name(group).values():
        _set_partition(link, False)
    chosen = group.replica(promotion.chosen)
    group.remove_replica(promotion.chosen)
    new_lane = DatabaseService(
        chosen.db,
        log=UpdateLog(chosen.wal_path),
        lock_timeout=config.lock_timeout,
        shard=0,
        replication=group,
        node=chosen.name,
        seed=config.seed + 1,
    )
    service.swap_lane(0, new_lane)
    report.failover = {
        "chosen": promotion.chosen,
        "fence_seq": fence,
        "old_term": old_term,
        "new_term": group.term,
        "elections": elections,
    }
    # The facade routes to the new lane; both single- and multi-shard
    # paths must work across the swap.
    try:
        service.insert(victim, "post_failover_x", "post_failover_y",
                       deadline=5.0)
        if config.shards > 1:
            other = sorted(service.map.names_on(1))[0]
            service.execute(UpdateSequence((
                Update.ins(victim, "post_multi_x", "post_multi_y"),
                Update.ins(other, "post_multi_p", "post_multi_q"),
            ), label="post-failover-multi"), deadline=5.0)
    except ReproError as exc:
        report.failures.append(
            f"post-failover write through the facade failed: {exc!r}"
        )
    try:
        verdict = group.sync_all(timeout=10.0)
        if verdict["lagging"]:
            report.failures.append(
                f"shard 0 replicas never settled: {verdict['lagging']}"
            )
        else:
            for name in group.replica_names():
                try:
                    replica = group.replica(name)
                except ReplicationError:
                    continue
                diff = states_diff(new_lane.db, replica.db)
                if diff:
                    report.failures.append(
                        f"shard 0 replica {name} diverged after "
                        f"failover: {diff}"
                    )
    except ReproError as exc:
        report.failures.append(f"shard 0 settling failed: {exc!r}")
    return True


# -- the run ------------------------------------------------------------------


def run_shard_soak(
    config: ShardSoakConfig = ShardSoakConfig(),
) -> ShardSoakReport:
    """Run one sharded soak; see the module docstring for the oracle."""
    workdir = Path(config.workdir
                   or tempfile.mkdtemp(prefix="fdb-shard-soak-"))
    workdir.mkdir(parents=True, exist_ok=True)
    jsonl = Path(config.jsonl or workdir / "shard-events.jsonl")
    scrape_dir = Path(config.scrape_dir or workdir)
    scrape_dir.mkdir(parents=True, exist_ok=True)
    report = ShardSoakReport(config=config, jsonl_path=str(jsonl))
    sink = FileSink(jsonl)
    was_enabled = OBS.enabled
    OBS.events.add_sink(sink)
    OBS.enable()
    started = time.monotonic()

    groups: dict[int, ReplicationGroup] = {}
    lease_mgr = None
    coordinator = None
    lane_dirs: dict[int, Path] = {}

    def factory() -> FunctionalDatabase:
        return shard_soak_database(config.clusters)

    def replication_factory(shard: int):
        if config.replicas < 1:
            return None
        group = ReplicationGroup(
            config.mode, ack_timeout=config.ack_timeout,
            retry_interval=0.01, journal=True,
        )
        groups[shard] = group
        return group

    service: ShardedDatabaseService | None = None
    try:
        # Lane layout mirrors the replication soak's primary: each
        # lane directory holds snapshot.json + wal.log so it can
        # rejoin a group as a follower after being deposed.
        log_dir = workdir / "lanes"
        log_dir.mkdir(parents=True, exist_ok=True)
        if config.auto_failover and config.replicas > 0:
            # The lease must exist before the lane service attaches to
            # the group (the first term should be lease-granted), so
            # hook it in through the replication factory.
            base_factory = replication_factory

            def replication_factory(shard, _base=base_factory):
                group = _base(shard)
                if group is not None and shard == 0:
                    group.enable_lease(LeaseConfig(
                        duration=config.lease_duration,
                        margin=config.lease_margin,
                        renew_interval=config.lease_renew_interval,
                        check_interval=0.02,
                    ))
                return group

        pins = _balanced_pins(config)
        service = ShardedDatabaseService(
            factory, config.shards,
            pins=pins,
            log_dir=log_dir,
            replication_factory=None,
            service_kwargs=dict(
                lock_timeout=config.lock_timeout,
                retry=RetryPolicy(
                    max_attempts=4, base_delay=0.004, max_delay=0.05,
                    jitter=0.004,
                    retryable=RetryPolicy().retryable
                    + (PersistenceError,),
                ),
                breaker=CircuitBreaker(failure_threshold=4,
                                       reset_timeout=0.1),
                seed=config.seed,
            ),
        ) if config.replicas < 1 else _build_replicated(
            config, factory, replication_factory, workdir, groups,
            lane_dirs, _balanced_pins(config),
        )

        # Preload each lane with its own functions' facts (the replay
        # oracle seeds its fresh instances identically).
        for shard in range(config.shards):
            shard_preload(service.lane(shard).db,
                          service.map.names_on(shard),
                          config.preload_rows)
            if shard in groups:
                # The preload predates the WAL: refresh the bootstrap
                # snapshot so replicas catch up from the same floor.
                persistence.save(service.lane(shard).db,
                                 lane_dirs[shard] / "snapshot.json",
                                 wal_applied=0)

        for shard, group in groups.items():
            for index in range(config.replicas):
                name = f"s{shard}r{index}"
                group.add_replica(
                    name, Replica(name, workdir / "replicas" / name)
                )
        if config.auto_failover and 0 in groups:
            lease_mgr = groups[0].lease
            if lease_mgr is not None:
                coordinator = FailoverCoordinator(groups[0],
                                                  lease_mgr.config)
                for name in groups[0].replica_names():
                    coordinator.watch(groups[0].replica(name))
                lease_mgr.start()
                coordinator.start()

        plans = [_plan_worker(service, worker, config)
                 for worker in range(config.threads)]
        counts: dict[str, int] = {}
        counts_lock = threading.Lock()
        harness_errors: list = []
        stop = threading.Event()
        controller = None
        if config.faults:
            controller = threading.Thread(
                target=_fault_controller, args=(config, stop),
                name="shard-soak-controller", daemon=True,
            )
        workers = [
            threading.Thread(
                target=_run_worker,
                args=(service, plans[i], counts, counts_lock,
                      harness_errors),
                name=f"shard-worker-{i}", daemon=True,
            )
            for i in range(config.threads)
        ]
        if controller is not None:
            controller.start()
        for worker in workers:
            worker.start()
        if config.serve_endpoint:
            service.serve_metrics()
            time.sleep(min(0.2, config.wall_clock_limit / 10))
            _scrape(report, service, scrape_dir, "mid", config.shards)
        budget = started + config.wall_clock_limit
        for worker in workers:
            worker.join(max(budget - time.monotonic(), 0.1))
        hung = sum(1 for worker in workers if worker.is_alive())
        if hung:
            report.failures.append(
                f"{hung} workers hung (cross-shard deadlock?)"
            )
        stop.set()
        if controller is not None:
            controller.join(config.phase_seconds * 4 + 1.0)
        report.counts = counts
        for exc in harness_errors:
            report.failures.append(f"harness error: {exc!r}")
        if hung or harness_errors:
            return report

        skip: set[int] = set()
        if config.replicas > 0 and 0 in groups:
            if _failover_epilogue(report, config, service, groups[0],
                                  lane_dirs.get(0, workdir),
                                  coordinator):
                skip.add(0)

        report.multi_writes = service.stats()["multi_writes"]
        for shard in range(config.shards):
            report.committed[shard] = len(service.committed_ops(shard))
        _verify_shard_replay(report, config, service, skip)
        _verify_markers(report, service, config.shards, skip)
        _dump_shard_journals(report, service, scrape_dir,
                             config.shards)
        if config.serve_endpoint:
            _scrape(report, service, scrape_dir, "final",
                    config.shards)
        return report
    finally:
        FAULTS.disarm_all()
        if coordinator is not None:
            coordinator.stop()
        if lease_mgr is not None:
            lease_mgr.stop()
        if service is not None:
            try:
                service.close(timeout=5.0)
            except ReproError:
                pass
        if not was_enabled:
            OBS.disable()
        OBS.events.remove_sink(sink)
        sink.close()
        report.duration = time.monotonic() - started


def _build_replicated(config: ShardSoakConfig, factory,
                      replication_factory, workdir: Path,
                      groups: dict, lane_dirs: dict,
                      pins: dict) -> ShardedDatabaseService:
    """A replicated facade needs each lane's WAL inside a directory a
    deposed primary can rejoin from (snapshot.json + wal.log), so the
    lanes are laid out by hand instead of the facade's flat
    ``log_dir`` naming."""
    lanes_dir = workdir / "lanes"
    for shard in range(config.shards):
        lane_dir = lanes_dir / f"shard-{shard}"
        lane_dir.mkdir(parents=True, exist_ok=True)
        lane_dirs[shard] = lane_dir

    def log_path_factory(shard: int) -> Path:
        return lane_dirs[shard] / "wal.log"

    service = ShardedDatabaseService.__new__(ShardedDatabaseService)
    # Re-run __init__ with per-lane construction inlined: simplest way
    # to keep one code path would widen the facade's ctor; the harness
    # instead builds lanes itself and hands them over.
    import itertools as _itertools
    import threading as _threading

    service.factory = factory
    service.lanes = []
    for shard in range(config.shards):
        db = factory()
        persistence.save(db, lane_dirs[shard] / "snapshot.json",
                         wal_applied=0)
        service.lanes.append(DatabaseService(
            db,
            log=log_path_factory(shard),
            lock_timeout=config.lock_timeout,
            shard=shard,
            retry=RetryPolicy(
                max_attempts=4, base_delay=0.004, max_delay=0.05,
                jitter=0.004,
                retryable=RetryPolicy().retryable + (PersistenceError,),
            ),
            breaker=CircuitBreaker(failure_threshold=4,
                                   reset_timeout=0.1),
            replication=replication_factory(shard),
            node=f"shard-{shard}-primary",
            seed=config.seed,
        ))
    from repro.shard.map import ShardMap

    service.map = ShardMap(service.lanes[0].db, config.shards,
                           pins=pins)
    service._marker = _itertools.count(1)
    service._marker_lock = _threading.Lock()
    service._multi_lock_timeout = config.lock_timeout
    service._multi_retries = 3
    service._stats_lock = _threading.Lock()
    service._multi_writes = 0
    service._scatter_reads = 0
    service.endpoint = None
    return service
