"""Chaos soak: concurrent mixed traffic against a live fault schedule.

The crash matrix (PR 2) proves every *single* failure point recovers
to exactly the committed prefix. This harness is its concurrency
analogue: N worker threads drive mixed traffic — reads, single
updates, atomic sequences, read-modify-writes, checkpoints — through
:class:`repro.service.DatabaseService` while a controller thread
cycles fault phases underneath (injected latency inside the storage
critical sections, transient I/O errors, a full storage outage that
trips the circuit breaker, apply-time failures that exercise the
compensating-abort path). Some requests carry deadlines tight enough
to be cancelled mid-propagation on purpose.

At the end the harness asserts the system degraded *gracefully* and
stayed *consistent*:

1. **Zero divergence** — the live state equals a sequential replay of
   the service's committed-operation log over an identically seeded
   fresh instance (:func:`repro.faults.harness.states_diff`, the same
   oracle the crash matrix uses). Every shed, cancelled, refused or
   failed request left no trace.
2. **Durability agrees** — strict recovery from the snapshot + WAL
   reproduces the live state too.
3. **The breaker breathed** — ``breaker.open`` and ``breaker.closed``
   action records are present in the JSONL event log (a forced-outage
   epilogue guarantees the transition happens even if the random
   schedule missed it).
4. **Nothing hung** — every worker joined within the wall-clock
   budget; deadlocks were resolved by detection + retry, not by the
   operator's Ctrl-C.
5. **Telemetry is truthful** — every ``service.request`` span that
   started also ended, and the spans stamped ``committed=True`` match
   the committed-op log one for one; a forced outage epilogue raised
   *and* cleared an SLO alert (``slo.alert_raised`` /
   ``slo.alert_cleared`` actions in the JSONL).
6. **Exposition is well-formed** — ``/metrics`` scraped over real
   HTTP mid-soak parses as valid Prometheus text format and
   ``/health`` returns a boolean verdict; the snapshots are kept as
   artifacts.

Run it: ``python -m repro.faults --soak`` (see ``--help`` for knobs).
"""

from __future__ import annotations

import random
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.derivation import Derivation
from repro.core.schema import FunctionDef
from repro.core.types import TypeFunctionality, ObjectType, compose_functionalities
from repro.errors import (
    OperationCancelled,
    PersistenceError,
    ReproError,
    ServiceOverloaded,
    ServiceReadOnly,
)
from repro.faults.harness import states_diff
from repro.faults.registry import (
    FAULTS,
    ErrorFault,
    LatencyFault,
    TransientError,
)
from repro.fdb import persistence
from repro.fdb.database import FunctionalDatabase
from repro.fdb.updates import (
    Update,
    UpdateSequence,
    apply_sequence,
    apply_update,
)
from repro.fdb.values import is_null
from repro.fdb.wal import recover
from repro.obs.endpoint import ExpositionError, parse_prometheus
from repro.obs.events import FileSink, read_jsonl
from repro.obs.hooks import OBS
from repro.obs.slo import ERROR_RATE, Objective
from repro.service import CircuitBreaker, DatabaseService, RetryPolicy
from repro.workloads.generator import (
    WorkloadConfig,
    random_instance,
    random_updates,
)

__all__ = ["SoakConfig", "SoakReport", "run_soak", "soak_database"]


@dataclass(frozen=True)
class SoakConfig:
    """Knobs for one soak run. Defaults match the CI smoke job."""

    threads: int = 8
    ops_per_thread: int = 30
    seed: int = 0
    rows_per_function: int = 10
    value_pool: int = 12
    faults: bool = True
    phase_seconds: float = 0.08
    lock_timeout: float = 0.25
    queue_timeout: float = 0.5
    max_concurrent: int = 6
    max_queue: int = 32
    tight_deadline: float = 0.003
    loose_deadline: float = 2.0
    wall_clock_limit: float = 120.0
    workdir: str | None = None
    jsonl: str | None = None  # default: <workdir>/soak-events.jsonl
    # Telemetry: serve /metrics + /health + /slo during the run and
    # scrape them mid-soak, saving snapshots under scrape_dir (default:
    # <workdir>). The SLO windows are short so the forced breach/clear
    # epilogue completes within a CI smoke budget.
    serve_endpoint: bool = True
    scrape_dir: str | None = None
    slo_window: float = 1.5
    slo_fast_fraction: float = 1 / 3
    slo_error_threshold: float = 0.35


@dataclass
class SoakReport:
    """Everything a CI job needs to pass or explain a failure."""

    config: SoakConfig
    duration: float = 0.0
    counts: dict = field(default_factory=dict)
    committed: int = 0
    divergence: str | None = None
    recovery_divergence: str | None = None
    accounting_error: str | None = None
    breaker_opens: int = 0
    breaker_closes: int = 0
    breaker_trips: int = 0
    breaker_resets: int = 0
    hung_workers: int = 0
    jsonl_path: str = ""
    span_error: str | None = None
    slo_error: str | None = None
    scrape_error: str | None = None
    slo_raised: int = 0
    slo_cleared: int = 0
    request_spans: int = 0
    committed_spans: int = 0
    scrape_paths: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.divergence is None
            and self.recovery_divergence is None
            and self.accounting_error is None
            and self.span_error is None
            and self.slo_error is None
            and self.scrape_error is None
            and self.hung_workers == 0
            and self.breaker_opens > 0
            and self.breaker_closes > 0
        )

    def lines(self) -> list[str]:
        out = [
            f"soak: {self.config.threads} threads x "
            f"{self.config.ops_per_thread} ops, seed "
            f"{self.config.seed}, {self.duration:.2f}s",
            "ops: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.counts.items())
            ),
            f"committed: {self.committed}",
            f"breaker: {self.breaker_trips} trips, "
            f"{self.breaker_resets} resets "
            f"({self.breaker_opens} open / {self.breaker_closes} "
            f"closed events in {self.jsonl_path})",
        ]
        out.append(
            "consistency: "
            + ("ok (state == sequential replay of committed ops)"
               if self.divergence is None
               else f"DIVERGED: {self.divergence}")
        )
        out.append(
            "recovery: "
            + ("ok (snapshot + WAL reproduce live state)"
               if self.recovery_divergence is None
               else f"DIVERGED: {self.recovery_divergence}")
        )
        out.append(
            f"spans: {self.committed_spans} committed / "
            f"{self.request_spans} request spans"
            + ("" if self.span_error is None
               else f" — BROKEN: {self.span_error}")
        )
        out.append(
            f"slo: {self.slo_raised} raised / {self.slo_cleared} "
            f"cleared"
            + ("" if self.slo_error is None
               else f" — BROKEN: {self.slo_error}")
        )
        if self.scrape_paths:
            out.append("scrapes: " + ", ".join(self.scrape_paths))
        if self.scrape_error:
            out.append(f"scrape: BROKEN: {self.scrape_error}")
        if self.accounting_error:
            out.append(f"accounting: {self.accounting_error}")
        if self.hung_workers:
            out.append(f"HUNG WORKERS: {self.hung_workers}")
        out.extend(self.notes)
        out.append("soak: " + ("ok" if self.ok else "FAILED"))
        return out


# -- the soak instance --------------------------------------------------------


def soak_database(seed: int, rows_per_function: int = 10,
                  value_pool: int = 12) -> FunctionalDatabase:
    """A deterministic multi-cluster instance.

    Two independent derivation clusters (chains ``a1 . a2 -> va`` and
    ``b1 . b2 -> vb``) plus a lone base ``c``: reads and writes on
    different clusters are concurrent, writes within one contend, and
    the lone base gives the breaker epilogue a quiet corner.
    """
    db = FunctionalDatabase()
    mm = TypeFunctionality.MANY_MANY

    def chain(prefix: str, derived_name: str) -> None:
        types = [ObjectType(f"{prefix.upper()}{i}") for i in range(3)]
        functions = []
        for i in range(2):
            definition = FunctionDef(
                f"{prefix}{i + 1}", types[i], types[i + 1], mm
            )
            db.declare_base(definition)
            functions.append(definition)
        db.declare_derived(
            FunctionDef(
                derived_name, types[0], types[2],
                compose_functionalities(f.functionality for f in functions),
            ),
            Derivation.of(*functions),
        )

    chain("a", "va")
    chain("b", "vb")
    c0, c1 = ObjectType("C0"), ObjectType("C1")
    db.declare_base(FunctionDef("c", c0, c1, mm))
    random_instance(db, rows_per_function, seed=seed,
                    value_pool=value_pool)
    return db


# -- workload -----------------------------------------------------------------


def _plan_worker_ops(db: FunctionalDatabase, worker: int,
                     config: SoakConfig) -> list[tuple]:
    """Pre-generate one worker's op list against the *initial* state
    (no unlocked table walks once threads are live). Each op carries
    its own deadline decided up front, so a run's pressure profile is
    a function of the seed."""
    rng = random.Random(config.seed * 7919 + worker)
    stream = random_updates(
        db, config.ops_per_thread,
        WorkloadConfig(seed=config.seed * 104729 + worker,
                       value_pool=config.value_pool,
                       fresh_value_rate=0.4),
    )
    read_targets = tuple(db.base_names) + tuple(db.derived_names)
    ops: list[tuple] = []
    for index in range(config.ops_per_thread):
        roll = rng.random()
        if roll < 0.1:
            deadline = config.tight_deadline
        elif roll < 0.9:
            deadline = config.loose_deadline
        else:
            deadline = None
        kind_roll = rng.random()
        if worker == 0 and index and index % 10 == 0:
            ops.append(("checkpoint", None, deadline))
        elif kind_roll < 0.30:
            name = rng.choice(read_targets)
            ops.append(("read", name, deadline))
        elif kind_roll < 0.45:
            # Read-modify-write on a contended chain base: the shared
            # -> exclusive upgrade is the deadlock driver.
            ops.append(("rmw", rng.choice(("a1", "b1")), deadline))
        elif kind_roll < 0.55 and len(stream) >= 2:
            first = stream.pop(rng.randrange(len(stream)))
            second = stream.pop(rng.randrange(len(stream)))
            ops.append(("seq",
                        UpdateSequence((first, second),
                                       label=f"w{worker}.{index}"),
                        deadline))
        elif stream:
            ops.append(("write", stream.pop(rng.randrange(len(stream))),
                        deadline))
        else:
            name = rng.choice(read_targets)
            ops.append(("read", name, deadline))
    return ops


_OUTCOMES = ("applied", "noop", "shed", "readonly", "cancelled",
             "contended", "failed_apply", "storage_failed", "closed",
             "other")


def _classify(exc: BaseException) -> str:
    if isinstance(exc, ServiceOverloaded):
        return "shed"
    if isinstance(exc, ServiceReadOnly):
        return "readonly"
    if isinstance(exc, OperationCancelled):
        return "cancelled"
    from repro.errors import DeadlockDetected, LockTimeout, ServiceClosed

    if isinstance(exc, (LockTimeout, DeadlockDetected)):
        return "contended"
    if isinstance(exc, ServiceClosed):
        return "closed"
    if isinstance(exc, (PersistenceError, OSError)):
        return "storage_failed"
    if isinstance(exc, RuntimeError):
        return "failed_apply"  # the apply-phase ErrorFault
    return "other"


def _run_worker(service: DatabaseService, ops: list[tuple],
                snapshot_path: Path, counts: dict,
                counts_lock: threading.Lock, errors: list) -> None:
    local = dict.fromkeys(_OUTCOMES, 0)
    for kind, payload, deadline in ops:
        try:
            if kind == "read":
                name = payload
                service.read((name,),
                             lambda db, n=name: db.extension(n),
                             deadline=deadline)
                local["applied"] += 1
            elif kind == "rmw":
                name = payload

                def build(db, n=name):
                    # Only plain (non-null) pairs: NVC facts carry
                    # indexed nulls, which are not REP targets here.
                    pairs = sorted(
                        p for p in db.table(n).pairs()
                        if not (is_null(p[0]) or is_null(p[1]))
                    )
                    if not pairs:
                        return None
                    x, y = pairs[0]
                    return Update.rep(n, (x, y), (x, f"{y}~r"))

                applied = service.read_modify_write((name,), build,
                                                    deadline=deadline)
                local["applied" if applied is not None else "noop"] += 1
            elif kind == "checkpoint":
                service.checkpoint(snapshot_path)
                local["applied"] += 1
            else:  # "write" | "seq"
                service.execute(payload, deadline=deadline)
                local["applied"] += 1
        except ReproError as exc:
            local[_classify(exc)] += 1
        except (RuntimeError, OSError) as exc:
            local[_classify(exc)] += 1
        except BaseException as exc:  # pragma: no cover - harness bug
            errors.append(exc)
            raise
    with counts_lock:
        for key, value in local.items():
            counts[key] = counts.get(key, 0) + value


# -- fault phases -------------------------------------------------------------


def _phase_schedule(config: SoakConfig) -> list[tuple[str, list[tuple]]]:
    """(name, [(point, fault), ...]) cycles for the controller."""
    seed = config.seed
    return [
        ("quiet", []),
        ("latency", [
            ("storage.append.payload",
             LatencyFault(0.002, jitter=0.004, seed=seed)),
            ("storage.atomic.payload",
             LatencyFault(0.002, jitter=0.004, seed=seed + 1)),
        ]),
        ("transient", [
            ("wal.append.before", TransientError(times=2)),
        ]),
        ("quiet", []),
        ("outage", [
            ("wal.append.before", TransientError(times=10 ** 6)),
        ]),
        ("apply_error", [
            ("wal.apply.before", ErrorFault(times=3)),
        ]),
    ]


def _controller(config: SoakConfig, stop: threading.Event) -> None:
    schedule = _phase_schedule(config)
    index = 0
    while not stop.is_set():
        name, arms = schedule[index % len(schedule)]
        for point, fault in arms:
            FAULTS.arm(point, fault)
        if OBS.enabled:
            OBS.action("soak.phase", phase=name)
        stop.wait(config.phase_seconds)
        for point, _ in arms:
            FAULTS.disarm(point)
        index += 1
    FAULTS.disarm_all()


# -- the run ------------------------------------------------------------------


def _force_breaker_cycle(service: DatabaseService,
                         report: SoakReport) -> None:
    """Deterministically produce one OPEN and one CLOSED transition if
    the random schedule did not: arm a hard outage, write until the
    breaker trips, disarm, write until it closes. The successful
    writes land in the committed log like any others."""
    if service.breaker.trips == 0:
        FAULTS.arm("wal.append.before", TransientError(times=10 ** 6))
        try:
            for attempt in range(20):
                try:
                    service.insert("c", "C0_ep", f"C1_ep{attempt}",
                                   deadline=5.0)
                except (PersistenceError, OSError, ServiceReadOnly):
                    pass
                if service.breaker.trips > 0:
                    break
            else:
                report.notes.append(
                    "note: forced outage never tripped the breaker"
                )
        finally:
            FAULTS.disarm("wal.append.before")
    if service.breaker.resets == 0:
        for attempt in range(50):
            try:
                service.insert("c", "C0_reset", f"C1_reset{attempt}",
                               deadline=5.0)
            except ServiceReadOnly:
                time.sleep(service.breaker.reset_timeout / 2)
                continue
            break
        else:
            report.notes.append(
                "note: breaker never closed after forced outage"
            )


def _force_slo_cycle(service: DatabaseService, report: SoakReport,
                     config: SoakConfig) -> None:
    """Deterministically breach and then clear the error-rate SLO:
    arm a hard storage outage and hammer writes (breaker rejections
    are errors burning the budget) until the monitor alerts, then
    disarm and feed successes until the fast window is healthy again.
    The successful writes land in the committed log like any others."""
    slo = service.slo
    raised_before = slo.raised
    FAULTS.arm("wal.append.before", TransientError(times=10 ** 6))
    budget = time.monotonic() + 10.0
    sequence = 0
    try:
        while time.monotonic() < budget:
            try:
                service.insert("c", "C0_slo", f"C1_slo{sequence}",
                               deadline=2.0)
            except (PersistenceError, OSError, ServiceReadOnly):
                pass
            sequence += 1
            slo.evaluate()
            if not slo.healthy:
                break
            time.sleep(0.01)
        else:
            report.slo_error = (
                "forced outage never raised an SLO alert "
                f"(alerts={list(slo.alerts)})"
            )
            return
    finally:
        FAULTS.disarm("wal.append.before")
    if slo.raised == raised_before:
        report.slo_error = "alert active but raise was never recorded"
        return
    # Clear: successes push the fast-window error rate back under the
    # threshold once the breach ages past the fast horizon.
    budget = time.monotonic() + 10.0 + config.slo_window
    while time.monotonic() < budget:
        try:
            service.insert("c", "C0_slo_ok", f"C1_slo_ok{sequence}",
                           deadline=2.0)
        except (PersistenceError, OSError, ServiceReadOnly):
            time.sleep(service.breaker.reset_timeout / 2)
        sequence += 1
        slo.evaluate()
        if slo.healthy:
            return
        time.sleep(0.02)
    report.slo_error = (
        f"SLO alert never cleared after recovery "
        f"(alerts={list(slo.alerts)})"
    )


def _scrape(service: DatabaseService, dest: Path, label: str,
            report: SoakReport) -> None:
    """Scrape ``/metrics`` and ``/health`` over real HTTP, validate
    the exposition, and keep the snapshots as CI artifacts."""
    import json
    import urllib.error
    import urllib.request

    url = service.endpoint.url if service.endpoint else None
    if url is None:
        report.scrape_error = f"{label}: endpoint not running"
        return
    try:
        with urllib.request.urlopen(url + "/metrics", timeout=5) as resp:
            body = resp.read().decode("utf-8")
        parse_prometheus(body)
        metrics_path = dest / f"metrics-{label}.prom"
        metrics_path.write_text(body, encoding="utf-8")
        report.scrape_paths.append(str(metrics_path))
        try:
            with urllib.request.urlopen(url + "/health",
                                        timeout=5) as resp:
                health_body = resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            # 503 == unhealthy-but-well-formed; still validated below.
            health_body = exc.read().decode("utf-8")
        verdict = json.loads(health_body)
        if not isinstance(verdict.get("healthy"), bool):
            raise ExpositionError(
                "health body lacks a boolean 'healthy' key"
            )
        health_path = dest / f"health-{label}.json"
        health_path.write_text(health_body, encoding="utf-8")
        report.scrape_paths.append(str(health_path))
    except (OSError, ValueError, ExpositionError) as exc:
        report.scrape_error = f"{label}: {exc}"


def _span_invariants(records, committed_count: int,
                     report: SoakReport) -> None:
    """Every committed op must be covered by a *complete*
    ``service.request`` span whose end record is stamped
    ``committed=True`` — and the stamped count must equal the
    committed log exactly."""
    starts: set[int] = set()
    ends: dict[int, dict] = {}
    for record in records:
        if record.name != "service.request":
            continue
        if record.kind == "span.start" and record.span_id is not None:
            starts.add(record.span_id)
        elif record.kind == "span.end" and record.span_id is not None:
            ends[record.span_id] = record.attrs
    report.request_spans = len(ends)
    report.committed_spans = sum(
        1 for attrs in ends.values()
        if attrs.get("committed") == "True"
    )
    dangling = starts - set(ends)
    if dangling:
        report.span_error = (
            f"{len(dangling)} request spans started but never ended"
        )
    elif report.committed_spans != committed_count:
        report.span_error = (
            f"{report.committed_spans} committed request spans for "
            f"{committed_count} committed ops"
        )


def run_soak(config: SoakConfig = SoakConfig()) -> SoakReport:
    """One full soak run; see the module docstring for the checks."""
    workdir = Path(config.workdir or
                   tempfile.mkdtemp(prefix="fdb-soak-"))
    workdir.mkdir(parents=True, exist_ok=True)
    jsonl = Path(config.jsonl or workdir / "soak-events.jsonl")
    snapshot_path = workdir / "snapshot.json"
    wal_path = workdir / "updates.wal"
    report = SoakReport(config=config, jsonl_path=str(jsonl))

    db = soak_database(config.seed, config.rows_per_function,
                       config.value_pool)
    # Baseline snapshot so strict recovery works even if no worker
    # checkpoint lands before a failure.
    persistence.save(db, snapshot_path, wal_applied=0)

    service = DatabaseService(
        db,
        log=wal_path,
        lock_timeout=config.lock_timeout,
        retry=RetryPolicy(
            max_attempts=4, base_delay=0.004, max_delay=0.05,
            jitter=0.004,
            retryable=RetryPolicy().retryable + (PersistenceError,),
        ),
        max_concurrent=config.max_concurrent,
        max_queue=config.max_queue,
        queue_timeout=config.queue_timeout,
        breaker=CircuitBreaker(failure_threshold=3, reset_timeout=0.1),
        objectives=(
            Objective(
                "soak-error-rate", ERROR_RATE,
                config.slo_error_threshold,
                window=config.slo_window,
                fast_fraction=config.slo_fast_fraction,
            ),
        ),
        seed=config.seed,
    )

    plans = [_plan_worker_ops(db, worker, config)
             for worker in range(config.threads)]

    sink = FileSink(jsonl)
    was_enabled = OBS.enabled
    OBS.events.add_sink(sink)
    OBS.enable()
    started = time.monotonic()
    counts: dict[str, int] = {}
    counts_lock = threading.Lock()
    harness_errors: list = []
    stop_controller = threading.Event()
    controller = None
    try:
        if config.faults:
            controller = threading.Thread(
                target=_controller, args=(config, stop_controller),
                name="soak-controller", daemon=True,
            )
            controller.start()
        workers = [
            threading.Thread(
                target=_run_worker,
                args=(service, plans[i], snapshot_path, counts,
                      counts_lock, harness_errors),
                name=f"soak-worker-{i}", daemon=True,
            )
            for i in range(config.threads)
        ]
        for worker in workers:
            worker.start()
        scrape_dir = Path(config.scrape_dir or workdir)
        scrape_dir.mkdir(parents=True, exist_ok=True)
        if config.serve_endpoint:
            service.serve_metrics()
            # Mid-soak scrape over real HTTP, with workers live: the
            # exposition must be well-formed while the registry is
            # being hammered, not just at rest.
            time.sleep(min(0.25, config.wall_clock_limit / 10))
            _scrape(service, scrape_dir, "mid", report)
        budget = started + config.wall_clock_limit
        for worker in workers:
            worker.join(max(budget - time.monotonic(), 0.1))
        report.hung_workers = sum(1 for w in workers if w.is_alive())
        stop_controller.set()
        if controller is not None:
            controller.join(config.phase_seconds * 2 + 1.0)
        FAULTS.disarm_all()
        if report.hung_workers == 0 and not harness_errors:
            _force_breaker_cycle(service, report)
            _force_slo_cycle(service, report, config)
        if config.serve_endpoint and report.scrape_error is None:
            _scrape(service, scrape_dir, "final", report)
        service.drain(timeout=10.0)
    finally:
        stop_controller.set()
        FAULTS.disarm_all()
        service.stop_metrics()
        if not was_enabled:
            OBS.disable()
        OBS.events.remove_sink(sink)
    report.duration = time.monotonic() - started
    report.counts = counts
    for exc in harness_errors:
        report.notes.append(f"harness error: {exc!r}")

    # -- verification --------------------------------------------------------
    committed = service.committed_ops()
    report.committed = len(committed)
    report.breaker_trips = service.breaker.trips
    report.breaker_resets = service.breaker.resets

    expected = soak_database(config.seed, config.rows_per_function,
                             config.value_pool)
    for op in committed:
        if isinstance(op, UpdateSequence):
            apply_sequence(expected, op)
        else:
            apply_update(expected, op)
    report.divergence = states_diff(expected, db)

    try:
        recovered = recover(snapshot_path, wal_path, policy="strict")
        report.recovery_divergence = states_diff(recovered.db, db)
    except (PersistenceError, OSError) as exc:
        report.recovery_divergence = f"recovery failed: {exc}"

    # Accounting: applied ops from workers plus the epilogue's writes
    # must equal the committed log plus worker reads/checkpoints
    # (which commit nothing); everything else committed nothing.
    stats = service.stats()
    records = read_jsonl(jsonl)
    report.breaker_opens = sum(
        1 for r in records if r.kind == "action" and r.name == "breaker.open"
    )
    report.breaker_closes = sum(
        1 for r in records
        if r.kind == "action" and r.name == "breaker.closed"
    )
    report.slo_raised = sum(
        1 for r in records
        if r.kind == "action" and r.name == "slo.alert_raised"
    )
    report.slo_cleared = sum(
        1 for r in records
        if r.kind == "action" and r.name == "slo.alert_cleared"
    )
    if report.hung_workers == 0:
        _span_invariants(records, len(committed), report)
        if report.slo_error is None and (
                report.slo_raised == 0 or report.slo_cleared == 0):
            report.slo_error = (
                f"event log shows {report.slo_raised} slo.alert_raised"
                f" / {report.slo_cleared} slo.alert_cleared actions"
            )
    total_ops = sum(counts.values())
    planned = sum(len(plan) for plan in plans)
    if report.hung_workers == 0 and total_ops != planned:
        report.accounting_error = (
            f"workers reported {total_ops} outcomes for {planned} "
            f"planned ops"
        )
    report.notes.append(
        f"service: {stats['retries']} retries, "
        f"{stats['deadlocks']} deadlocks, "
        f"{stats['lock_timeouts']} lock timeouts, "
        f"{stats['shed']} shed"
    )
    return report
