"""The functional database runtime: stored tables, three-valued facts,
and the side-effect-free update algorithms of Sections 3-4.

Layering (bottom-up):

* :mod:`repro.fdb.values` — data values and uniquely indexed nulls;
* :mod:`repro.fdb.logic` — the three-valued logic (true/ambiguous/false);
* :mod:`repro.fdb.facts` / :mod:`repro.fdb.table` — fact quadruples
  ``<x, y, T/A, NCL>`` and extensionally stored function tables;
* :mod:`repro.fdb.nc` / :mod:`repro.fdb.nvc` — negated conjunctions and
  null-valued chains, the two partial-information constructs;
* :mod:`repro.fdb.database` — the database object tying schema,
  tables, derived-function registry, NC registry and null generation;
* :mod:`repro.fdb.evaluate` — chain enumeration and the truth valuation
  of derived facts;
* :mod:`repro.fdb.updates` — the paper's update procedures;
* :mod:`repro.fdb.query` — a query facility over composition/inverse
  expressions;
* :mod:`repro.fdb.constraints`, :mod:`repro.fdb.ambiguity`,
  :mod:`repro.fdb.transaction`, :mod:`repro.fdb.persistence` —
  functionality constraints & null resolution, ambiguity metrics,
  atomic update sequences, and JSON snapshots.
"""

from __future__ import annotations

from repro.fdb.values import NullValue, NullFactory, is_null
from repro.fdb.logic import Truth
from repro.fdb.facts import Fact, FactRef
from repro.fdb.table import FunctionTable
from repro.fdb.nc import NegatedConjunction, NCRegistry
from repro.fdb.database import DerivedFunction, FunctionalDatabase
from repro.fdb.evaluate import (
    Chain,
    derived_extension,
    derived_image,
    iter_chains,
    truth_of,
    truth_of_derived,
)
from repro.fdb.updates import (
    Update,
    apply_update,
    base_delete,
    base_insert,
    delete,
    derived_delete,
    derived_insert,
    insert,
    replace,
)
from repro.fdb.query import Query, fn
from repro.fdb.journal import Journal
from repro.fdb.ambiguity import AmbiguityReport, measure
from repro.fdb.audit import audit_derivations, audit_insert_coverage
from repro.fdb.worlds import WorldsReport, analyze
from repro.fdb.integrity import (
    CardinalityConstraint,
    ConstraintSet,
    DomainConstraint,
    InclusionDependency,
)
from repro.fdb.constraints import resolve_nulls
from repro.fdb.updates import UpdateSequence, apply_sequence
from repro.fdb.wal import LoggedDatabase, UpdateLog, checkpoint, recover

__all__ = [
    "UpdateSequence",
    "apply_sequence",
    "LoggedDatabase",
    "UpdateLog",
    "checkpoint",
    "recover",
    "Journal",
    "AmbiguityReport",
    "measure",
    "audit_derivations",
    "audit_insert_coverage",
    "WorldsReport",
    "analyze",
    "ConstraintSet",
    "InclusionDependency",
    "DomainConstraint",
    "CardinalityConstraint",
    "resolve_nulls",
    "NullValue",
    "NullFactory",
    "is_null",
    "Truth",
    "Fact",
    "FactRef",
    "FunctionTable",
    "NegatedConjunction",
    "NCRegistry",
    "DerivedFunction",
    "FunctionalDatabase",
    "Chain",
    "iter_chains",
    "truth_of",
    "truth_of_derived",
    "derived_extension",
    "derived_image",
    "Update",
    "apply_update",
    "insert",
    "delete",
    "replace",
    "base_insert",
    "base_delete",
    "derived_insert",
    "derived_delete",
    "Query",
    "fn",
]
