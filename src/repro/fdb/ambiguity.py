"""Quantifying ambiguity.

Section 5: "In the presence of excessive ambiguous information it is
desirable to quantify the degree of ambiguity." This module provides
that quantification: counts of ambiguous stored facts, live NCs and
nulls in circulation, plus a per-derived-function breakdown of how much
of the visible extension is ambiguous.

The *degree of ambiguity* of a function is the fraction of its visible
facts that are ambiguous; the database-level degree aggregates base and
derived extensions. The FD-resolution ablation bench (E11) uses these
numbers to show how much ambiguity
:func:`repro.fdb.constraints.resolve_nulls` removes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fdb.database import FunctionalDatabase
from repro.fdb.evaluate import derived_extension
from repro.fdb.logic import Truth
from repro.fdb.values import is_null

__all__ = ["FunctionAmbiguity", "AmbiguityReport", "measure"]


@dataclass(frozen=True)
class FunctionAmbiguity:
    """Ambiguity breakdown of one function's visible extension."""

    name: str
    kind: str  # "base" | "derived"
    total_facts: int
    ambiguous_facts: int

    @property
    def degree(self) -> float:
        """Fraction of visible facts that are ambiguous (0.0 for an
        empty extension)."""
        if self.total_facts == 0:
            return 0.0
        return self.ambiguous_facts / self.total_facts

    def __str__(self) -> str:
        return (
            f"{self.name} ({self.kind}): {self.ambiguous_facts}/"
            f"{self.total_facts} ambiguous ({self.degree:.0%})"
        )


@dataclass(frozen=True)
class AmbiguityReport:
    """Database-wide ambiguity metrics."""

    functions: tuple[FunctionAmbiguity, ...]
    nc_count: int
    null_count: int

    @property
    def total_facts(self) -> int:
        return sum(f.total_facts for f in self.functions)

    @property
    def ambiguous_facts(self) -> int:
        return sum(f.ambiguous_facts for f in self.functions)

    @property
    def degree(self) -> float:
        if self.total_facts == 0:
            return 0.0
        return self.ambiguous_facts / self.total_facts

    def per_function(self, name: str) -> FunctionAmbiguity:
        for entry in self.functions:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def __str__(self) -> str:
        lines = [
            f"degree of ambiguity: {self.degree:.1%} "
            f"({self.ambiguous_facts}/{self.total_facts} facts); "
            f"{self.nc_count} NCs, {self.null_count} nulls"
        ]
        lines.extend(f"  {entry}" for entry in self.functions)
        return "\n".join(lines)


def measure(db: FunctionalDatabase) -> AmbiguityReport:
    """Measure the current degree of ambiguity of a database."""
    entries: list[FunctionAmbiguity] = []
    nulls: set = set()
    for name in db.base_names:
        table = db.table(name)
        ambiguous = 0
        for fact in table.facts():
            if fact.truth is Truth.AMBIGUOUS:
                ambiguous += 1
            if is_null(fact.x):
                nulls.add(fact.x)
            if is_null(fact.y):
                nulls.add(fact.y)
        entries.append(
            FunctionAmbiguity(name, "base", len(table), ambiguous)
        )
    for name in db.derived_names:
        extension = derived_extension(db, name)
        ambiguous = sum(
            1 for truth in extension.values() if truth is Truth.AMBIGUOUS
        )
        entries.append(
            FunctionAmbiguity(name, "derived", len(extension), ambiguous)
        )
    return AmbiguityReport(tuple(entries), len(db.ncs), len(nulls))
