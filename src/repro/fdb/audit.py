"""Auditing derivations against the stored instance.

The paper's introduction motivates "a design aid that assists in the
identification and *verification* of derived functions and their
derivations": a wrong derivation silently corrupts every answer the
derived function gives. This module provides the runtime half of that
verification — checking a live instance, not just the schema:

* **Derivation agreement** — a derived function with several confirmed
  derivations (grade via scores *and* via attendance, had the designer
  accepted both) is only consistent if the derivations agree on the
  current instance. :func:`audit_derivations` reports every pair of
  facts on which two derivations disagree (one derives it as true, the
  other cannot derive it at all).

* **Insert coverage** — logical implication (2) of Section 3.2 holds
  per derivation, so a derived fact asserted true should be witnessed
  by *every* derivation (``insert_mode='all'`` guarantees it;
  ``'primary'`` trades that away). :func:`audit_insert_coverage` finds
  true derived facts lacking a witness chain in some derivation.

Both audits are advisory: they return findings, never mutate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fdb.database import FunctionalDatabase
from repro.fdb.evaluate import _accumulate, iter_chains
from repro.fdb.logic import Truth
from repro.fdb.values import Value

__all__ = [
    "DerivationDisagreement",
    "CoverageGap",
    "audit_derivations",
    "audit_insert_coverage",
]


@dataclass(frozen=True)
class DerivationDisagreement:
    """Two derivations of one function disagree on one fact."""

    function: str
    pair: tuple[Value, Value]
    derives_it: str       # the derivation that yields the fact
    misses_it: str        # the derivation that cannot

    def __str__(self) -> str:
        x, y = self.pair
        return (
            f"{self.function}(<{x}, {y}>): derivable via "
            f"[{self.derives_it}] but not via [{self.misses_it}]"
        )


@dataclass(frozen=True)
class CoverageGap:
    """A true derived fact with no witness in some derivation."""

    function: str
    pair: tuple[Value, Value]
    missing_in: str

    def __str__(self) -> str:
        x, y = self.pair
        return (
            f"{self.function}(<{x}, {y}>) is true but has no chain "
            f"via [{self.missing_in}]"
        )


def _extension_of(db: FunctionalDatabase, derivation) -> dict:
    result: dict = {}
    _accumulate(db, iter_chains(db, derivation), result)
    return result


def audit_derivations(
    db: FunctionalDatabase,
    names: tuple[str, ...] | None = None,
) -> list[DerivationDisagreement]:
    """Find instance-level disagreements among a derived function's
    confirmed derivations.

    A disagreement is a pair one derivation derives (true or
    ambiguous) while another derives nothing for it at all. Agreement
    in *strength* is not required — a fact true via one derivation and
    ambiguous via another is consistent partial information.
    """
    findings: list[DerivationDisagreement] = []
    for name in names if names is not None else db.derived_names:
        derived = db.derived(name)
        if len(derived.derivations) < 2:
            continue
        extensions = [
            (str(derivation), _extension_of(db, derivation))
            for derivation in derived.derivations
        ]
        for index, (text, extension) in enumerate(extensions):
            for other_text, other in extensions:
                if other_text == text:
                    continue
                for pair in extension:
                    if pair not in other:
                        findings.append(DerivationDisagreement(
                            name, pair, text, other_text
                        ))
    return findings


def audit_insert_coverage(
    db: FunctionalDatabase,
    names: tuple[str, ...] | None = None,
) -> list[CoverageGap]:
    """Find true derived facts not witnessed by every derivation.

    Under ``insert_mode='all'`` this list stays empty for facts created
    by derived inserts; under ``'primary'`` each such insert leaves a
    gap per non-primary derivation — which is exactly what the E13
    ablation bench measures.
    """
    findings: list[CoverageGap] = []
    for name in names if names is not None else db.derived_names:
        derived = db.derived(name)
        if len(derived.derivations) < 2:
            continue
        true_pairs: set[tuple[Value, Value]] = set()
        for derivation in derived.derivations:
            for pair, truth in _extension_of(db, derivation).items():
                if truth is Truth.TRUE:
                    true_pairs.add(pair)
        for pair in sorted(true_pairs, key=str):
            for derivation in derived.derivations:
                witnessed = any(
                    chain.all_true and chain.all_exact
                    for chain in iter_chains(
                        db, derivation, pair[0], pair[1]
                    )
                )
                if not witnessed:
                    findings.append(CoverageGap(
                        name, pair, str(derivation)
                    ))
    return findings
