"""Type-functionality constraints and FD-driven null resolution.

Section 5 (future work the paper calls for): "It is clear that
functional dependencies also play an important role in resolving partial
information. In functional databases the type functional information
indicates relevant functional dependencies."

Two facilities:

* **Constraint checking** — a function declared *single-valued*
  (``...-one`` functionality) induces the functional dependency
  domain -> range; an *injective* one (``one-...``) induces
  range -> domain. :func:`violations` lists stored fact pairs breaking
  these FDs, and :func:`check_insert` vets a prospective base insert.
  Pairs involving a null are never definite violations — they are
  *unification opportunities*.

* **Null resolution** — when a single-valued function stores both
  ``<a, n1>`` and ``<a, b>``, the FD forces ``n1 = b``;
  :func:`resolve_nulls` finds such forced identifications and
  substitutes the null database-wide (Maier-style null unification,
  the paper's reference [12]), shrinking the ambiguity the NVCs
  introduced. When a substitution merges two stored facts, the merged
  fact is true if either was asserted true, and per the insert
  semantics a now-true fact's NCs are dismantled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConstraintViolation
from repro.fdb.database import FunctionalDatabase
from repro.fdb.facts import Fact
from repro.fdb.logic import Truth
from repro.fdb.table import FunctionTable
from repro.fdb.values import NullValue, Value, is_null

__all__ = [
    "Violation",
    "Substitution",
    "violations",
    "check_insert",
    "guarded_insert",
    "planned_unifications",
    "substitute_null",
    "resolve_nulls",
]


@dataclass(frozen=True)
class Violation:
    """Two stored facts jointly breaking a functionality FD."""

    function: str
    kind: str  # "single_valued" | "injective"
    first: tuple[Value, Value]
    second: tuple[Value, Value]

    def __str__(self) -> str:
        dependency = (
            "domain -> range" if self.kind == "single_valued"
            else "range -> domain"
        )
        return (
            f"{self.function} ({dependency}): {self.first} conflicts with "
            f"{self.second}"
        )


@dataclass(frozen=True)
class Substitution:
    """One forced identification ``null := value``."""

    function: str
    null: NullValue
    value: Value

    def __str__(self) -> str:
        return f"{self.null} := {self.value} (forced by {self.function})"


def _definite_conflict(a: Value, b: Value) -> bool:
    """Two values that are provably different: unequal and both
    non-null (a null could still turn out to equal anything)."""
    return a != b and not is_null(a) and not is_null(b)


def violations(db: FunctionalDatabase,
               names: tuple[str, ...] | None = None) -> list[Violation]:
    """All definite FD violations among stored facts."""
    found: list[Violation] = []
    for name in names if names is not None else db.base_names:
        definition = db.schema[name]
        table = db.table(name)
        if definition.functionality.is_single_valued:
            found.extend(_column_violations(name, table, "single_valued"))
        if definition.functionality.is_injective:
            found.extend(_column_violations(name, table, "injective"))
    return found


def _column_violations(name: str, table: FunctionTable,
                       kind: str) -> list[Violation]:
    groups: dict[Value, list[Fact]] = {}
    for fact in table.facts():
        key = fact.x if kind == "single_valued" else fact.y
        groups.setdefault(key, []).append(fact)
    found = []
    for facts in groups.values():
        for i, first in enumerate(facts):
            for second in facts[i + 1:]:
                left = first.y if kind == "single_valued" else first.x
                right = second.y if kind == "single_valued" else second.x
                if _definite_conflict(left, right):
                    found.append(
                        Violation(name, kind, first.pair, second.pair)
                    )
    return found


def check_insert(db: FunctionalDatabase, name: str,
                 x: Value, y: Value) -> None:
    """Raise :class:`ConstraintViolation` if base-inserting (x, y) would
    definitely break the function's declared functionality."""
    definition = db.schema[name]
    table = db.table(name)
    if table.get(x, y) is not None:
        return  # re-asserting an existing fact never violates anything
    if definition.functionality.is_single_valued:
        for other in table.facts_with_x(x):
            if _definite_conflict(other.y, y):
                raise ConstraintViolation(
                    f"{name} is single-valued but {name}({x}) is already "
                    f"{other.y}; cannot also be {y}"
                )
    if definition.functionality.is_injective:
        for other in table.facts_with_y(y):
            if _definite_conflict(other.x, x):
                raise ConstraintViolation(
                    f"{name} is injective but {y} is already the image of "
                    f"{other.x}; cannot also be that of {x}"
                )


def guarded_insert(db: FunctionalDatabase, name: str, x: Value, y: Value,
                   *, resolve: bool = False) -> list[Substitution]:
    """A base/derived insert preceded by a constraint check (for base
    functions) and optionally followed by null resolution. Returns the
    substitutions performed."""
    if db.is_base(name):
        check_insert(db, name, x, y)
    db.insert(name, x, y)
    if resolve:
        return resolve_nulls(db)
    return []


# -- null resolution ------------------------------------------------------------


def planned_unifications(db: FunctionalDatabase) -> list[Substitution]:
    """The identifications currently forced by functionality FDs.

    For a single-valued function storing ``<a, v1>`` and ``<a, v2>``
    with exactly one of v1, v2 a null, the null must equal the other
    value; two distinct nulls under the same ``a`` must equal each other
    (the lower index is kept). Injective functions force the symmetric
    rule on domain values. Only the first forced substitution per null
    is reported — apply and re-plan to reach the fixpoint, which is what
    :func:`resolve_nulls` does.
    """
    planned: list[Substitution] = []
    claimed: set[NullValue] = set()
    for name in db.base_names:
        definition = db.schema[name]
        table = db.table(name)
        if definition.functionality.is_single_valued:
            planned.extend(
                _plan_for_column(name, table, "single_valued", claimed)
            )
        if definition.functionality.is_injective:
            planned.extend(
                _plan_for_column(name, table, "injective", claimed)
            )
    return planned


def _plan_for_column(name: str, table: FunctionTable, kind: str,
                     claimed: set[NullValue]) -> list[Substitution]:
    groups: dict[Value, list[Value]] = {}
    for fact in table.facts():
        if kind == "single_valued":
            groups.setdefault(fact.x, []).append(fact.y)
        else:
            groups.setdefault(fact.y, []).append(fact.x)
    planned = []
    for values in groups.values():
        if len(values) < 2:
            continue
        non_nulls = [v for v in values if not is_null(v)]
        nulls = sorted(
            {v for v in values if is_null(v)}, key=lambda n: n.index
        )
        if not nulls:
            continue
        if non_nulls:
            # All nulls in the group must equal the (first) non-null.
            target = non_nulls[0]
            candidates = nulls
        else:
            # All nulls must coincide; keep the lowest index.
            target = nulls[0]
            candidates = nulls[1:]
        for null in candidates:
            if null not in claimed and null != target:
                claimed.add(null)
                planned.append(Substitution(name, null, target))
    return planned


def substitute_null(db: FunctionalDatabase, null: NullValue,
                    value: Value) -> None:
    """Replace ``null`` by ``value`` everywhere: in stored facts (merging
    rows that collide) and in NC member references."""
    to_dismantle: set[int] = set()
    for table in db.tables():
        for fact in list(table.facts()):
            if fact.x != null and fact.y != null:
                continue
            new_x = value if fact.x == null else fact.x
            new_y = value if fact.y == null else fact.y
            table.discard(fact.x, fact.y)
            existing = table.get(new_x, new_y)
            if existing is None:
                table.add(Fact(new_x, new_y, fact.truth, set(fact.ncl)))
                continue
            existing.ncl |= fact.ncl
            if fact.truth is Truth.TRUE or existing.truth is Truth.TRUE:
                existing.truth = Truth.TRUE
                to_dismantle |= existing.ncl
    db.ncs.rewrite_value(null, value)
    for index in sorted(to_dismantle):
        if index in db.ncs:
            db.ncs.dismantle(index)


def resolve_nulls(db: FunctionalDatabase,
                  max_rounds: int = 1000) -> list[Substitution]:
    """Apply forced identifications until none remain; returns all the
    substitutions performed, in order."""
    performed: list[Substitution] = []
    for _ in range(max_rounds):
        planned = planned_unifications(db)
        if not planned:
            return performed
        for substitution in planned:
            substitute_null(db, substitution.null, substitution.value)
            performed.append(substitution)
    raise ConstraintViolation(
        "null resolution did not converge "
        f"within {max_rounds} rounds"
    )
