"""The functional database: schema + stored instance + partial
information.

A :class:`FunctionalDatabase` ties together:

* the conceptual schema, split into **base** functions (each backed by an
  extensionally stored :class:`repro.fdb.table.FunctionTable`) and
  **derived** functions (each carrying one or more confirmed
  :class:`repro.core.derivation.Derivation` over base functions —
  "intensionally stored, computed using an algorithm");
* the :class:`repro.fdb.nc.NCRegistry` of live negated conjunctions;
* the :class:`repro.fdb.values.NullFactory` issuing uniquely indexed
  nulls.

It can be built directly, or from the outcome of an interactive design
session (:meth:`FunctionalDatabase.from_design`), closing the loop
between the two halves of the paper: the design aid decides *what* is
derived and *how*, and the update machinery keeps the instance
consistent with those derivations.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import (
    NotABaseFunctionError,
    NotADerivedFunctionError,
    SchemaError,
    UnknownFunctionError,
)
from repro.core.derivation import Derivation
from repro.core.design_aid import DesignOutcome
from repro.core.schema import FunctionDef, Schema
from repro.fdb.logic import Truth
from repro.fdb.nc import NCRegistry
from repro.fdb.table import FunctionTable
from repro.fdb.values import NullFactory, Value

__all__ = ["DerivedFunction", "FunctionalDatabase"]


@dataclass(frozen=True)
class DerivedFunction:
    """A derived function with its designer-confirmed derivations.

    ``derivations`` is non-empty; the first entry is the *primary*
    derivation (used when a single derivation must be chosen, e.g. for
    NVC creation in ``primary`` insert mode).
    """

    definition: FunctionDef
    derivations: tuple[Derivation, ...]

    def __post_init__(self) -> None:
        if not self.derivations:
            raise SchemaError(
                f"derived function {self.definition.name!r} needs at least "
                "one derivation"
            )
        for derivation in self.derivations:
            if not derivation.syntactically_equivalent_to(self.definition):
                raise SchemaError(
                    f"derivation {derivation} does not have the domain and "
                    f"range of {self.definition.name!r}"
                )

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def primary(self) -> Derivation:
        return self.derivations[0]

    def __str__(self) -> str:
        alts = "; ".join(str(d) for d in self.derivations)
        return f"{self.name} = {alts}"


class FunctionalDatabase:
    """Schema plus instance plus partial information.

    Parameters
    ----------
    insert_mode:
        ``"all"`` (default) makes a derived insert materialize an NVC
        for *every* confirmed derivation of the function — logical
        implication (2) of Section 3.2 holds per derivation, so each
        needs a witness chain. ``"primary"`` materializes only the first
        derivation (cheaper; the ablation benches compare the two).
    """

    def __init__(self, *, insert_mode: str = "all") -> None:
        if insert_mode not in ("all", "primary"):
            raise ValueError("insert_mode must be 'all' or 'primary'")
        self.insert_mode = insert_mode
        self.schema = Schema()
        self._tables: dict[str, FunctionTable] = {}
        self._derived: dict[str, DerivedFunction] = {}
        self.nulls = NullFactory()
        self.ncs = NCRegistry(self.table)
        # Bumped on every schema-shaping declaration so derived caches
        # (the service's cluster map, shard routing tables) can
        # invalidate on change instead of probing for staleness.
        self.schema_version = 0
        # One open transaction per database: the snapshot/restore model
        # covers the whole instance, so overlapping snapshots (from a
        # second thread, or a nested ``with db.transaction():``) would
        # silently clobber each other on rollback. Guarded state lives
        # on the db so every Transaction object sees the same owner.
        self._txn_guard = threading.Lock()
        self._txn_owner: int | None = None

    # -- schema construction ------------------------------------------------

    def declare_base(self, function: FunctionDef) -> FunctionTable:
        """Add a base function with an empty stored table."""
        self.schema.add(function)
        table = FunctionTable(function.name)
        self._tables[function.name] = table
        self.schema_version += 1
        return table

    def declare_derived(
        self,
        function: FunctionDef,
        derivations: Derivation | Iterable[Derivation],
    ) -> DerivedFunction:
        """Add a derived function with its confirmed derivation(s).

        Every derivation step must reference an already-declared *base*
        function: the paper derives from base functions only (a
        derivation mentioning a derived function can always be flattened
        by inlining first).
        """
        if isinstance(derivations, Derivation):
            derivations = (derivations,)
        derivations = tuple(derivations)
        for derivation in derivations:
            for step in derivation:
                name = step.function.name
                if name in self._derived:
                    raise SchemaError(
                        f"derivation of {function.name!r} references derived "
                        f"function {name!r}; inline its derivation first"
                    )
                if name not in self._tables:
                    raise SchemaError(
                        f"derivation of {function.name!r} references "
                        f"undeclared function {name!r}"
                    )
        self.schema.add(function)
        derived = DerivedFunction(function, derivations)
        self._derived[function.name] = derived
        self.schema_version += 1
        return derived

    @classmethod
    def from_design(cls, outcome: DesignOutcome, *,
                    insert_mode: str = "all") -> "FunctionalDatabase":
        """Build an empty database from a finished design session.

        Derived functions whose every confirmed derivation was rejected
        by the designer cannot be represented and raise
        :class:`SchemaError` — the designer must either confirm a
        derivation or re-classify the function as base.
        """
        db = cls(insert_mode=insert_mode)
        for function in outcome.base:
            db.declare_base(function)
        for function in outcome.derived:
            derivations = outcome.derivations.get(function.name, ())
            if not derivations:
                raise SchemaError(
                    f"derived function {function.name!r} has no confirmed "
                    "derivation"
                )
            db.declare_derived(function, derivations)
        return db

    # -- classification ------------------------------------------------------

    def is_base(self, name: str) -> bool:
        self._check_known(name)
        return name in self._tables

    def is_derived(self, name: str) -> bool:
        self._check_known(name)
        return name in self._derived

    def _check_known(self, name: str) -> None:
        if name not in self.schema:
            raise UnknownFunctionError(name)

    @property
    def base_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    @property
    def derived_names(self) -> tuple[str, ...]:
        return tuple(self._derived)

    # -- access ------------------------------------------------------------------

    def table(self, name: str) -> FunctionTable:
        """The stored table of a base function."""
        try:
            return self._tables[name]
        except KeyError:
            if name in self._derived:
                raise NotABaseFunctionError(name) from None
            raise UnknownFunctionError(name) from None

    def derived(self, name: str) -> DerivedFunction:
        try:
            return self._derived[name]
        except KeyError:
            if name in self._tables:
                raise NotADerivedFunctionError(name) from None
            raise UnknownFunctionError(name) from None

    def tables(self) -> Iterator[FunctionTable]:
        return iter(tuple(self._tables.values()))

    def derived_functions(self) -> Iterator[DerivedFunction]:
        return iter(tuple(self._derived.values()))

    # -- instance loading -----------------------------------------------------------

    def load(self, name: str,
             pairs: Iterable[tuple[Value, Value]]) -> None:
        """Bulk-load true facts into a base table (initial instance)."""
        table = self.table(name)
        for x, y in pairs:
            table.add_pair(x, y, Truth.TRUE)

    def load_instance(
        self, instance: dict[str, Iterable[tuple[Value, Value]]]
    ) -> None:
        for name, pairs in instance.items():
            self.load(name, pairs)

    # -- convenience update/query front door -------------------------------------
    #
    # The real work lives in repro.fdb.updates / repro.fdb.evaluate; these
    # methods are the public one-stop API. Imports are local to avoid an
    # import cycle (updates and evaluate import this module's types).

    def insert(self, name: str, x: Value, y: Value) -> None:
        """INS(f, <x, y>), dispatching on base vs derived."""
        from repro.fdb import updates

        updates.insert(self, name, x, y)

    def delete(self, name: str, x: Value, y: Value) -> None:
        """DEL(f, <x, y>), dispatching on base vs derived."""
        from repro.fdb import updates

        updates.delete(self, name, x, y)

    def replace(self, name: str, old: tuple[Value, Value],
                new: tuple[Value, Value]) -> None:
        """REP(f, <x1, y1>, <x2, y2>): an atomic delete-insert pair."""
        from repro.fdb import updates

        updates.replace(self, name, old, new)

    def truth_of(self, name: str, x: Value, y: Value) -> Truth:
        """Truth value of the fact ``name(x) = y`` under Section 3.2."""
        from repro.fdb import evaluate

        return evaluate.truth_of(self, name, x, y)

    def extension(self, name: str) -> dict[tuple[Value, Value], Truth]:
        """The visible extension of a function: stored facts for base
        functions, derivable facts (true or ambiguous) for derived
        ones."""
        from repro.fdb import evaluate

        if self.is_base(name):
            return {
                fact.pair: fact.truth for fact in self.table(name).facts()
            }
        return evaluate.derived_extension(self, name)

    def transaction(self):
        """An atomic update scope; see :mod:`repro.fdb.transaction`."""
        from repro.fdb.transaction import Transaction

        return Transaction(self)

    def extent(self, type_name: str) -> tuple[Value, ...]:
        """The observed extent of an object type: every non-null value
        appearing in a column of that type, in first-appearance order.

        Functional data models attach entities to types; this library
        stores only facts, so the extent is the set of entities the
        database has ever mentioned — what a Daplex ``for each`` loop
        iterates (see the surface language's for-each statement).
        """
        from repro.fdb.values import is_null

        seen: dict[Value, None] = {}
        for name in self.base_names:
            definition = self.schema[name]
            table = self._tables[name]
            if definition.domain.name == type_name:
                for fact in table.facts():
                    if not is_null(fact.x):
                        seen.setdefault(fact.x)
            if definition.range.name == type_name:
                for fact in table.facts():
                    if not is_null(fact.y):
                        seen.setdefault(fact.y)
        return tuple(seen)

    # -- statistics --------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Fact / NC / null bookkeeping counts (used by the metrics and
        the benches)."""
        stored = sum(len(t) for t in self._tables.values())
        ambiguous = sum(
            1
            for t in self._tables.values()
            for fact in t.facts()
            if fact.truth is Truth.AMBIGUOUS
        )
        return {
            "stored_facts": stored,
            "ambiguous_facts": ambiguous,
            "true_facts": stored - ambiguous,
            "ncs": len(self.ncs),
            "next_null_index": self.nulls.next_index,
        }

    def stats(self, *, wal=None) -> dict:
        """Instance counts merged with the process-wide observability
        snapshot (metrics, profile, flags) — what the REPL's ``stats``
        command and the bench JSON exports print. Import is local to
        avoid a cycle (obs.export has no fdb imports, but keeping the
        front door lazy matches the update/query methods above).

        ``wal`` (an :class:`repro.fdb.wal.UpdateLog`, optional) folds
        that log's :meth:`health <repro.fdb.wal.UpdateLog.health>`
        verdict — applied sequence, term, torn-tail flag, checksum
        failures — into the payload under ``"wal"``."""
        from repro.obs.hooks import OBS

        snapshot = OBS.snapshot()
        snapshot["instance"] = self.counts()
        if wal is not None:
            snapshot["wal"] = wal.health()
        return snapshot

    def __str__(self) -> str:
        lines = [f"FunctionalDatabase ({len(self._tables)} base, "
                 f"{len(self._derived)} derived)"]
        for table in self._tables.values():
            lines.append(str(table))
        for derived in self._derived.values():
            lines.append(f"{derived} (derived)")
        return "\n".join(lines)
