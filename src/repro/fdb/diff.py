"""Diffing database states.

Updates on derived functions have deliberately indirect effects —
flags flip, NCs appear, nulls materialize. A designer inspecting "what
did that update actually do?" wants the delta, not two full table
dumps. :func:`diff_snapshots` compares two persistence snapshots (the
format the journal already stores), reporting:

* facts added / removed, per function;
* facts whose truth flag changed (T -> A or A -> T);
* negated conjunctions created / dismantled.

:meth:`repro.fdb.journal.Journal` exposes this as
``change_of(index)`` / ``last_change()`` — and the surface language as
the ``changes`` statement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fdb.persistence import _decode_value

__all__ = ["StateDiff", "diff_snapshots"]


@dataclass(frozen=True)
class StateDiff:
    """The delta between two instance states."""

    added: tuple[tuple[str, tuple, str], ...]          # (fn, pair, flag)
    removed: tuple[tuple[str, tuple, str], ...]
    flag_changes: tuple[tuple[str, tuple, str, str], ...]  # old, new
    ncs_created: tuple[str, ...]
    ncs_dismantled: tuple[str, ...]

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.flag_changes
                    or self.ncs_created or self.ncs_dismantled)

    def describe(self) -> str:
        if self.is_empty:
            return "(no changes)"
        lines = []
        for function, pair, flag in self.added:
            lines.append(f"+ <{function}, {pair[0]}, {pair[1]}> [{flag}]")
        for function, pair, flag in self.removed:
            lines.append(f"- <{function}, {pair[0]}, {pair[1]}> [{flag}]")
        for function, pair, old, new in self.flag_changes:
            lines.append(
                f"~ <{function}, {pair[0]}, {pair[1]}> {old} -> {new}"
            )
        for nc in self.ncs_created:
            lines.append(f"+ NC {nc}")
        for nc in self.ncs_dismantled:
            lines.append(f"- NC {nc}")
        return "\n".join(lines)


def _facts_of(snapshot: dict) -> dict[tuple[str, tuple], str]:
    facts: dict[tuple[str, tuple], str] = {}
    for entry in snapshot["base"]:
        function = entry["definition"]["name"]
        for fact in entry["facts"]:
            pair = (
                _decode_value(fact["x"]), _decode_value(fact["y"])
            )
            facts[(function, pair)] = fact["flag"]
    return facts


def _ncs_of(snapshot: dict) -> dict[int, str]:
    result = {}
    for entry in snapshot["ncs"]:
        members = " AND ".join(
            f"<{m['function']}, {_decode_value(m['x'])}, "
            f"{_decode_value(m['y'])}>"
            for m in entry["members"]
        )
        result[entry["index"]] = f"g{entry['index']}: NOT({members})"
    return result


def diff_snapshots(before: dict, after: dict) -> StateDiff:
    """Compare two :func:`repro.fdb.persistence.to_dict` snapshots."""
    old_facts = _facts_of(before)
    new_facts = _facts_of(after)
    added = tuple(
        (function, pair, flag)
        for (function, pair), flag in new_facts.items()
        if (function, pair) not in old_facts
    )
    removed = tuple(
        (function, pair, flag)
        for (function, pair), flag in old_facts.items()
        if (function, pair) not in new_facts
    )
    flag_changes = tuple(
        (function, pair, old_flag, new_facts[(function, pair)])
        for (function, pair), old_flag in old_facts.items()
        if (function, pair) in new_facts
        and new_facts[(function, pair)] != old_flag
    )
    old_ncs = _ncs_of(before)
    new_ncs = _ncs_of(after)
    created = tuple(
        text for index, text in new_ncs.items() if index not in old_ncs
    )
    dismantled = tuple(
        text for index, text in old_ncs.items() if index not in new_ncs
    )
    return StateDiff(added, removed, flag_changes, created, dismantled)
