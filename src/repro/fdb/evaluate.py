"""Chain enumeration and truth valuation of derived facts.

Section 3.2 defines how the truth value of a derived fact follows from
the stored base facts:

    "A derived fact can be obtained by composing a chain of base facts
    if adjacent pairs of facts in the chain match. ... A chain of base
    facts matches exactly if each adjacent pair of facts match exactly.
    A derived fact is true if it is obtained from a chain of true base
    facts which matches exactly. It is ambiguous if it can be obtained
    from a chain of base facts which is not a superset of a NC and each
    chain of base facts from which it can be obtained either does not
    match exactly or contains at least one ambiguous fact. A derived
    fact is false if it is neither true nor ambiguous."

A :class:`Chain` is one sequence of stored facts, one per derivation
step (facts of inverted steps are traversed range-to-domain). The fact
*obtained* from a chain has the chain's endpoint values; endpoints are
therefore matched exactly, while adjacent interior values may match
exactly or ambiguously (through nulls).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

from repro import cancel
from repro.core.derivation import Derivation, Op
from repro.fdb.database import FunctionalDatabase
from repro.fdb.facts import Fact, FactRef
from repro.fdb.logic import Truth
from repro.fdb.values import Value
from repro.obs.hooks import OBS

__all__ = [
    "Chain",
    "iter_chains",
    "truth_of",
    "truth_of_derived",
    "derived_extension",
    "derived_image",
]


@dataclass(frozen=True)
class Chain:
    """One chain of stored base facts realizing a derivation.

    ``facts[i]`` comes from the table of ``derivation.steps[i]``'s
    function; inverted steps use the fact backwards. ``all_exact``
    records whether every adjacent pair matched exactly.
    """

    derivation: Derivation
    facts: tuple[Fact, ...]
    all_exact: bool

    @property
    def start(self) -> Value:
        step = self.derivation.steps[0]
        fact = self.facts[0]
        return fact.y if step.op is Op.INVERSE else fact.x

    @property
    def end(self) -> Value:
        step = self.derivation.steps[-1]
        fact = self.facts[-1]
        return fact.x if step.op is Op.INVERSE else fact.y

    @property
    def pair(self) -> tuple[Value, Value]:
        """The derived fact this chain obtains."""
        return (self.start, self.end)

    @property
    def all_true(self) -> bool:
        return all(fact.truth is Truth.TRUE for fact in self.facts)

    def conjuncts(self) -> list[tuple[str, Fact]]:
        """(function name, fact) pairs — the Conj-list for create-NC."""
        return [
            (step.function.name, fact)
            for step, fact in zip(self.derivation.steps, self.facts)
        ]

    @property
    def refs(self) -> frozenset[FactRef]:
        return frozenset(
            fact.ref(step.function.name)
            for step, fact in zip(self.derivation.steps, self.facts)
        )

    def is_known_false(self, db: FunctionalDatabase) -> bool:
        """Whether this chain's conjunction is already negated: its fact
        set is a superset of some live NC."""
        candidates: set[int] = set()
        for fact in self.facts:
            candidates |= fact.ncl
        if not candidates:
            return False
        return db.ncs.subset_of_some_nc(self.refs, candidates)

    def supports(self, db: FunctionalDatabase) -> Truth:
        """What this single chain contributes to its derived fact."""
        if self.all_exact and self.all_true:
            return Truth.TRUE
        if self.is_known_false(db):
            return Truth.FALSE
        return Truth.AMBIGUOUS

    def __str__(self) -> str:
        parts = [
            f"<{step.function.name}, {fact.x}, {fact.y}>"
            for step, fact in zip(self.derivation.steps, self.facts)
        ]
        return " . ".join(parts)


def iter_chains(
    db: FunctionalDatabase,
    derivation: Derivation,
    x: Value | None = None,
    y: Value | None = None,
    *,
    allow_ambiguous: bool = True,
) -> Iterator[Chain]:
    """Enumerate chains of stored facts realizing ``derivation``.

    ``x``/``y`` fix the chain endpoints (matched exactly, per the
    definition of the obtained fact). ``allow_ambiguous=False``
    restricts to exactly-matching chains — the ones whose conjunction
    implies the derived fact, which is what ``derived-delete`` negates.
    """
    steps = derivation.steps

    def candidates(index: int, current: Value | None) -> Iterator[tuple[Fact, bool]]:
        step = steps[index]
        table = db.table(step.function.name)
        inverse = step.op is Op.INVERSE
        if index == 0:
            if x is None:
                for fact in table.facts():
                    yield fact, True
            elif inverse:
                for fact in table.facts_with_y(x):
                    yield fact, True
            else:
                for fact in table.facts_with_x(x):
                    yield fact, True
            return
        exact, ambiguous = (
            table.matching_y(current) if inverse else table.matching_x(current)
        )
        for fact in exact:
            yield fact, True
        if allow_ambiguous:
            for fact in ambiguous:
                yield fact, False

    def extend(
        index: int,
        facts: tuple[Fact, ...],
        current: Value | None,
        all_exact: bool,
    ) -> Iterator[Chain]:
        if index == len(steps):
            yield Chain(derivation, facts, all_exact)
            return
        step = steps[index]
        inverse = step.op is Op.INVERSE
        last = index == len(steps) - 1
        for fact, exact_match in candidates(index, current):
            effective_end = fact.x if inverse else fact.y
            if last and y is not None and effective_end != y:
                continue
            yield from extend(
                index + 1,
                facts + (fact,),
                effective_end,
                all_exact and exact_match,
            )

    if not OBS.enabled:
        if not cancel.cancellation_active():
            # Fast path byte-identical to the pre-service engine: no
            # per-chain work when neither OBS nor a deadline is live.
            yield from extend(0, (), None, True)
            return
        for chain in extend(0, (), None, True):
            cancel.checkpoint()
            yield chain
        return
    # Instrumented path: count enumerations and every chain yielded.
    # Per-yield counting stays correct when a consumer abandons the
    # generator early (exists_nvc stops at the first NVC).
    OBS.inc("fdb.chains.enumerations")
    for chain in extend(0, (), None, True):
        cancel.checkpoint()
        OBS.inc("fdb.chains.enumerated")
        yield chain


def truth_of_derived(
    db: FunctionalDatabase, name: str, x: Value, y: Value
) -> Truth:
    """Section 3.2 truth valuation of the derived fact ``name(x) = y``,
    considering every confirmed derivation of the function."""
    obs_on = OBS.enabled  # hoisted: one global+attr load, not per chain
    if obs_on:
        OBS.inc("fdb.evaluate.truth_checks")
    derived = db.derived(name)
    ambiguous_found = False
    for derivation in derived.derivations:
        for chain in iter_chains(db, derivation, x, y):
            support = chain.supports(db)
            if obs_on:
                OBS.event("chain.evaluated", chain=str(chain),
                          verdict=support.value)
            if support is Truth.TRUE:
                return Truth.TRUE
            if support is Truth.AMBIGUOUS:
                ambiguous_found = True
    return Truth.AMBIGUOUS if ambiguous_found else Truth.FALSE


def truth_of(db: FunctionalDatabase, name: str, x: Value, y: Value) -> Truth:
    """Truth of any fact: stored flag (or FALSE) for base functions,
    chain valuation for derived ones."""
    if db.is_base(name):
        return db.table(name).truth_of(x, y)
    return truth_of_derived(db, name, x, y)


def _accumulate(
    db: FunctionalDatabase,
    chains: Iterator[Chain],
    into: dict[tuple[Value, Value], Truth],
    label: str = "-",
) -> None:
    """Fold chains into a pair -> strongest-truth map.

    ``label`` names the derivation being evaluated; when observability
    is on, the walk is timed into the profiler under
    ``evaluate.accumulate`` so per-derivation evaluation cost is
    attributable.
    """
    obs_on = OBS.enabled
    if obs_on:
        OBS.inc("fdb.evaluate.accumulations")
        started = time.perf_counter()
    for chain in chains:
        support = chain.supports(db)
        if support is Truth.FALSE:
            continue
        pair = chain.pair
        current = into.get(pair, Truth.FALSE)
        if support > current:
            into[pair] = support
    if obs_on:
        OBS.profiler.record(
            "evaluate.accumulate", label, time.perf_counter() - started
        )


def derived_extension(
    db: FunctionalDatabase, name: str
) -> dict[tuple[Value, Value], Truth]:
    """All derivable facts of a derived function with their truth
    values (false facts are absent — they are simply not derivable).

    This is what the paper prints as the Pupil column of the Section 4.2
    tables, ambiguous facts starred.
    """
    derived = db.derived(name)
    result: dict[tuple[Value, Value], Truth] = {}
    for derivation in derived.derivations:
        _accumulate(db, iter_chains(db, derivation), result,
                    label=str(derivation))
    return result


def derived_image(
    db: FunctionalDatabase, name: str, x: Value
) -> dict[Value, Truth]:
    """Range values of ``x`` under a derived function, with truths."""
    derived = db.derived(name)
    pairs: dict[tuple[Value, Value], Truth] = {}
    for derivation in derived.derivations:
        _accumulate(db, iter_chains(db, derivation, x=x), pairs,
                    label=str(derivation))
    return {y: truth for (_, y), truth in pairs.items()}
