"""Explaining truth verdicts.

Three-valued answers invite "why?": why is ``pupil(euclid, bill)``
suddenly ambiguous, and which update would resolve it? This module
produces the proof-style evidence behind a verdict:

* for a **base** fact: its stored quadruple (or its absence);
* for a **derived** fact: every chain that could derive it, each
  annotated with its match quality, its members' truth flags, and —
  when the chain is disqualified — the negated conjunction it
  contains; plus the verdict each chain individually supports.

The explanation mirrors :mod:`repro.fdb.evaluate` exactly (same chain
enumeration, same disqualification rule), so the printed evidence and
``truth_of`` can never disagree — a property the tests assert.

The second half of the module explains *cost* rather than truth:
:func:`cost_breakdown` prices a set of derivations hop by hop (stored
rows, worst-case fan-out, cumulative chain estimate), which is what
the slowlog (:mod:`repro.obs.slowlog`) attaches to over-threshold
queries and updates. The detail is built lazily — only for spans that
actually crossed their threshold — so the fast path never pays for
the diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.derivation import Derivation, Op
from repro.fdb.database import FunctionalDatabase
from repro.fdb.evaluate import Chain, iter_chains, truth_of
from repro.fdb.logic import Truth
from repro.fdb.values import Value

__all__ = ["ChainEvidence", "Explanation", "explain",
           "hop_costs", "cost_breakdown", "derived_breakdown"]


@dataclass(frozen=True)
class ChainEvidence:
    """One chain and what it contributes to the verdict."""

    chain: Chain
    supports: Truth
    negated_by: tuple[int, ...]  # NC indices disqualifying the chain

    def describe(self) -> str:
        facts = []
        for function, fact in self.chain.conjuncts():
            facts.append(f"<{function}, {fact.x}, {fact.y}>[{fact.flag}]")
        text = " . ".join(facts)
        quality = "exact" if self.chain.all_exact else "ambiguous match"
        if self.supports is Truth.FALSE:
            ncs = ", ".join(f"g{d}" for d in self.negated_by)
            return f"{text}  ({quality}; negated by {ncs})"
        return f"{text}  ({quality}; supports {self.supports})"


@dataclass(frozen=True)
class Explanation:
    """Why a fact has its truth value."""

    function: str
    x: Value
    y: Value
    verdict: Truth
    kind: str  # "base" | "derived"
    stored_flag: str | None            # base facts only
    chains: tuple[ChainEvidence, ...]  # derived facts only

    def describe(self) -> str:
        head = f"{self.function}({self.x}) = {self.y}: {self.verdict}"
        lines = [head]
        if self.kind == "base":
            if self.stored_flag is None:
                lines.append("  not stored (absence means false)")
            elif self.stored_flag == "T":
                lines.append("  stored with flag T (asserted true)")
            else:
                lines.append(
                    "  stored with flag A (member of a negated "
                    "conjunction, or left ambiguous by one)"
                )
            return "\n".join(lines)
        if not self.chains:
            lines.append("  no chain derives it")
            return "\n".join(lines)
        for evidence in self.chains:
            lines.append(f"  {evidence.describe()}")
        return "\n".join(lines)


def _chain_evidence(db: FunctionalDatabase, chain: Chain) -> ChainEvidence:
    supports = chain.supports(db)
    negated_by: tuple[int, ...] = ()
    if supports is Truth.FALSE:
        refs = chain.refs
        candidates = sorted(
            {index for fact in chain.facts for index in fact.ncl}
        )
        negated_by = tuple(
            index for index in candidates
            if index in db.ncs and db.ncs.get(index).member_set <= refs
        )
    return ChainEvidence(chain, supports, negated_by)


def explain(db: FunctionalDatabase, function: str, x: Value,
            y: Value) -> Explanation:
    """Build the evidence behind ``truth_of(db, function, x, y)``."""
    verdict = truth_of(db, function, x, y)
    if db.is_base(function):
        fact = db.table(function).get(x, y)
        return Explanation(
            function, x, y, verdict, "base",
            fact.flag if fact is not None else None, (),
        )
    derived = db.derived(function)
    chains = tuple(
        _chain_evidence(db, chain)
        for derivation in derived.derivations
        for chain in iter_chains(db, derivation, x, y)
    )
    return Explanation(function, x, y, verdict, "derived", None, chains)


# -- cost breakdowns (slow-path attribution) ----------------------------------


def _branching(db: FunctionalDatabase, step) -> int:
    """Worst-case per-input fan-out of one derivation step.

    Chain enumeration branches at each hop by the size of the stored
    image (identity hops) or preimage (inverse hops); the worst single
    input bounds the branching factor. Bounded below by 1 so the
    cumulative product never collapses to zero on empty tables.
    """
    table = db.table(step.function.name)
    if step.op is Op.INVERSE:
        widths = [len(table.preimage(y))
                  for y in {fact.y for fact in table.facts()}]
    else:
        widths = [len(table.image(x))
                  for x in {fact.x for fact in table.facts()}]
    return max(widths, default=1) or 1


def hop_costs(db: FunctionalDatabase,
              derivation: Derivation) -> list[dict]:
    """One dict per hop of ``derivation``: function, role, stored rows,
    per-hop fan-out and cumulative estimated chain count."""
    hops: list[dict] = []
    cumulative = 1
    for position, step in enumerate(derivation.steps, start=1):
        table = db.table(step.function.name)
        fanout = _branching(db, step)
        cumulative *= fanout
        hops.append({
            "hop": position,
            "function": step.function.name,
            "role": str(step.op),
            "rows": len(table),
            "fanout": fanout,
            "est_cost": cumulative,
        })
    return hops


def cost_breakdown(db: FunctionalDatabase,
                   derivations: Iterable[Derivation]) -> dict:
    """The slowlog ``detail`` payload for a set of derivations.

    ``chains`` lists the derivations as text; ``hops`` flattens every
    hop of every derivation, each tagged with its derivation, so one
    table renders the lot; ``est_chains`` sums the worst-case chain
    count across derivations.
    """
    chains: list[str] = []
    hops: list[dict] = []
    est_chains = 0
    for derivation in derivations:
        rendered = str(derivation)
        chains.append(rendered)
        derivation_hops = hop_costs(db, derivation)
        for hop in derivation_hops:
            hop["derivation"] = rendered
        hops.extend(derivation_hops)
        if derivation_hops:
            est_chains += derivation_hops[-1]["est_cost"]
    return {"chains": chains, "hops": hops, "est_chains": est_chains}


def derived_breakdown(db: FunctionalDatabase, name: str) -> dict:
    """Breakdown over every confirmed derivation of derived function
    ``name``; a base function is a single one-hop chain of itself."""
    if db.is_derived(name):
        return cost_breakdown(db, db.derived(name).derivations)
    table = db.table(name)
    return {
        "chains": [name],
        "hops": [{"hop": 1, "function": name, "role": "base",
                  "rows": len(table), "fanout": 1, "est_cost": 1,
                  "derivation": name}],
        "est_chains": 1,
    }
