"""Explaining truth verdicts.

Three-valued answers invite "why?": why is ``pupil(euclid, bill)``
suddenly ambiguous, and which update would resolve it? This module
produces the proof-style evidence behind a verdict:

* for a **base** fact: its stored quadruple (or its absence);
* for a **derived** fact: every chain that could derive it, each
  annotated with its match quality, its members' truth flags, and —
  when the chain is disqualified — the negated conjunction it
  contains; plus the verdict each chain individually supports.

The explanation mirrors :mod:`repro.fdb.evaluate` exactly (same chain
enumeration, same disqualification rule), so the printed evidence and
``truth_of`` can never disagree — a property the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fdb.database import FunctionalDatabase
from repro.fdb.evaluate import Chain, iter_chains, truth_of
from repro.fdb.logic import Truth
from repro.fdb.values import Value

__all__ = ["ChainEvidence", "Explanation", "explain"]


@dataclass(frozen=True)
class ChainEvidence:
    """One chain and what it contributes to the verdict."""

    chain: Chain
    supports: Truth
    negated_by: tuple[int, ...]  # NC indices disqualifying the chain

    def describe(self) -> str:
        facts = []
        for function, fact in self.chain.conjuncts():
            facts.append(f"<{function}, {fact.x}, {fact.y}>[{fact.flag}]")
        text = " . ".join(facts)
        quality = "exact" if self.chain.all_exact else "ambiguous match"
        if self.supports is Truth.FALSE:
            ncs = ", ".join(f"g{d}" for d in self.negated_by)
            return f"{text}  ({quality}; negated by {ncs})"
        return f"{text}  ({quality}; supports {self.supports})"


@dataclass(frozen=True)
class Explanation:
    """Why a fact has its truth value."""

    function: str
    x: Value
    y: Value
    verdict: Truth
    kind: str  # "base" | "derived"
    stored_flag: str | None            # base facts only
    chains: tuple[ChainEvidence, ...]  # derived facts only

    def describe(self) -> str:
        head = f"{self.function}({self.x}) = {self.y}: {self.verdict}"
        lines = [head]
        if self.kind == "base":
            if self.stored_flag is None:
                lines.append("  not stored (absence means false)")
            elif self.stored_flag == "T":
                lines.append("  stored with flag T (asserted true)")
            else:
                lines.append(
                    "  stored with flag A (member of a negated "
                    "conjunction, or left ambiguous by one)"
                )
            return "\n".join(lines)
        if not self.chains:
            lines.append("  no chain derives it")
            return "\n".join(lines)
        for evidence in self.chains:
            lines.append(f"  {evidence.describe()}")
        return "\n".join(lines)


def _chain_evidence(db: FunctionalDatabase, chain: Chain) -> ChainEvidence:
    supports = chain.supports(db)
    negated_by: tuple[int, ...] = ()
    if supports is Truth.FALSE:
        refs = chain.refs
        candidates = sorted(
            {index for fact in chain.facts for index in fact.ncl}
        )
        negated_by = tuple(
            index for index in candidates
            if index in db.ncs and db.ncs.get(index).member_set <= refs
        )
    return ChainEvidence(chain, supports, negated_by)


def explain(db: FunctionalDatabase, function: str, x: Value,
            y: Value) -> Explanation:
    """Build the evidence behind ``truth_of(db, function, x, y)``."""
    verdict = truth_of(db, function, x, y)
    if db.is_base(function):
        fact = db.table(function).get(x, y)
        return Explanation(
            function, x, y, verdict, "base",
            fact.flag if fact is not None else None, (),
        )
    derived = db.derived(function)
    chains = tuple(
        _chain_evidence(db, chain)
        for derivation in derived.derivations
        for chain in iter_chains(db, derivation, x, y)
    )
    return Explanation(function, x, y, verdict, "derived", None, chains)
