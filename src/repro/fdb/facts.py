"""Fact quadruples.

Section 4: "a fact f(a) = b along with the relevant information is
stored in the form of a quadruple <a, b, T/A, NCL> in the table
corresponding to f". :class:`Fact` is that quadruple; the pair (a, b)
is immutable while the truth flag and the NCL (the set of indices of
the negated conjunctions the fact belongs to) mutate under updates.

:class:`FactRef` names a fact globally — function name plus pair — and
is what :class:`repro.fdb.nc.NegatedConjunction` stores, giving the
NC -> fact half of the dual traversal structure (the fact's NCL is the
other half).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fdb.logic import Truth
from repro.fdb.values import Value

__all__ = ["Fact", "FactRef"]


@dataclass(frozen=True, slots=True)
class FactRef:
    """A global name for a base fact: ``<function, x, y>``.

    This is the paper's fact triple notation ``<f, a, b>`` denoting
    ``f(a) = b``.
    """

    function: str
    x: Value
    y: Value

    @property
    def pair(self) -> tuple[Value, Value]:
        return (self.x, self.y)

    def __str__(self) -> str:
        return f"<{self.function}, {self.x}, {self.y}>"


@dataclass(slots=True, eq=False)
class Fact:
    """A stored fact quadruple ``<x, y, T/A, NCL>``.

    Identity is by object (``eq=False``): the same pair may exist in
    different tables, and a fact's mutable state must not leak into
    hashing. Lookups go through :class:`repro.fdb.table.FunctionTable`.
    """

    x: Value
    y: Value
    truth: Truth = Truth.TRUE
    ncl: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.truth is Truth.FALSE:
            raise ValueError(
                "false facts are not stored in the database "
                "(absence denotes falsity)"
            )

    @property
    def pair(self) -> tuple[Value, Value]:
        return (self.x, self.y)

    @property
    def flag(self) -> str:
        return self.truth.flag

    def ref(self, function: str) -> FactRef:
        return FactRef(function, self.x, self.y)

    def ncl_text(self) -> str:
        """The NCL as printed in the Section 4.2 tables: ``{}`` or
        ``{g1, g2}``."""
        if not self.ncl:
            return "{}"
        return "{" + ", ".join(f"g{d}" for d in sorted(self.ncl)) + "}"

    def __str__(self) -> str:
        return f"<{self.x}, {self.y}, {self.flag}, {self.ncl_text()}>"
