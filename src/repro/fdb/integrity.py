"""Declarative integrity constraints.

Section 5: "Other semantic constraints (integrity constraints, etc.)
may also help resolve ambiguous information." This module supplies the
constraint layer: declare constraints over a database, audit the
current instance, or guard updates so a violating update rolls back
atomically.

Three constraint forms cover the schemas the paper works with:

* :class:`InclusionDependency` — every value in one function column
  must appear in another function's column (``class_list``'s domain
  within ``teach``'s range: no class list for an untaught course);
* :class:`DomainConstraint` — column values satisfy a predicate
  (marks within 0..100);
* :class:`CardinalityConstraint` — bounds on image/preimage sizes
  (a course has at most N students).

Null values are exempt everywhere: a null may yet resolve to a
compliant value, so it can never be a *definite* violation — the same
stance :mod:`repro.fdb.constraints` takes for functionality FDs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConstraintViolation, SchemaError
from repro.fdb.database import FunctionalDatabase
from repro.fdb.transaction import atomic
from repro.fdb.updates import Update, apply_update
from repro.fdb.values import Value, is_null

__all__ = [
    "Violation",
    "IntegrityConstraint",
    "InclusionDependency",
    "DomainConstraint",
    "CardinalityConstraint",
    "ConstraintSet",
]

_COLUMNS = ("domain", "range")


@dataclass(frozen=True)
class Violation:
    """One definite constraint violation."""

    constraint: str
    message: str

    def __str__(self) -> str:
        return f"[{self.constraint}] {self.message}"


class IntegrityConstraint(abc.ABC):
    """A named, checkable constraint over a database instance."""

    name: str = "constraint"

    @abc.abstractmethod
    def violations(self, db: FunctionalDatabase) -> list[Violation]:
        """All definite violations in the current instance."""

    def holds(self, db: FunctionalDatabase) -> bool:
        return not self.violations(db)


def _column_values(db: FunctionalDatabase, function: str,
                   column: str) -> list[Value]:
    if column not in _COLUMNS:
        raise SchemaError(f"column must be 'domain' or 'range', "
                          f"not {column!r}")
    table = db.table(function)
    if column == "domain":
        return [fact.x for fact in table.facts()]
    return [fact.y for fact in table.facts()]


@dataclass(frozen=True)
class InclusionDependency(IntegrityConstraint):
    """``source_function.source_column  subset-of
    target_function.target_column``."""

    source_function: str
    source_column: str
    target_function: str
    target_column: str

    @property
    def name(self) -> str:  # type: ignore[override]
        return (
            f"{self.source_function}.{self.source_column} <= "
            f"{self.target_function}.{self.target_column}"
        )

    def violations(self, db: FunctionalDatabase) -> list[Violation]:
        target = {
            value
            for value in _column_values(
                db, self.target_function, self.target_column
            )
        }
        found = []
        for value in _column_values(
            db, self.source_function, self.source_column
        ):
            if is_null(value):
                continue
            if value not in target:
                found.append(Violation(
                    self.name,
                    f"value {value!r} of {self.source_function}."
                    f"{self.source_column} missing from "
                    f"{self.target_function}.{self.target_column}",
                ))
        return found


@dataclass(frozen=True)
class DomainConstraint(IntegrityConstraint):
    """Column values must satisfy a predicate."""

    function: str
    column: str
    predicate: Callable[[Value], bool]
    description: str = "predicate"

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"{self.function}.{self.column}: {self.description}"

    def violations(self, db: FunctionalDatabase) -> list[Violation]:
        found = []
        for value in _column_values(db, self.function, self.column):
            if is_null(value):
                continue
            if not self.predicate(value):
                found.append(Violation(
                    self.name,
                    f"value {value!r} fails {self.description}",
                ))
        return found


@dataclass(frozen=True)
class CardinalityConstraint(IntegrityConstraint):
    """Bounds on how many range values a domain value maps to
    (``per='domain'``) or vice versa (``per='range'``).

    ``minimum`` applies only to values that appear at all — it bounds
    group sizes, not existence.
    """

    function: str
    per: str = "domain"
    minimum: int = 0
    maximum: int | None = None

    @property
    def name(self) -> str:  # type: ignore[override]
        upper = "inf" if self.maximum is None else str(self.maximum)
        return (
            f"|{self.function} per {self.per}| in "
            f"[{self.minimum}, {upper}]"
        )

    def violations(self, db: FunctionalDatabase) -> list[Violation]:
        if self.per not in _COLUMNS:
            raise SchemaError("per must be 'domain' or 'range'")
        groups: dict[Value, int] = {}
        for fact in db.table(self.function).facts():
            key = fact.x if self.per == "domain" else fact.y
            if is_null(key):
                continue
            groups[key] = groups.get(key, 0) + 1
        found = []
        for key, count in groups.items():
            if count < self.minimum:
                found.append(Violation(
                    self.name,
                    f"{key!r} has only {count} "
                    f"(minimum {self.minimum})",
                ))
            if self.maximum is not None and count > self.maximum:
                found.append(Violation(
                    self.name,
                    f"{key!r} has {count} (maximum {self.maximum})",
                ))
        return found


class ConstraintSet:
    """A collection of constraints with audit and guarded updates."""

    def __init__(self,
                 constraints: list[IntegrityConstraint] | None = None
                 ) -> None:
        self._constraints: list[IntegrityConstraint] = list(
            constraints or []
        )

    def add(self, constraint: IntegrityConstraint) -> None:
        self._constraints.append(constraint)

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self):
        return iter(tuple(self._constraints))

    def check(self, db: FunctionalDatabase) -> list[Violation]:
        """Audit the current instance against every constraint."""
        found: list[Violation] = []
        for constraint in self._constraints:
            found.extend(constraint.violations(db))
        return found

    def guarded(self, db: FunctionalDatabase, update: Update) -> None:
        """Apply ``update`` atomically; roll back and raise
        :class:`ConstraintViolation` if any constraint breaks."""
        with atomic(db):
            apply_update(db, update)
            violations = self.check(db)
            if violations:
                raise ConstraintViolation(
                    f"update {update} violates: "
                    + "; ".join(str(v) for v in violations)
                )
