"""Update journal: history, undo and redo.

Section 3 treats a general update request as "a sequence of such simple
updates"; a practical tool also needs to *revisit* that sequence — the
design aid is interactive, and a designer who disagrees with an
update's consequences (an unexpected NC, a surprising ambiguity) wants
to step back. :class:`Journal` wraps a database and records every
executed :class:`repro.fdb.updates.Update` together with the state
snapshot preceding it, giving linear undo/redo.

Undo restores the *entire instance state* (tables, NC registry, null
counter), so the subtle artifacts of derived updates — dismantled NCs,
burned null indices — revert exactly. Redo re-applies the recorded
update against the restored state, which reproduces the original
outcome bit for bit because null/NC index generation is deterministic
from the restored counters.

The journal covers updates only; schema changes reset it
(:meth:`Journal.clear`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import UpdateError
from repro.fdb import persistence

if TYPE_CHECKING:  # pragma: no cover
    from repro.fdb.diff import StateDiff
from repro.fdb.database import FunctionalDatabase
from repro.fdb.nc import NCRegistry
from repro.fdb.updates import (
    Update,
    UpdateSequence,
    apply_sequence,
    apply_update,
)
from repro.fdb.values import NullFactory

__all__ = ["Journal"]


def _snapshot(db: FunctionalDatabase) -> dict:
    return persistence.to_dict(db)


def _restore(db: FunctionalDatabase, snapshot: dict) -> None:
    """Swap the instance state of ``db`` to ``snapshot`` in place.

    The schema is assumed unchanged since the snapshot was taken — the
    journal's contract.
    """
    fresh = persistence.from_dict(snapshot)
    db._tables = {name: fresh.table(name) for name in fresh.base_names}
    registry = NCRegistry(db.table, fresh.ncs.next_index)
    registry._ncs = {nc.index: nc for nc in fresh.ncs}
    db.ncs = registry
    db.nulls = NullFactory(fresh.nulls.next_index)


class Journal:
    """Linear update history with undo/redo over one database."""

    def __init__(self, db: FunctionalDatabase,
                 max_depth: int = 1000) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        self.db = db
        self.max_depth = max_depth
        # Each entry: (update, snapshot-before-it).
        self._done: list[tuple[Update, dict]] = []
        self._undone: list[tuple[Update, dict]] = []

    # -- executing ----------------------------------------------------------

    def execute(self, update: Update | UpdateSequence) -> None:
        """Apply ``update`` and record it; clears the redo stack.

        An :class:`UpdateSequence` (a general update request) is
        applied atomically and recorded as a *single* history entry, so
        one undo reverts the whole request.
        """
        before = _snapshot(self.db)
        if isinstance(update, UpdateSequence):
            apply_sequence(self.db, update)
        else:
            apply_update(self.db, update)
        self._done.append((update, before))
        if len(self._done) > self.max_depth:
            self._done.pop(0)
        self._undone.clear()

    def execute_all(self, updates: list[Update]) -> None:
        for update in updates:
            self.execute(update)

    # -- navigating ------------------------------------------------------------

    @property
    def can_undo(self) -> bool:
        return bool(self._done)

    @property
    def can_redo(self) -> bool:
        return bool(self._undone)

    def undo(self) -> Update | UpdateSequence:
        """Revert the most recent update (or whole sequence); returns
        it."""
        if not self._done:
            raise UpdateError("nothing to undo")
        update, before = self._done.pop()
        self._undone.append((update, before))
        _restore(self.db, before)
        return update

    def redo(self) -> Update | UpdateSequence:
        """Re-apply the most recently undone update; returns it."""
        if not self._undone:
            raise UpdateError("nothing to redo")
        update, before = self._undone.pop()
        if isinstance(update, UpdateSequence):
            apply_sequence(self.db, update)
        else:
            apply_update(self.db, update)
        self._done.append((update, before))
        return update

    def undo_all(self) -> list[Update]:
        """Revert to the state before the first recorded update."""
        undone = []
        while self.can_undo:
            undone.append(self.undo())
        return undone

    # -- inspection -----------------------------------------------------------------

    @property
    def history(self) -> tuple[Update, ...]:
        """The applied updates, oldest first."""
        return tuple(update for update, _ in self._done)

    @property
    def redo_stack(self) -> tuple[Update, ...]:
        """Undone updates eligible for redo, next-to-redo last."""
        return tuple(update for update, _ in self._undone)

    def clear(self) -> None:
        """Forget all history (e.g. after a schema change)."""
        self._done.clear()
        self._undone.clear()

    def describe(self) -> str:
        lines = [f"{len(self._done)} applied, "
                 f"{len(self._undone)} undone"]
        for index, update in enumerate(self.history, start=1):
            lines.append(f"  {index}. {update}")
        return "\n".join(lines)

    # -- change inspection ---------------------------------------------------------

    def change_of(self, index: int) -> "StateDiff":
        """The state delta the ``index``-th applied update produced
        (1-based, as :meth:`describe` numbers them)."""
        from repro.fdb.diff import diff_snapshots

        if not 1 <= index <= len(self._done):
            raise UpdateError(f"no applied update #{index}")
        _, before = self._done[index - 1]
        if index < len(self._done):
            after = self._done[index][1]
        else:
            after = _snapshot(self.db)
        return diff_snapshots(before, after)

    def last_change(self) -> "StateDiff":
        """The delta of the most recent applied update."""
        if not self._done:
            raise UpdateError("no updates applied yet")
        return self.change_of(len(self._done))
