"""Three-valued logic.

Section 3.2: "To capture such partial information we employ three-valued
logic. In this logic a fact can be 'true', 'false', or 'ambiguous'."

:class:`Truth` provides the three values with Kleene-style connectives
(AMBIGUOUS plays the role of *unknown*) and the information ordering
``FALSE < AMBIGUOUS < TRUE`` used when several chains derive the same
fact and the strongest valuation wins.
"""

from __future__ import annotations

import enum
from typing import Iterable

__all__ = ["Truth"]


class Truth(enum.Enum):
    """A three-valued truth value."""

    TRUE = "true"
    AMBIGUOUS = "ambiguous"
    FALSE = "false"

    # -- ordering (truth strength: FALSE < AMBIGUOUS < TRUE) ---------------

    @property
    def _rank(self) -> int:
        return {"false": 0, "ambiguous": 1, "true": 2}[self.value]

    def __lt__(self, other: "Truth") -> bool:
        return self._rank < other._rank

    def __le__(self, other: "Truth") -> bool:
        return self._rank <= other._rank

    def __gt__(self, other: "Truth") -> bool:
        return self._rank > other._rank

    def __ge__(self, other: "Truth") -> bool:
        return self._rank >= other._rank

    # -- Kleene connectives ---------------------------------------------------

    def and_(self, other: "Truth") -> "Truth":
        """Kleene conjunction: the weaker operand wins."""
        return self if self._rank <= other._rank else other

    def or_(self, other: "Truth") -> "Truth":
        """Kleene disjunction: the stronger operand wins."""
        return self if self._rank >= other._rank else other

    def not_(self) -> "Truth":
        if self is Truth.TRUE:
            return Truth.FALSE
        if self is Truth.FALSE:
            return Truth.TRUE
        return Truth.AMBIGUOUS

    @staticmethod
    def all_of(values: Iterable["Truth"]) -> "Truth":
        """Kleene conjunction over a sequence (empty -> TRUE)."""
        result = Truth.TRUE
        for value in values:
            result = result.and_(value)
            if result is Truth.FALSE:
                break
        return result

    @staticmethod
    def any_of(values: Iterable["Truth"]) -> "Truth":
        """Kleene disjunction over a sequence (empty -> FALSE)."""
        result = Truth.FALSE
        for value in values:
            result = result.or_(value)
            if result is Truth.TRUE:
                break
        return result

    # -- the paper's truth flags -------------------------------------------------

    @property
    def flag(self) -> str:
        """The stored truth flag: ``T`` for true, ``A`` for ambiguous.

        Only facts present in the database carry a flag ("the truth
        values of base facts existing in the database are indicated by
        their logical state (true or ambiguous). Those not existing in
        the database are false.").
        """
        if self is Truth.TRUE:
            return "T"
        if self is Truth.AMBIGUOUS:
            return "A"
        raise ValueError("false facts are not stored and have no flag")

    @classmethod
    def from_flag(cls, flag: str) -> "Truth":
        try:
            return {"T": cls.TRUE, "A": cls.AMBIGUOUS}[flag.upper()]
        except KeyError:
            raise ValueError(f"not a truth flag: {flag!r}") from None

    def __str__(self) -> str:
        return self.value
