"""Negated conjunctions (NCs) and their registry.

Section 3.2: deleting a derived fact tells us only that the conjunction
of the base facts deriving it is false — not which conjunct is. "This is
represented by a construct called 'negated conjunction' (NC). The
semantics of a NC are: (1) the conjunction of the facts in it is false;
(2) each fact in it is ambiguous."

Section 4: "Each NC has a unique index, and is implemented as a list of
pointers to its component facts. In this way the NC and NCL form a dual
data structure that enables the traversal from a NC to its component
facts and vice versa."

:class:`NCRegistry` owns the indices and implements the paper's
``create-NC`` and ``dismantle-NC`` procedures. It resolves fact
references through a table-lookup callable supplied by the database, so
this module stays independent of :mod:`repro.fdb.database`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.errors import UpdateError
from repro.fdb.facts import Fact, FactRef
from repro.fdb.logic import Truth
from repro.fdb.table import FunctionTable
from repro.fdb.values import Value
from repro.obs.hooks import OBS

__all__ = ["NegatedConjunction", "NCRegistry"]


@dataclass(frozen=True)
class NegatedConjunction:
    """One NC: a unique index plus its component base facts."""

    index: int
    members: tuple[FactRef, ...]

    @property
    def member_set(self) -> frozenset[FactRef]:
        return frozenset(self.members)

    def __str__(self) -> str:
        inner = " AND ".join(str(member) for member in self.members)
        return f"g{self.index}: NOT({inner})"


class NCRegistry:
    """All live NCs of one database, indexed ``g1, g2, ...``.

    The registry plus the per-fact NCLs form the paper's dual structure:
    :meth:`members_of` walks NC -> facts; a fact's ``ncl`` walks
    fact -> NCs.
    """

    def __init__(
        self,
        table_of: Callable[[str], FunctionTable],
        next_index: int = 1,
    ) -> None:
        self._table_of = table_of
        self._ncs: dict[int, NegatedConjunction] = {}
        self._counter = itertools.count(next_index)
        self._next_preview = next_index

    # -- resolution ----------------------------------------------------------

    def _resolve(self, ref: FactRef) -> Fact:
        fact = self._table_of(ref.function).get(ref.x, ref.y)
        if fact is None:
            raise UpdateError(f"dangling fact reference {ref}")
        return fact

    # -- the paper's procedures -------------------------------------------------

    def create(self, conjuncts: Iterable[tuple[str, Fact]]) -> NegatedConjunction:
        """Procedure ``create-NC(Conj-list)``.

        Generates an NC with a fresh unique index and, for each conjunct,
        sets its truth flag to A and adds the index to its NCL.
        ``conjuncts`` pairs each fact with the name of the function whose
        table stores it.
        """
        pairs = list(conjuncts)
        if not pairs:
            raise UpdateError("an NC needs at least one conjunct")
        if OBS.enabled:
            OBS.inc("fdb.nc.created")
        index = next(self._counter)
        self._next_preview = index + 1
        members = []
        for function, fact in pairs:
            fact.truth = Truth.AMBIGUOUS
            fact.ncl.add(index)
            members.append(fact.ref(function))
        nc = NegatedConjunction(index, tuple(members))
        self._ncs[index] = nc
        return nc

    def dismantle(self, index: int) -> None:
        """Procedure ``dismantle-NC(d)``.

        "Each element of NC(d) is ambiguous, while their conjunction is
        not false": the NC disappears and each member loses the index
        from its NCL — but stays ambiguous until some future insert
        asserts it true.
        """
        try:
            nc = self._ncs.pop(index)
        except KeyError:
            raise UpdateError(f"no NC with index g{index}") from None
        if OBS.enabled:
            OBS.inc("fdb.nc.dismantled")
        for ref in nc.members:
            fact = self._table_of(ref.function).get(ref.x, ref.y)
            # A member may already have been removed from its table by the
            # base-delete that triggered this dismantling.
            if fact is not None:
                fact.ncl.discard(index)

    # -- queries ----------------------------------------------------------------

    def get(self, index: int) -> NegatedConjunction:
        try:
            return self._ncs[index]
        except KeyError:
            raise UpdateError(f"no NC with index g{index}") from None

    def __contains__(self, index: int) -> bool:
        return index in self._ncs

    def __len__(self) -> int:
        return len(self._ncs)

    def __iter__(self) -> Iterator[NegatedConjunction]:
        return iter(tuple(self._ncs.values()))

    def members_of(self, index: int) -> tuple[Fact, ...]:
        """The component facts of NC(d) (NC -> facts traversal)."""
        return tuple(self._resolve(ref) for ref in self.get(index).members)

    def has_nc_with_members(self, refs: frozenset[FactRef]) -> bool:
        """Whether some live NC has exactly this member set (used to keep
        derived deletes idempotent)."""
        return any(nc.member_set == refs for nc in self._ncs.values())

    def subset_of_some_nc(self, refs: frozenset[FactRef],
                          candidate_indices: Iterable[int]) -> bool:
        """Whether some NC among ``candidate_indices`` has all its
        members inside ``refs`` — i.e. ``refs`` is a superset of an NC,
        which makes a chain's conjunction known-false (Section 3.2)."""
        for index in set(candidate_indices):
            nc = self._ncs.get(index)
            if nc is not None and nc.member_set <= refs:
                return True
        return False

    def rewrite_value(self, old: "Value", new: "Value") -> None:
        """Replace a value inside every NC member reference (used by
        null resolution when a null is identified with a data value).
        Members that become identical after rewriting are deduplicated.
        """
        for index, nc in list(self._ncs.items()):
            if not any(ref.x == old or ref.y == old for ref in nc.members):
                continue
            members = tuple(
                dict.fromkeys(
                    FactRef(
                        ref.function,
                        new if ref.x == old else ref.x,
                        new if ref.y == old else ref.y,
                    )
                    for ref in nc.members
                )
            )
            self._ncs[index] = NegatedConjunction(index, members)

    @property
    def next_index(self) -> int:
        return self._next_preview

    def __str__(self) -> str:
        if not self._ncs:
            return "(no negated conjunctions)"
        return "\n".join(str(nc) for nc in self._ncs.values())
