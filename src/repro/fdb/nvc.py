"""Null-valued chains (NVCs).

Section 3.2: inserting a derived fact ``<f3, a3, c3>`` implies, by the
derivation's logical implication (2), that intermediate objects exist —
but their identity is unknown. "To accommodate this partial information
we resort to null values. Thus we will insert <f1, a3, n1> and
<f2, n1, c3>, where n1 is a uniquely indexed null value. We call this
chain of tuples the 'null-valued chain' (NVC) of the derived fact."

This module implements the paper's three NVC procedures
(``create-NVC``, ``clean-up-NVC``, ``exists-NVC``) against a
:class:`repro.fdb.database.FunctionalDatabase`. An NVC for a
single-step derivation (``taught_by = teach^-1``) has no interior nulls
and degenerates to the single reoriented base fact — insertion and
lookup still work uniformly.
"""

from __future__ import annotations

from repro.core.derivation import Derivation, Op
from repro.fdb.database import FunctionalDatabase
from repro.fdb.evaluate import Chain, iter_chains
from repro.fdb.facts import Fact
from repro.fdb.logic import Truth
from repro.fdb.values import Value, is_null
from repro.obs.hooks import OBS

__all__ = ["create_nvc", "exists_nvc", "clean_up_nvc", "interior_values"]


def _stored_pair(step_op: Op, source: Value, target: Value) -> tuple[Value, Value]:
    """The (x, y) actually stored in the step's table: an inverted step
    stores the pair reversed."""
    if step_op is Op.INVERSE:
        return (target, source)
    return (source, target)


def create_nvc(
    db: FunctionalDatabase,
    derivation: Derivation,
    x: Value,
    y: Value,
) -> list[Fact]:
    """Procedure ``create-NVC(f, x, y)``.

    Generates k-1 fresh nulls and stores one true fact per derivation
    step: ``<x, n1, T, nil>``, ``<n1, n2, T, nil>``, ...,
    ``<n_{k-1}, y, T, nil>`` (reoriented for inverted steps). Returns
    the stored facts in step order.
    """
    if OBS.enabled:
        OBS.inc("fdb.nvc.created")
    steps = derivation.steps
    nulls = list(db.nulls.fresh_many(len(steps) - 1))
    boundary: list[Value] = [x, *nulls, y]
    created: list[Fact] = []
    for index, step in enumerate(steps):
        stored_x, stored_y = _stored_pair(
            step.op, boundary[index], boundary[index + 1]
        )
        table = db.table(step.function.name)
        created.append(table.add_pair(stored_x, stored_y, Truth.TRUE))
    return created


def interior_values(chain: Chain) -> list[Value]:
    """The k-1 connection values of a chain (effective range of each
    fact but the last)."""
    values: list[Value] = []
    for step, fact in zip(chain.derivation.steps[:-1], chain.facts[:-1]):
        values.append(fact.x if step.op is Op.INVERSE else fact.y)
    return values


def exists_nvc(
    db: FunctionalDatabase,
    derivation: Derivation,
    x: Value,
    y: Value,
) -> Chain | None:
    """Function ``exists-NVC(f, x, y)``.

    Checks whether null values n1..n_{k-1} exist such that the chain
    ``<x, n1> in f1, <n1, n2> in f2, ..., <n_{k-1}, y> in fk`` is
    stored. Returns that chain (the first found) or None.
    """
    for chain in iter_chains(db, derivation, x, y, allow_ambiguous=False):
        if all(is_null(value) for value in interior_values(chain)):
            return chain
    return None


def clean_up_nvc(db: FunctionalDatabase, chain: Chain) -> None:
    """Procedure ``clean-up-NVC(f, x, y)``: make an ambiguous NVC true
    by base-inserting each of its elements (which dismantles any NCs
    they belong to and sets their truth flags to T)."""
    from repro.fdb.updates import base_insert

    for function, fact in chain.conjuncts():
        base_insert(db, function, fact.x, fact.y)
