"""JSON snapshots of a functional database.

A snapshot captures everything needed to resume: the schema (object
types including products, functionalities, base/derived split), the
derivations of derived functions, every stored fact quadruple, the NC
registry, and the null / NC index counters (so fresh indices stay
unique across a save/load cycle).

Supported data values are JSON atoms (str, int, float, bool, None),
tuples of values (objects of product types), and
:class:`repro.fdb.values.NullValue`. Values are encoded with explicit
tags so e.g. the string ``"n1"`` never collides with the null ``n1``
and tuples survive the round trip (JSON would otherwise turn them into
lists).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import PersistenceError
from repro.core.derivation import Derivation, Op, Step
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality
from repro.faults.registry import FAULTS
from repro.fdb import storage
from repro.fdb.database import FunctionalDatabase
from repro.fdb.facts import Fact, FactRef
from repro.fdb.logic import Truth
from repro.fdb.nc import NCRegistry, NegatedConjunction
from repro.fdb.values import NullFactory, NullValue, Value

__all__ = ["to_dict", "from_dict", "dumps", "loads", "save", "load",
           "load_with_meta"]

_FORMAT = "repro-fdb-snapshot"
_VERSION = 1

FAULTS.register(
    "persistence.save.before",
    "persistence.save: before the atomic snapshot write",
)


# -- value encoding -------------------------------------------------------------


def _encode_value(value: Value) -> Any:
    if isinstance(value, NullValue):
        return {"null": value.index}
    if isinstance(value, tuple):
        return {"tuple": [_encode_value(item) for item in value]}
    if isinstance(value, bool) or value is None:
        return {"atom": value}
    if isinstance(value, (str, int, float)):
        return {"atom": value}
    raise PersistenceError(
        f"value of type {type(value).__name__} cannot be persisted"
    )


def _decode_value(data: Any) -> Value:
    if not isinstance(data, dict) or len(data) != 1:
        raise PersistenceError(f"malformed value encoding: {data!r}")
    if "null" in data:
        return NullValue(data["null"])
    if "tuple" in data:
        return tuple(_decode_value(item) for item in data["tuple"])
    if "atom" in data:
        return data["atom"]
    raise PersistenceError(f"malformed value encoding: {data!r}")


# -- schema encoding ------------------------------------------------------------------


def _encode_type(object_type: ObjectType) -> Any:
    return {
        "name": object_type.name,
        "components": list(object_type.components),
    }


def _decode_type(data: Any) -> ObjectType:
    return ObjectType(data["name"], tuple(data["components"]))


def _encode_function(definition: FunctionDef) -> Any:
    return {
        "name": definition.name,
        "domain": _encode_type(definition.domain),
        "range": _encode_type(definition.range),
        "functionality": str(definition.functionality),
    }


def _decode_function(data: Any) -> FunctionDef:
    return FunctionDef(
        data["name"],
        _decode_type(data["domain"]),
        _decode_type(data["range"]),
        TypeFunctionality.parse(data["functionality"]),
    )


# -- snapshotting ------------------------------------------------------------------------


def to_dict(db: FunctionalDatabase, *,
            wal_applied: int | None = None,
            term: int | None = None) -> dict:
    """Snapshot a database into a JSON-serializable dict.

    ``wal_applied`` stamps the snapshot with the highest write-ahead
    log sequence number it folds in; :func:`repro.fdb.wal.recover`
    uses it to skip log records the snapshot already contains (the
    crash-between-snapshot-and-truncate case). ``term`` stamps the
    replication epoch the snapshot was taken under, so a replica
    bootstrapped from it knows which primary generation it extends.
    """
    base = []
    for name in db.base_names:
        table = db.table(name)
        base.append({
            "definition": _encode_function(db.schema[name]),
            "facts": [
                {
                    "x": _encode_value(fact.x),
                    "y": _encode_value(fact.y),
                    "flag": fact.flag,
                    "ncl": sorted(fact.ncl),
                }
                for fact in table.facts()
            ],
        })
    derived = []
    for function in db.derived_functions():
        derived.append({
            "definition": _encode_function(function.definition),
            "derivations": [
                [
                    {"function": step.function.name, "op": step.op.value}
                    for step in derivation
                ]
                for derivation in function.derivations
            ],
        })
    ncs = [
        {
            "index": nc.index,
            "members": [
                {
                    "function": ref.function,
                    "x": _encode_value(ref.x),
                    "y": _encode_value(ref.y),
                }
                for ref in nc.members
            ],
        }
        for nc in db.ncs
    ]
    data = {
        "format": _FORMAT,
        "version": _VERSION,
        "insert_mode": db.insert_mode,
        "base": base,
        "derived": derived,
        "ncs": ncs,
        "next_null_index": db.nulls.next_index,
        "next_nc_index": db.ncs.next_index,
    }
    if wal_applied is not None:
        data["wal_applied"] = wal_applied
    if term is not None:
        data["term"] = term
    return data


def from_dict(data: dict) -> FunctionalDatabase:
    """Rebuild a database from :func:`to_dict` output."""
    if data.get("format") != _FORMAT:
        raise PersistenceError("not a functional database snapshot")
    if data.get("version") != _VERSION:
        raise PersistenceError(
            f"unsupported snapshot version {data.get('version')!r}"
        )
    db = FunctionalDatabase(insert_mode=data["insert_mode"])
    for entry in data["base"]:
        definition = _decode_function(entry["definition"])
        table = db.declare_base(definition)
        for fact_data in entry["facts"]:
            table.add(Fact(
                _decode_value(fact_data["x"]),
                _decode_value(fact_data["y"]),
                Truth.from_flag(fact_data["flag"]),
                set(fact_data["ncl"]),
            ))
    for entry in data["derived"]:
        definition = _decode_function(entry["definition"])
        derivations = tuple(
            Derivation(
                Step(db.schema[step["function"]], Op(step["op"]))
                for step in steps
            )
            for steps in entry["derivations"]
        )
        db.declare_derived(definition, derivations)
    registry = NCRegistry(db.table, data["next_nc_index"])
    for entry in data["ncs"]:
        members = tuple(
            FactRef(
                m["function"], _decode_value(m["x"]), _decode_value(m["y"])
            )
            for m in entry["members"]
        )
        registry._ncs[entry["index"]] = NegatedConjunction(
            entry["index"], members
        )
    db.ncs = registry
    db.nulls = NullFactory(data["next_null_index"])
    _check_consistency(db)
    return db


def _check_consistency(db: FunctionalDatabase) -> None:
    """Verify the NC/NCL dual structure of a loaded snapshot."""
    for nc in db.ncs:
        for ref in nc.members:
            fact = db.table(ref.function).get(ref.x, ref.y)
            if fact is None:
                raise PersistenceError(
                    f"snapshot NC g{nc.index} references missing fact {ref}"
                )
            if nc.index not in fact.ncl:
                raise PersistenceError(
                    f"snapshot fact {ref} lacks NCL entry g{nc.index}"
                )
            if fact.truth is not Truth.AMBIGUOUS:
                raise PersistenceError(
                    f"snapshot NC member {ref} is not ambiguous"
                )
    for name in db.base_names:
        for fact in db.table(name).facts():
            for index in fact.ncl:
                if index not in db.ncs:
                    raise PersistenceError(
                        f"snapshot fact <{name}, {fact.x}, {fact.y}> points "
                        f"to missing NC g{index}"
                    )


def dumps(db: FunctionalDatabase, *, indent: int | None = 2,
          wal_applied: int | None = None,
          term: int | None = None) -> str:
    return json.dumps(to_dict(db, wal_applied=wal_applied, term=term),
                      indent=indent, sort_keys=False)


def loads(text: str) -> FunctionalDatabase:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"invalid snapshot JSON: {exc}") from exc
    return from_dict(data)


def save(db: FunctionalDatabase, path: str | Path, *,
         wal_applied: int | None = None,
         term: int | None = None) -> None:
    """Write a snapshot atomically: a crash mid-save leaves the
    previous snapshot intact, never a torn file."""
    FAULTS.fire("persistence.save.before")
    storage.atomic_write(path, dumps(db, wal_applied=wal_applied,
                                     term=term))


def load(path: str | Path) -> FunctionalDatabase:
    return load_with_meta(path)[0]


def load_with_meta(path: str | Path) -> tuple[FunctionalDatabase, dict]:
    """Load a snapshot plus its durability metadata (``wal_applied``),
    which :func:`from_dict` ignores but recovery needs."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise PersistenceError(f"cannot read snapshot: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"invalid snapshot JSON: {exc}") from exc
    meta = {"wal_applied": data.get("wal_applied"),
            "term": data.get("term", 0)} \
        if isinstance(data, dict) else {}
    return from_dict(data), meta
