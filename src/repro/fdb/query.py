"""Query facility over composition/inverse expressions.

The philosophy of functional databases is "to provide a high level
abstraction of the information content in the form of functions"
(Section 1): querying means applying functions, their inverses and
compositions. A :class:`Query` is such an expression tree:

>>> pupil = fn("teach") * fn("class_list")        # doctest: +SKIP
>>> pupil.image(db, "euclid")                      # doctest: +SKIP
{'john': Truth.TRUE, 'bill': Truth.TRUE}
>>> (~fn("teach")).pairs(db)                       # doctest: +SKIP

``*`` composes (the paper's ``o``), ``~`` inverts. Expressions are
*normalized* into derivations over base functions before evaluation —
inverse distributes over composition and derived functions are expanded
into their confirmed derivations — so query answers obey exactly the
Section 3.2 truth valuation, negated conjunctions included.
"""

from __future__ import annotations

import abc
from typing import Iterator

from repro.errors import DerivationError, SchemaError
from repro.core.derivation import Derivation, Step
from repro.fdb.database import FunctionalDatabase
from repro.fdb.evaluate import _accumulate, iter_chains
from repro.fdb.logic import Truth
from repro.fdb.values import Value
from repro.obs.hooks import OBS

__all__ = ["Query", "fn"]

_MAX_EXPANSIONS = 64


class Query(abc.ABC):
    """A functional query expression."""

    # -- combinators ----------------------------------------------------------

    def __mul__(self, other: "Query") -> "Query":
        """Composition, the paper's ``o``: ``x:(f o g) = (x:f):g``."""
        if not isinstance(other, Query):
            return NotImplemented
        return _Compose(self, other)

    def __invert__(self) -> "Query":
        """Inverse: ``~f`` is f^-1."""
        return _Inverse(self)

    def o(self, other: "Query") -> "Query":
        """Alias for ``*`` matching the paper's notation."""
        return self * other

    def inverse(self) -> "Query":
        return ~self

    # -- normalization ----------------------------------------------------------

    @abc.abstractmethod
    def _expand(self, db: FunctionalDatabase) -> Iterator[Derivation]:
        """Every base-function derivation denoted by this expression."""

    def derivations(self, db: FunctionalDatabase) -> tuple[Derivation, ...]:
        """Normalize against a database; raises :class:`SchemaError` when
        the expression does not type-check (compositions whose interior
        types do not chain)."""
        expanded = tuple(self._expand(db))
        if len(expanded) > _MAX_EXPANSIONS:
            raise SchemaError(
                "query expands to too many alternative derivations "
                f"({len(expanded)} > {_MAX_EXPANSIONS})"
            )
        return expanded

    # -- evaluation -----------------------------------------------------------------

    def _slow_detail(self, db: FunctionalDatabase):
        """A lazy cost breakdown of the expanded derivations, for the
        slowlog — built only if the span crosses its threshold."""
        def build() -> dict:
            from repro.fdb.explain import cost_breakdown

            return cost_breakdown(db, self.derivations(db))
        return build

    def pairs(self, db: FunctionalDatabase) -> dict[tuple[Value, Value], Truth]:
        """The expression's extension: derivable pairs with truths
        (false pairs absent)."""
        if OBS.enabled:
            OBS.inc("fdb.query.pairs")
            with OBS.span("query.pairs", key=str(self), expr=str(self),
                          slow_detail=self._slow_detail(db)):
                return self._pairs(db)
        return self._pairs(db)

    def _pairs(self, db: FunctionalDatabase) -> dict[tuple[Value, Value], Truth]:
        result: dict[tuple[Value, Value], Truth] = {}
        for derivation in self.derivations(db):
            _accumulate(db, iter_chains(db, derivation), result,
                        label=str(derivation))
        return result

    def image(self, db: FunctionalDatabase, x: Value) -> dict[Value, Truth]:
        """Range values reached from ``x``, with truths."""
        if OBS.enabled:
            OBS.inc("fdb.query.image")
            with OBS.span("query.image", key=str(self), expr=str(self), x=x,
                          slow_detail=self._slow_detail(db)):
                return self._image(db, x)
        return self._image(db, x)

    def _image(self, db: FunctionalDatabase, x: Value) -> dict[Value, Truth]:
        pairs: dict[tuple[Value, Value], Truth] = {}
        for derivation in self.derivations(db):
            _accumulate(db, iter_chains(db, derivation, x=x), pairs,
                        label=str(derivation))
        return {y: truth for (_, y), truth in pairs.items()}

    def preimage(self, db: FunctionalDatabase, y: Value) -> dict[Value, Truth]:
        """Domain values mapping to ``y``, with truths."""
        return (~self).image(db, y)

    def truth(self, db: FunctionalDatabase, x: Value, y: Value) -> Truth:
        """Truth of ``expr(x) = y`` under the Section 3.2 valuation."""
        if OBS.enabled:
            OBS.inc("fdb.query.truth")
            with OBS.span("query.truth", key=str(self), expr=str(self),
                          x=x, y=y, slow_detail=self._slow_detail(db)):
                return self._truth(db, x, y)
        return self._truth(db, x, y)

    def _truth(self, db: FunctionalDatabase, x: Value, y: Value) -> Truth:
        ambiguous = False
        for derivation in self.derivations(db):
            for chain in iter_chains(db, derivation, x, y):
                support = chain.supports(db)
                if support is Truth.TRUE:
                    return Truth.TRUE
                if support is Truth.AMBIGUOUS:
                    ambiguous = True
        return Truth.AMBIGUOUS if ambiguous else Truth.FALSE


class _Function(Query):
    def __init__(self, name: str) -> None:
        self.name = name

    def _expand(self, db: FunctionalDatabase) -> Iterator[Derivation]:
        if db.is_base(self.name):
            yield Derivation.of(Step(db.schema[self.name]))
            return
        yield from db.derived(self.name).derivations

    def __str__(self) -> str:
        return self.name


class _Inverse(Query):
    def __init__(self, inner: Query) -> None:
        self.inner = inner

    def _expand(self, db: FunctionalDatabase) -> Iterator[Derivation]:
        for derivation in self.inner._expand(db):
            yield derivation.inverted()

    def __str__(self) -> str:
        return f"({self.inner})^-1"


class _Compose(Query):
    def __init__(self, left: Query, right: Query) -> None:
        self.left = left
        self.right = right

    def _expand(self, db: FunctionalDatabase) -> Iterator[Derivation]:
        rights = tuple(self.right._expand(db))
        for left in self.left._expand(db):
            for right in rights:
                try:
                    yield left.then(right)
                except DerivationError as exc:
                    raise SchemaError(
                        f"composition does not type-check: ({self.left}) o "
                        f"({self.right}): {exc}"
                    ) from exc

    def __str__(self) -> str:
        return f"{self.left} o {self.right}"


def fn(name: str) -> Query:
    """A query referencing one schema function by name."""
    return _Function(name)
