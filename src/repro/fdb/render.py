"""Paper-style rendering of database state.

Section 4.2 prints the instance after each update as side-by-side
tables::

    Teach            | Class_list      | Pupil
    -----------------|-----------------|--------------
    gauss   n1 T {}  | math john T {}  | gauss   john *
    laplace math T {}| math bill T {}  | ...

Base tables show the quadruple columns (x, y, flag, NCL); derived
functions show their derivable pairs with "ambiguous implied facts
indicated by a *". :func:`render_state` reproduces that layout so the
E8 bench and the examples can print states directly comparable with the
paper's figures.
"""

from __future__ import annotations

from repro.fdb.database import FunctionalDatabase
from repro.fdb.evaluate import derived_extension
from repro.fdb.logic import Truth

__all__ = ["render_base_table", "render_derived_table", "render_state"]


def _columnize(rows: list[tuple[str, ...]]) -> list[str]:
    """Left-align each column to its widest cell."""
    if not rows:
        return []
    widths = [
        max(len(row[i]) for row in rows) for i in range(len(rows[0]))
    ]
    return [
        " ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]


def render_base_table(db: FunctionalDatabase, name: str,
                      *, title: str | None = None) -> list[str]:
    """Lines of one base table: title, rule, quadruple rows."""
    table = db.table(name)
    body = _columnize([(x, y, flag, ncl) for x, y, flag, ncl in table.rows()])
    return [title or name.capitalize(), *body]


def _sorted_extension(
    extension: dict[tuple, Truth]
) -> list[tuple[str, str, str]]:
    rows = [
        (str(x), str(y), "*" if truth is Truth.AMBIGUOUS else "")
        for (x, y), truth in extension.items()
    ]
    return rows


def render_derived_table(db: FunctionalDatabase, name: str,
                         *, title: str | None = None) -> list[str]:
    """Lines of one derived function's extension, ambiguous facts
    starred (the paper's Pupil column)."""
    extension = derived_extension(db, name)
    body = _columnize(_sorted_extension(extension))
    return [title or name.capitalize(), *body]


def render_state(
    db: FunctionalDatabase,
    base: tuple[str, ...] | None = None,
    derived: tuple[str, ...] | None = None,
    *,
    separator: str = " | ",
) -> str:
    """The full Section 4.2 layout: base tables then derived extensions,
    side by side, with a horizontal rule under the titles."""
    base = base if base is not None else db.base_names
    derived = derived if derived is not None else db.derived_names
    columns = [render_base_table(db, name) for name in base]
    columns += [render_derived_table(db, name) for name in derived]
    if not columns:
        return "(empty database)"
    widths = [max((len(line) for line in column), default=0)
              for column in columns]
    height = max(len(column) for column in columns)
    lines = []
    for row in range(height):
        cells = [
            (column[row] if row < len(column) else "").ljust(width)
            for column, width in zip(columns, widths)
        ]
        lines.append(separator.join(cells).rstrip())
        if row == 0:
            rule_cells = ["-" * width for width in widths]
            lines.append(
                separator.replace(" ", "-").join(rule_cells)
            )
    return "\n".join(lines)
