"""Crash-safe filesystem primitives.

Everything durable in this package goes through two operations, both
with the fsync discipline a real store needs:

* :func:`atomic_write` — publish a complete new file state with no
  window in which a reader (or a crash) can observe a partial one:
  write to a temp file in the same directory, flush + fsync the data,
  ``os.replace`` over the target (atomic on POSIX and Windows), then
  fsync the directory so the rename itself is durable.

* :func:`append_line` — append one line and force it to disk before
  returning, so a record the caller believes committed survives power
  loss, not just process death.

Fault points (see :mod:`repro.faults`) are threaded through both so the
crash-matrix harness can kill the process at every step and assert the
recovery story.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.faults.registry import FAULTS

__all__ = ["atomic_write", "append_line", "fsync_directory"]


FAULTS.register(
    "storage.atomic.before-write",
    "atomic_write: before the temp file is created",
)
FAULTS.register(
    "storage.atomic.payload",
    "atomic_write: mid-write of the temp file (torn temp, target intact)",
    supports_torn_write=True,
)
FAULTS.register(
    "storage.atomic.before-rename",
    "atomic_write: temp durable, target not yet replaced",
)
FAULTS.register(
    "storage.atomic.after-rename",
    "atomic_write: target replaced, directory fsync pending",
    durable=True,
)
FAULTS.register(
    "storage.append.before",
    "append_line: nothing written yet",
)
FAULTS.register(
    "storage.append.payload",
    "append_line: mid-write of the record (torn tail)",
    supports_torn_write=True,
)
FAULTS.register(
    "storage.append.after-write",
    "append_line: record written and fsync'd",
    durable=True,
)


def fsync_directory(path: Path) -> None:
    """Force a directory's entry table to disk (after create/rename).

    Platforms whose directories cannot be opened (notably Windows)
    skip silently — the ``os.replace`` there is already atomic and
    metadata-durable enough for this store's guarantees.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write(path: str | Path, text: str, *,
                 encoding: str = "utf-8") -> None:
    """Replace ``path``'s contents with ``text``, atomically.

    Either the old complete contents or the new complete contents are
    on disk at every instant — a crash anywhere inside this function
    never exposes a partial file. The temp file lives in the target's
    directory so the final ``os.replace`` never crosses filesystems.
    """
    target = Path(path)
    FAULTS.fire("storage.atomic.before-write")
    tmp = target.with_name(target.name + ".tmp")
    data = text.encode(encoding) if isinstance(text, str) else text
    with open(tmp, "wb") as handle:
        FAULTS.fire("storage.atomic.payload", handle=handle, data=data)
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    FAULTS.fire("storage.atomic.before-rename")
    os.replace(tmp, target)
    FAULTS.fire("storage.atomic.after-rename")
    fsync_directory(target.parent)


def append_line(path: str | Path, line: str, *,
                encoding: str = "utf-8", fsync: bool = True) -> None:
    """Append ``line`` (a newline is added) and make it durable.

    The flush + fsync pair is what turns "the process wrote it" into
    "the disk has it"; ``fsync=False`` trades that guarantee for speed
    when the caller batches its own syncs.
    """
    target = Path(path)
    FAULTS.fire("storage.append.before")
    data = (line + "\n").encode(encoding)
    with open(target, "ab") as handle:
        FAULTS.fire("storage.append.payload", handle=handle, data=data)
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    FAULTS.fire("storage.append.after-write")
