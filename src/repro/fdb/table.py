"""Extensionally stored function tables.

"Base functions are usually extensionally stored (i.e., stored
internally as a table)" (Section 1). A :class:`FunctionTable` holds the
fact quadruples of one base function, keyed by pair, with secondary
indices by domain value and by range value (composition walks forward
through the domain index and inverse steps walk the range index).

Because chain matching needs to find not only the facts whose endpoint
*equals* a value but also those that match it *ambiguously* (one side a
null), the table additionally tracks which stored facts carry a null in
each column.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import UpdateError
from repro.fdb.facts import Fact
from repro.fdb.logic import Truth
from repro.fdb.values import Value, is_null

__all__ = ["FunctionTable"]


class FunctionTable:
    """The stored extension of one base function."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._facts: dict[tuple[Value, Value], Fact] = {}
        self._by_x: dict[Value, list[Fact]] = {}
        self._by_y: dict[Value, list[Fact]] = {}
        self._null_x: list[Fact] = []
        self._null_y: list[Fact] = []

    # -- row maintenance -----------------------------------------------------

    def add(self, fact: Fact) -> Fact:
        """Store a fact; the pair must not already be present."""
        key = fact.pair
        if key in self._facts:
            raise UpdateError(
                f"{self.name}: fact <{fact.x}, {fact.y}> already stored"
            )
        self._facts[key] = fact
        self._by_x.setdefault(fact.x, []).append(fact)
        self._by_y.setdefault(fact.y, []).append(fact)
        if is_null(fact.x):
            self._null_x.append(fact)
        if is_null(fact.y):
            self._null_y.append(fact)
        return fact

    def add_pair(self, x: Value, y: Value,
                 truth: Truth = Truth.TRUE) -> Fact:
        return self.add(Fact(x, y, truth))

    def discard(self, x: Value, y: Value) -> Fact | None:
        """Remove and return the fact for (x, y), or None if absent."""
        fact = self._facts.pop((x, y), None)
        if fact is None:
            return None
        self._by_x[x].remove(fact)
        if not self._by_x[x]:
            del self._by_x[x]
        self._by_y[y].remove(fact)
        if not self._by_y[y]:
            del self._by_y[y]
        if is_null(x):
            self._null_x.remove(fact)
        if is_null(y):
            self._null_y.remove(fact)
        return fact

    # -- lookups -----------------------------------------------------------------

    def get(self, x: Value, y: Value) -> Fact | None:
        return self._facts.get((x, y))

    def __contains__(self, pair: tuple[Value, Value]) -> bool:
        return pair in self._facts

    def facts(self) -> Iterator[Fact]:
        """All stored facts, in insertion order."""
        return iter(tuple(self._facts.values()))

    def pairs(self) -> Iterator[tuple[Value, Value]]:
        return iter(tuple(self._facts))

    def __len__(self) -> int:
        return len(self._facts)

    def facts_with_x(self, x: Value) -> tuple[Fact, ...]:
        """Facts whose domain value equals ``x`` exactly."""
        return tuple(self._by_x.get(x, ()))

    def facts_with_y(self, y: Value) -> tuple[Fact, ...]:
        """Facts whose range value equals ``y`` exactly."""
        return tuple(self._by_y.get(y, ()))

    def null_x_facts(self) -> tuple[Fact, ...]:
        """Facts whose domain value is a null."""
        return tuple(self._null_x)

    def null_y_facts(self) -> tuple[Fact, ...]:
        """Facts whose range value is a null."""
        return tuple(self._null_y)

    def image(self, x: Value) -> tuple[Value, ...]:
        """Range values exactly paired with ``x``."""
        return tuple(fact.y for fact in self._by_x.get(x, ()))

    def preimage(self, y: Value) -> tuple[Value, ...]:
        """Domain values exactly paired with ``y``."""
        return tuple(fact.x for fact in self._by_y.get(y, ()))

    def truth_of(self, x: Value, y: Value) -> Truth:
        """Truth of the base fact (x, y): its flag if stored, else FALSE
        ("those not existing in the database are false")."""
        fact = self._facts.get((x, y))
        return fact.truth if fact is not None else Truth.FALSE

    # -- matching (Section 3.2) ---------------------------------------------------

    def matching_x(self, value: Value) -> tuple[list[Fact], list[Fact]]:
        """Facts whose domain value matches ``value``: a pair of lists,
        (exact matches, ambiguous matches).

        Ambiguous matches are facts with a null domain value different
        from ``value``; when ``value`` itself is a null, every fact with
        a different domain value matches ambiguously.
        """
        exact = list(self._by_x.get(value, ()))
        if is_null(value):
            ambiguous = [f for f in self._facts.values() if f.x != value]
        else:
            ambiguous = [f for f in self._null_x if f.x != value]
        return exact, ambiguous

    def matching_y(self, value: Value) -> tuple[list[Fact], list[Fact]]:
        """Like :meth:`matching_x`, over the range column."""
        exact = list(self._by_y.get(value, ()))
        if is_null(value):
            ambiguous = [f for f in self._facts.values() if f.y != value]
        else:
            ambiguous = [f for f in self._null_y if f.y != value]
        return exact, ambiguous

    # -- misc -----------------------------------------------------------------------

    def copy(self) -> "FunctionTable":
        clone = FunctionTable(self.name)
        for fact in self._facts.values():
            clone.add(Fact(fact.x, fact.y, fact.truth, set(fact.ncl)))
        return clone

    def rows(self) -> list[tuple[str, str, str, str]]:
        """Printable rows (x, y, flag, ncl) in insertion order, as the
        Section 4.2 tables show them."""
        return [
            (str(fact.x), str(fact.y), fact.flag, fact.ncl_text())
            for fact in self._facts.values()
        ]

    def __str__(self) -> str:
        header = f"{self.name}:"
        body = "\n".join(
            f"  {x} {y} {flag} {ncl}" for x, y, flag, ncl in self.rows()
        )
        return header + ("\n" + body if body else " (empty)")
