"""Atomic update sequences.

The paper treats a general update request as "a sequence of such simple
updates" (Section 3). :class:`Transaction` makes such a sequence atomic:
it snapshots the instance state (tables, NC registry, null counter) on
entry and restores it if the block raises — so a failed REP, or a
multi-update request interrupted by a constraint violation, leaves no
half-applied state behind.

Snapshots copy the stored facts, which is O(instance); this favours
simplicity and obvious correctness over write-ahead logging, and is
plenty for the workloads the paper contemplates. Schema changes are not
covered — transactions scope *updates*, not design actions.

Note that rolling back swaps fresh table objects into the database:
:class:`repro.fdb.table.FunctionTable` references obtained before the
transaction are stale after a rollback; re-fetch through
``db.table(name)``.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from types import TracebackType

from repro.errors import TransactionError
from repro.faults.registry import FAULTS
from repro.fdb.database import FunctionalDatabase
from repro.fdb.nc import NCRegistry
from repro.fdb.values import NullFactory
from repro.obs.hooks import OBS

__all__ = ["Transaction", "atomic"]


FAULTS.register(
    "txn.commit",
    "Transaction.__exit__: block succeeded, snapshot being discarded",
    durable=True,
)
FAULTS.register(
    "txn.rollback.before-restore",
    "Transaction.__exit__: block failed, state not yet restored",
    durable=True,
)


def _snapshot_state(db: FunctionalDatabase) -> dict:
    """Copy everything a rollback must restore: the stored tables, the
    NC registry and both index counters."""
    return {
        "tables": {name: db.table(name).copy()
                   for name in db.base_names},
        "ncs": dict(db.ncs._ncs),
        "nc_next": db.ncs.next_index,
        "null_next": db.nulls.next_index,
    }


def _restore_state(db: FunctionalDatabase, snapshot: dict) -> None:
    db._tables = snapshot["tables"]
    registry = NCRegistry(db.table, snapshot["nc_next"])
    registry._ncs = snapshot["ncs"]
    db.ncs = registry
    db.nulls = NullFactory(snapshot["null_next"])


class Transaction:
    """Context manager restoring instance state on exception.

    >>> with db.transaction():            # doctest: +SKIP
    ...     db.delete("pupil", "euclid", "john")
    ...     db.insert("pupil", "euclid", "bill")
    """

    def __init__(self, db: FunctionalDatabase) -> None:
        self._db = db
        self._snapshot: dict | None = None

    def __enter__(self) -> "Transaction":
        if self._snapshot is not None:
            raise TransactionError("transaction already entered")
        db = self._db
        me = threading.get_ident()
        with db._txn_guard:
            owner = db._txn_owner
            if owner is not None:
                if owner == me:
                    raise TransactionError(
                        "nested transaction: this thread already holds "
                        "an open transaction on this database (use "
                        "repro.fdb.transaction.atomic() for scopes that "
                        "may run inside a transaction)"
                    )
                raise TransactionError(
                    "concurrent transaction: another thread holds an "
                    "open transaction on this database (route updates "
                    "through repro.service.DatabaseService to serialise "
                    "writers)"
                )
            db._txn_owner = me
        try:
            obs_on = OBS.enabled
            if obs_on:
                OBS.inc("fdb.txn.begun")
                started = time.perf_counter()
            self._snapshot = _snapshot_state(db)
            if obs_on:
                OBS.observe("fdb.txn.snapshot_seconds",
                            time.perf_counter() - started)
        except BaseException:
            with db._txn_guard:
                db._txn_owner = None
            raise
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        snapshot = self._snapshot
        if snapshot is None:
            raise TransactionError("transaction never entered")
        self._snapshot = None
        try:
            if exc_type is None:
                if OBS.enabled:
                    OBS.inc("fdb.txn.committed")
                FAULTS.fire("txn.commit")
                return False
            if OBS.enabled:
                OBS.inc("fdb.txn.rolled_back")
                OBS.event("txn.rollback", reason=exc_type.__name__)
            FAULTS.fire("txn.rollback.before-restore")
            _restore_state(self._db, snapshot)
            return False  # re-raise
        finally:
            with self._db._txn_guard:
                self._db._txn_owner = None


def atomic(db: FunctionalDatabase):
    """An atomic scope that composes: a fresh :class:`Transaction`, or
    a no-op when the calling thread already holds this database's open
    transaction (the enclosing transaction's rollback covers the inner
    scope). Multi-step operations (``REP``, update sequences,
    constraint guards) use this so they are atomic stand-alone *and*
    legal inside a wider transaction such as the WAL's write-ahead
    wrapper."""
    if db._txn_owner == threading.get_ident():
        return nullcontext()
    return Transaction(db)
