"""Atomic update sequences.

The paper treats a general update request as "a sequence of such simple
updates" (Section 3). :class:`Transaction` makes such a sequence atomic:
it snapshots the instance state (tables, NC registry, null counter) on
entry and restores it if the block raises — so a failed REP, or a
multi-update request interrupted by a constraint violation, leaves no
half-applied state behind.

Snapshots copy the stored facts, which is O(instance); this favours
simplicity and obvious correctness over write-ahead logging, and is
plenty for the workloads the paper contemplates. Schema changes are not
covered — transactions scope *updates*, not design actions.

Note that rolling back swaps fresh table objects into the database:
:class:`repro.fdb.table.FunctionTable` references obtained before the
transaction are stale after a rollback; re-fetch through
``db.table(name)``.
"""

from __future__ import annotations

import time
from types import TracebackType

from repro.errors import TransactionError
from repro.faults.registry import FAULTS
from repro.fdb.database import FunctionalDatabase
from repro.fdb.nc import NCRegistry
from repro.fdb.values import NullFactory
from repro.obs.hooks import OBS

__all__ = ["Transaction"]


FAULTS.register(
    "txn.commit",
    "Transaction.__exit__: block succeeded, snapshot being discarded",
    durable=True,
)
FAULTS.register(
    "txn.rollback.before-restore",
    "Transaction.__exit__: block failed, state not yet restored",
    durable=True,
)


def _snapshot_state(db: FunctionalDatabase) -> dict:
    """Copy everything a rollback must restore: the stored tables, the
    NC registry and both index counters."""
    return {
        "tables": {name: db.table(name).copy()
                   for name in db.base_names},
        "ncs": dict(db.ncs._ncs),
        "nc_next": db.ncs.next_index,
        "null_next": db.nulls.next_index,
    }


def _restore_state(db: FunctionalDatabase, snapshot: dict) -> None:
    db._tables = snapshot["tables"]
    registry = NCRegistry(db.table, snapshot["nc_next"])
    registry._ncs = snapshot["ncs"]
    db.ncs = registry
    db.nulls = NullFactory(snapshot["null_next"])


class Transaction:
    """Context manager restoring instance state on exception.

    >>> with db.transaction():            # doctest: +SKIP
    ...     db.delete("pupil", "euclid", "john")
    ...     db.insert("pupil", "euclid", "bill")
    """

    def __init__(self, db: FunctionalDatabase) -> None:
        self._db = db
        self._snapshot: dict | None = None

    def __enter__(self) -> "Transaction":
        if self._snapshot is not None:
            raise TransactionError("transaction already entered")
        obs_on = OBS.enabled
        if obs_on:
            OBS.inc("fdb.txn.begun")
            started = time.perf_counter()
        self._snapshot = _snapshot_state(self._db)
        if obs_on:
            OBS.observe("fdb.txn.snapshot_seconds",
                        time.perf_counter() - started)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        snapshot = self._snapshot
        if snapshot is None:
            raise TransactionError("transaction never entered")
        self._snapshot = None
        if exc_type is None:
            if OBS.enabled:
                OBS.inc("fdb.txn.committed")
            FAULTS.fire("txn.commit")
            return False
        if OBS.enabled:
            OBS.inc("fdb.txn.rolled_back")
            OBS.event("txn.rollback", reason=exc_type.__name__)
        FAULTS.fire("txn.rollback.before-restore")
        _restore_state(self._db, snapshot)
        return False  # re-raise
