"""The update algorithms of Section 4.1.

Base updates act directly on the stored tables; derived updates create
or resolve partial information:

* ``base-insert`` stores the fact true, or — if already present —
  dismantles every NC it belongs to and sets its flag to T (an insert
  asserts the fact's truth, so no conjunction containing it can remain
  a justification for ambiguity);
* ``base-delete`` dismantles the fact's NCs and removes the row
  (asserting falsity resolves the fact's own ambiguity; clause (3) of
  the delete semantics keeps the *other* members of those NCs
  ambiguous, which dismantle-NC respects by not touching their flags);
* ``derived-insert`` re-truthifies an existing NVC of the fact or
  creates a fresh one;
* ``derived-delete`` turns each chain currently deriving the fact into
  a negated conjunction.

:func:`insert`, :func:`delete` and :func:`replace` dispatch on base vs
derived; :class:`Update` is a value object for whole update streams
(workload generators and benches speak it).

Three documented refinements of the paper's pseudocode (degenerate
cases its example never reaches):

* a derived insert of a fact that is *already true* is a no-op — the
  semantics say "sigma is true; no other changes", and the fact already
  is;
* ``derived-delete`` skips chains whose conjunction is already known
  false (the chain's fact set is a superset of a live NC) — negating
  them again would add a weaker, redundant NC. This also makes derived
  deletes idempotent;
* a *one-fact* chain carries no ambiguity: the negation of a one-fact
  conjunction is the falsity of that fact, so ``derived-delete`` over a
  single-step derivation performs the corresponding ``base-delete``
  instead of creating a one-member NC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import cancel
from repro.errors import UpdateError
from repro.fdb.database import FunctionalDatabase
from repro.fdb.evaluate import iter_chains, truth_of_derived
from repro.fdb.logic import Truth
from repro.fdb.nvc import clean_up_nvc, create_nvc, exists_nvc
from repro.fdb.transaction import atomic
from repro.fdb.values import Value, format_value
from repro.obs.hooks import OBS

__all__ = [
    "base_insert",
    "base_delete",
    "derived_insert",
    "derived_delete",
    "insert",
    "delete",
    "replace",
    "Update",
    "apply_update",
    "UpdateSequence",
    "apply_sequence",
]


# -- base updates -------------------------------------------------------------


def base_insert(db: FunctionalDatabase, name: str, x: Value, y: Value) -> None:
    """Procedure ``base-insert(f, x, y)``."""
    table = db.table(name)
    fact = table.get(x, y)
    obs_on = OBS.enabled
    if obs_on:
        OBS.inc("fdb.updates.base_insert")
        OBS.event("base.insert", function=name, x=x, y=y)
    if fact is None:
        table.add_pair(x, y, Truth.TRUE)
        return
    for index in sorted(fact.ncl):
        if obs_on:
            OBS.event("nc.dismantled", index=f"g{index}", cause="insert")
        db.ncs.dismantle(index)
    fact.truth = Truth.TRUE


def base_delete(db: FunctionalDatabase, name: str, x: Value, y: Value) -> None:
    """Procedure ``base-delete(f, x, y)`` (absent fact: no-op — it is
    already false)."""
    table = db.table(name)
    fact = table.get(x, y)
    if fact is None:
        return
    obs_on = OBS.enabled
    if obs_on:
        OBS.inc("fdb.updates.base_delete")
        OBS.event("base.delete", function=name, x=x, y=y)
    for index in sorted(fact.ncl):
        if obs_on:
            OBS.event("nc.dismantled", index=f"g{index}", cause="delete")
        db.ncs.dismantle(index)
    table.discard(x, y)


# -- derived updates ------------------------------------------------------------


def derived_insert(db: FunctionalDatabase, name: str, x: Value, y: Value) -> None:
    """Procedure ``derived-insert(f, x, y)``.

    Per derivation (all of them in ``insert_mode='all'``, just the
    primary in ``'primary'`` mode): reuse and truthify an existing NVC,
    or create a fresh one.
    """
    derived = db.derived(name)
    obs_on = OBS.enabled
    if truth_of_derived(db, name, x, y) is Truth.TRUE:
        if obs_on:
            OBS.event("insert.already_true", function=name, x=x, y=y)
        return
    if obs_on:
        OBS.inc("fdb.updates.derived_insert")
    if db.insert_mode == "primary":
        derivations = (derived.primary,)
    else:
        derivations = derived.derivations
    for derivation in derivations:
        chain = exists_nvc(db, derivation, x, y)
        if chain is not None:
            if obs_on:
                OBS.inc("fdb.nvc.reused")
                OBS.event("nvc.reused", derivation=str(derivation),
                          chain=str(chain))
            clean_up_nvc(db, chain)
        else:
            created = create_nvc(db, derivation, x, y)
            if obs_on:
                OBS.event("nvc.created", derivation=str(derivation),
                          facts=len(created))


def derived_delete(db: FunctionalDatabase, name: str, x: Value, y: Value) -> None:
    """Procedure ``derived-delete(f, x, y)``: create an NC for each
    exactly-matching chain deriving the fact, across every confirmed
    derivation. A fact no chain derives is already false: no-op.
    """
    derived = db.derived(name)
    chains = [
        chain
        for derivation in derived.derivations
        for chain in iter_chains(db, derivation, x, y, allow_ambiguous=False)
    ]
    obs_on = OBS.enabled
    if obs_on:
        OBS.inc("fdb.updates.derived_delete")
        OBS.event("chains.matched", function=name, count=len(chains))
    for chain in chains:
        # Cancellation boundary: each chain's side-effects (a delete or
        # an NC) are complete before the next checkpoint may abort.
        cancel.checkpoint()
        if obs_on:
            OBS.event("chain.evaluated", chain=str(chain))
        conjuncts = chain.conjuncts()
        if len(conjuncts) == 1:
            # A one-fact "conjunction" being false is just that fact
            # being false: no ambiguity arises, so delete it outright
            # (taught_by = teach^-1 deletes translate to teach deletes).
            if obs_on:
                OBS.event("chain.single_fact", chain=str(chain))
            function, fact = conjuncts[0]
            base_delete(db, function, fact.x, fact.y)
            continue
        still_stored = all(
            db.table(function).get(fact.x, fact.y) is fact
            for function, fact in conjuncts
        )
        if not still_stored:
            # A one-fact chain above already deleted a fact this chain
            # shares; its conjunction is false without an NC.
            if obs_on:
                OBS.event("chain.stale", chain=str(chain))
            continue
        if chain.is_known_false(db):
            if obs_on:
                OBS.event("chain.already_false", chain=str(chain))
            continue
        nc = db.ncs.create(conjuncts)
        if obs_on:
            OBS.event("nc.created", index=f"g{nc.index}", chain=str(chain))


# -- dispatching front door ---------------------------------------------------------


def _update_cause() -> str:
    """The update id for a front-door span: inherited when we are a
    step inside an enclosing update (a replace's delete, a WAL replay),
    freshly allocated when this is a new user-level update."""
    return OBS.current_cause() or OBS.new_update_id()


def insert(db: FunctionalDatabase, name: str, x: Value, y: Value) -> None:
    """INS(f, <x, y>)."""
    cancel.checkpoint()
    if OBS.enabled:
        OBS.inc("fdb.updates.insert")
        with OBS.span("update.insert", key=name, cause=_update_cause(),
                      slow_detail=lambda: _update_detail(db, name),
                      function=name, x=x, y=y):
            _dispatch_insert(db, name, x, y)
        return
    _dispatch_insert(db, name, x, y)


def _update_detail(db: FunctionalDatabase, name: str) -> dict:
    # Lazy import: explain imports database/evaluate, which import this
    # module's siblings; deferring breaks the cycle. Only slow spans
    # ever call this.
    from repro.fdb.explain import derived_breakdown

    return derived_breakdown(db, name)


def _dispatch_insert(db: FunctionalDatabase, name: str,
                     x: Value, y: Value) -> None:
    if db.is_base(name):
        base_insert(db, name, x, y)
    else:
        derived_insert(db, name, x, y)


def delete(db: FunctionalDatabase, name: str, x: Value, y: Value) -> None:
    """DEL(f, <x, y>)."""
    cancel.checkpoint()
    if OBS.enabled:
        OBS.inc("fdb.updates.delete")
        with OBS.span("update.delete", key=name, cause=_update_cause(),
                      slow_detail=lambda: _update_detail(db, name),
                      function=name, x=x, y=y):
            _dispatch_delete(db, name, x, y)
        return
    _dispatch_delete(db, name, x, y)


def _dispatch_delete(db: FunctionalDatabase, name: str,
                     x: Value, y: Value) -> None:
    if db.is_base(name):
        base_delete(db, name, x, y)
    else:
        derived_delete(db, name, x, y)


def replace(
    db: FunctionalDatabase,
    name: str,
    old: tuple[Value, Value],
    new: tuple[Value, Value],
) -> None:
    """REP(f, <x1, y1>, <x2, y2>): atomic delete of the old pair and
    insert of the new one (Section 3 lists replace as the third update
    type; its semantics follow from the other two)."""
    # atomic(), not db.transaction(): a REP arriving through the WAL's
    # write-ahead wrapper already runs inside that wrapper's
    # transaction, and a second snapshot would be misuse.
    cancel.checkpoint()
    if OBS.enabled:
        OBS.inc("fdb.updates.replace")
        with OBS.span("update.replace", key=name, cause=_update_cause(),
                      slow_detail=lambda: _update_detail(db, name),
                      function=name):
            with atomic(db):
                delete(db, name, *old)
                insert(db, name, *new)
        return
    with atomic(db):
        delete(db, name, *old)
        insert(db, name, *new)


# -- update streams --------------------------------------------------------------


@dataclass(frozen=True)
class Update:
    """One simple update, as in Section 3: a general update request is a
    sequence of these."""

    kind: str  # "INS" | "DEL" | "REP"
    function: str
    pair: tuple[Value, Value]
    new_pair: tuple[Value, Value] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("INS", "DEL", "REP"):
            raise UpdateError(f"unknown update kind {self.kind!r}")
        if (self.kind == "REP") != (self.new_pair is not None):
            raise UpdateError("REP takes two pairs; INS/DEL take one")

    def __str__(self) -> str:
        # format_value keeps indexed nulls printing as n<i> even inside
        # product-type tuples, so update strings are diffable across
        # runs that issue the same null indices.
        x, y = (format_value(v) for v in self.pair)
        if self.kind == "REP":
            assert self.new_pair is not None
            x2, y2 = (format_value(v) for v in self.new_pair)
            return f"REP({self.function}, <{x}, {y}>, <{x2}, {y2}>)"
        return f"{self.kind}({self.function}, <{x}, {y}>)"

    @classmethod
    def ins(cls, function: str, x: Value, y: Value) -> "Update":
        return cls("INS", function, (x, y))

    @classmethod
    def delete(cls, function: str, x: Value, y: Value) -> "Update":
        return cls("DEL", function, (x, y))

    @classmethod
    def rep(cls, function: str, old: tuple[Value, Value],
            new: tuple[Value, Value]) -> "Update":
        return cls("REP", function, old, new)


def apply_update(db: FunctionalDatabase, update: Update) -> None:
    """Execute one :class:`Update` against the database."""
    if update.kind == "INS":
        insert(db, update.function, *update.pair)
    elif update.kind == "DEL":
        delete(db, update.function, *update.pair)
    else:
        assert update.new_pair is not None
        replace(db, update.function, update.pair, update.new_pair)


@dataclass(frozen=True)
class UpdateSequence:
    """A general update request: "a general update request can be
    viewed as a sequence of such simple updates" (Section 3). Executed
    atomically — all or nothing."""

    updates: tuple[Update, ...]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.updates:
            raise UpdateError("an update sequence needs at least one "
                              "update")

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self):
        return iter(self.updates)

    def __str__(self) -> str:
        name = f" {self.label}" if self.label else ""
        inner = "; ".join(str(u) for u in self.updates)
        return f"BEGIN{name} {{ {inner} }}"


def apply_sequence(db: FunctionalDatabase,
                   sequence: UpdateSequence) -> None:
    """Execute a general update request atomically."""
    with atomic(db):
        for update in sequence:
            apply_update(db, update)
