"""Data values and uniquely indexed null values.

Section 3.2: when a derived insert requires intermediate objects whose
identity is unknown, the paper "resorts to null values [12] ... where
n1 is a uniquely indexed null value". Two nulls are the same value iff
they carry the same index; a null never equals a non-null.

The same section defines the matching rules used when composing chains
of base facts:

    "Two facts <x, y>, <u, v> match exactly if y = u, and match
    ambiguously if y != u and (y is a null value or u is a null value).
    Note that y = u iff both are non-null and y and u are the same data
    item, or both are null values with same index."

Ordinary data values are arbitrary hashable Python objects (strings in
all the paper's examples; tuples for objects of product types such as
``(john, math)`` in the domain ``[student; course]``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterator

__all__ = [
    "Value",
    "NullValue",
    "NullFactory",
    "is_null",
    "format_value",
    "match_exactly",
    "match_ambiguously",
]

Value = Hashable
"""A database value: any hashable object; nulls are :class:`NullValue`."""


@dataclass(frozen=True, slots=True)
class NullValue:
    """A uniquely indexed null, printed ``n1``, ``n2``, ...

    Dataclass equality compares indices, giving exactly the paper's
    rule: two nulls are equal iff same index.
    """

    index: int

    def __str__(self) -> str:
        return f"n{self.index}"

    def __repr__(self) -> str:
        return f"NullValue({self.index})"


class NullFactory:
    """Generates fresh uniquely indexed nulls for one database.

    The factory is the single source of null indices, so uniqueness
    holds database-wide; the counter is part of persisted snapshots.
    """

    def __init__(self, next_index: int = 1) -> None:
        if next_index < 1:
            raise ValueError("null indices start at 1")
        self._counter = itertools.count(next_index)
        self._next_preview = next_index

    def fresh(self) -> NullValue:
        index = next(self._counter)
        self._next_preview = index + 1
        return NullValue(index)

    def fresh_many(self, count: int) -> Iterator[NullValue]:
        for _ in range(count):
            yield self.fresh()

    @property
    def next_index(self) -> int:
        """The index the next :meth:`fresh` call will use."""
        return self._next_preview


def is_null(value: Value) -> bool:
    return isinstance(value, NullValue)


def format_value(value: Value) -> str:
    """Render a value the paper's way, stably across runs.

    Indexed nulls print as ``n1`` even inside product-type tuples
    (``str`` of a tuple would fall back to ``repr`` and print
    ``NullValue(1)``), so update strings, traces and journal output are
    diffable between runs that issue the same null indices.
    """
    if isinstance(value, NullValue):
        return str(value)
    if isinstance(value, tuple):
        return "(" + ", ".join(format_value(item) for item in value) + ")"
    return str(value)


def match_exactly(left: Value, right: Value) -> bool:
    """The paper's exact match: equal data items, or nulls with the
    same index."""
    return left == right


def match_ambiguously(left: Value, right: Value) -> bool:
    """The paper's ambiguous match: unequal, but at least one side is a
    null value (so equality cannot be ruled out)."""
    return left != right and (is_null(left) or is_null(right))


def matches(left: Value, right: Value) -> bool:
    """Exact or ambiguous match."""
    return match_exactly(left, right) or match_ambiguously(left, right)
