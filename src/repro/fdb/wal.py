"""Write-ahead logging and recovery.

Base functions are "extensionally stored" (Section 1); a database that
loses or corrupts its extension on a crash is not stored at all. This
module adds the classic durability pair on top of
:mod:`repro.fdb.persistence` snapshots:

* :class:`UpdateLog` — an append-only JSON-lines file of updates.
  :class:`LoggedDatabase` wraps a database so every update is logged
  *before* it is applied (write-ahead order); update application is
  deterministic (null and NC indices come from persisted counters), so
  replaying the log over the last snapshot reproduces the state
  exactly — partial information included.

* :func:`checkpoint` / :func:`recover` — fold the log into a durable
  snapshot; rebuild a database from snapshot + log after a crash.

**Record format (v2).** Each line is one JSON object::

    {"v": 2, "seq": 7, "crc": 2893417301, "entry": {...}}

``crc`` is the CRC32 of the canonical encoding of everything but ``v``
and ``crc`` themselves, so a record that was *mutated but still
parses* is detected instead of silently replayed; ``seq`` numbers are
strictly increasing and survive checkpoints (the truncated log keeps a
header record carrying the next sequence number). Besides ``entry``
records there are ``abort_of`` records — compensation for an update
that was durably logged but failed to apply — and the ``header``
record. Legacy (v1) lines, bare update objects with neither checksum
nor sequence number, are still replayed.

**Crash consistency.** Appends go through
:func:`repro.fdb.storage.append_line` (flush + fsync before the append
is acknowledged) and snapshots through
:func:`repro.fdb.storage.atomic_write` (temp file + fsync + atomic
rename + directory fsync). :func:`checkpoint` writes the snapshot
durably *first* — stamped with the highest folded sequence number —
and only then truncates the log via an atomic rename; a crash between
the two leaves both files intact, and :func:`recover` skips records
the snapshot already contains by sequence number instead of replaying
them twice.

**Recovery policies.** ``recover(..., policy="strict")`` raises on any
interior damage (checksum mismatch, unparseable interior line,
sequence gap); ``policy="salvage"`` skips damaged records, keeps
going, and itemises everything it skipped in the returned
:class:`RecoveryReport`. A torn *final* line — the classic mid-write
crash — is skipped under both policies, because an unacknowledged
append never committed.

Named fault points (see :mod:`repro.faults`) are threaded through the
append, apply, abort and checkpoint steps; the crash-matrix harness in
:mod:`repro.faults.harness` kills the process at every one of them and
asserts recovery reproduces exactly the committed prefix.
"""

from __future__ import annotations

import json
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro import cancel
from repro.errors import PersistenceError
from repro.faults.registry import FAULTS
from repro.fdb import persistence, storage
from repro.fdb.database import FunctionalDatabase
from repro.fdb.persistence import _decode_value, _encode_value
from repro.fdb.transaction import Transaction
from repro.fdb.updates import (
    Update,
    UpdateSequence,
    apply_sequence,
    apply_update,
)
from repro.fdb.values import Value
from repro.obs.hooks import OBS

__all__ = ["UpdateLog", "LoggedDatabase", "checkpoint", "recover",
           "RecoveryReport", "LogRecord", "LogProblem", "WAL_VERSION"]

WAL_VERSION = 2


FAULTS.register(
    "wal.append.before",
    "UpdateLog.append: before the record write (retry site for "
    "transient I/O errors)",
)
FAULTS.register(
    "wal.append.after",
    "UpdateLog.append: record durable, update not yet applied",
    durable=True,
)
FAULTS.register(
    "wal.apply.before",
    "LoggedDatabase.execute: record durable, about to apply in memory",
    durable=True,
)
FAULTS.register(
    "wal.abort.append",
    "LoggedDatabase.execute: apply failed, compensating abort record "
    "not yet written",
    durable=True,
)
FAULTS.register(
    "wal.checkpoint.before-snapshot",
    "checkpoint: before the snapshot write",
)
FAULTS.register(
    "wal.checkpoint.after-snapshot",
    "checkpoint: snapshot durable, log not yet truncated",
)
FAULTS.register(
    "wal.checkpoint.after-truncate",
    "checkpoint: snapshot durable and log truncated",
)


# -- entry encoding -----------------------------------------------------------


def _encode_update(update: Update) -> dict:
    entry = {
        "kind": update.kind,
        "function": update.function,
        "pair": [_encode_value(update.pair[0]),
                 _encode_value(update.pair[1])],
    }
    if update.new_pair is not None:
        entry["new_pair"] = [
            _encode_value(update.new_pair[0]),
            _encode_value(update.new_pair[1]),
        ]
    return entry


def _decode_update(entry: dict) -> Update:
    pair = tuple(_decode_value(item) for item in entry["pair"])
    new_pair = None
    if "new_pair" in entry:
        new_pair = tuple(
            _decode_value(item) for item in entry["new_pair"]
        )
    return Update(entry["kind"], entry["function"], pair, new_pair)


def _encode_entry(update: Update | UpdateSequence) -> dict:
    if isinstance(update, UpdateSequence):
        return {
            "kind": "SEQ",
            "label": update.label,
            "updates": [_encode_update(u) for u in update],
        }
    return _encode_update(update)


def _decode_entry(entry: dict) -> Update | UpdateSequence:
    if entry.get("kind") == "SEQ":
        return UpdateSequence(
            tuple(_decode_update(u) for u in entry["updates"]),
            label=entry.get("label", ""),
        )
    return _decode_update(entry)


# -- record framing -----------------------------------------------------------


def _crc_of(payload: dict) -> int:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(blob.encode("utf-8")) & 0xFFFFFFFF


def _frame(payload: dict) -> str:
    """One v2 log line: the payload plus version and checksum."""
    record = dict(payload)
    record["v"] = WAL_VERSION
    record["crc"] = _crc_of(payload)
    return json.dumps(record, sort_keys=True)


@dataclass(frozen=True)
class LogRecord:
    """One decoded, checksum-verified log record."""

    line_no: int
    seq: int | None  # None for legacy (v1) records
    entry: Update | UpdateSequence | None  # None for abort/header
    abort_of: int | None = None
    legacy: bool = False
    term: int = 0  # replication epoch; 0 before any failover


@dataclass(frozen=True)
class LogProblem:
    """One damaged or suspicious spot found while scanning the log."""

    line_no: int
    kind: str  # "torn-tail" | "checksum" | "parse" | "gap"
    detail: str

    def __str__(self) -> str:
        return f"line {self.line_no}: {self.kind} ({self.detail})"


@dataclass
class LogScan:
    """Everything one pass over the log produced."""

    records: list[LogRecord] = field(default_factory=list)
    problems: list[LogProblem] = field(default_factory=list)
    aborted: set[int] = field(default_factory=set)
    base_seq: int = 0  # from a header record, if present
    base_term: int = 0  # from a header record, if present
    torn_tail: bool = False
    checksum_failures: int = 0
    legacy_records: int = 0

    @property
    def max_seq(self) -> int:
        seqs = [r.seq for r in self.records if r.seq is not None]
        return max(seqs, default=self.base_seq)

    @property
    def max_term(self) -> int:
        terms = [r.term for r in self.records]
        return max(terms, default=self.base_term)


class UpdateLog:
    """Append-only, checksummed JSON-lines log of updates.

    Every acknowledged append is fsync'd (``fsync=False`` trades the
    power-loss guarantee for speed); transient ``OSError`` during the
    write is retried ``retries`` times with exponential backoff before
    giving up.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True,
                 retries: int = 3, backoff: float = 0.005,
                 term: int = 0) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.retries = retries
        self.backoff = backoff
        # Replication epoch stamped into every subsequent record; 0
        # (the default, and the value of every pre-replication log)
        # is omitted from the frame so single-node logs stay
        # byte-identical to v2 before terms existed.
        self.term = term
        self._next_seq: int | None = None  # lazy: scanned on first use
        self._cache: tuple[int, int] | None = None  # (file size, count)
        # health(): scan results keyed on (size, mtime_ns) so /metrics
        # and /health scrapes don't rescan a quiescent log.
        self._health_cache: tuple[tuple[int, int], dict] | None = None
        self._seq_lock = threading.Lock()

    def _payload(self, payload: dict) -> dict:
        if self.term:
            payload["term"] = self.term
        return payload

    # -- appending ----------------------------------------------------------

    def append(self, update: Update | UpdateSequence) -> int:
        """Durably append one update record; returns its sequence
        number."""
        # Cancellation boundary: *before* the sequence number is
        # claimed. Once the record write starts, the append runs to
        # completion (or fails on its own terms) — a deadline must not
        # be able to leave a claimed-but-unwritten sequence number.
        cancel.checkpoint()
        seq = self._claim_seq()
        line = _frame(self._payload(
            {"seq": seq, "entry": _encode_entry(update)}
        ))
        if not OBS.enabled:
            self._write_claimed(seq, line)
            self._note_appended(committed=1)
            return seq
        # Instrumented path: count appends and time the full durable
        # write (open + write + flush + fsync), the WAL's ack cost.
        OBS.inc("fdb.wal.appends")
        started = time.perf_counter()
        self._write_claimed(seq, line)
        OBS.observe("fdb.wal.append_seconds",
                    time.perf_counter() - started)
        OBS.gauge("fdb.wal.last_seq", seq)
        OBS.event("wal.append", entry=str(update))
        self._note_appended(committed=1)
        return seq

    def append_abort(self, seq: int) -> None:
        """Compensate a record that was logged but never applied.

        Never checkpointed for cancellation: compensation must run even
        (especially) when the request that needs it is past deadline.
        """
        abort_seq = self._claim_seq()
        line = _frame(self._payload(
            {"seq": abort_seq, "abort_of": seq}
        ))
        self._write_claimed(abort_seq, line)
        if OBS.enabled:
            OBS.inc("fdb.wal.aborts")
            OBS.event("wal.abort", aborted_seq=seq)
        # The aborted entry no longer counts as committed.
        self._note_appended(committed=-1)

    def _claim_seq(self) -> int:
        with self._seq_lock:
            if self._next_seq is None:
                self._next_seq = self._scan("salvage").max_seq + 1
            seq = self._next_seq
            self._next_seq += 1
            return seq

    def _write_claimed(self, seq: int, line: str) -> None:
        """Write a record whose sequence number is already claimed,
        unclaiming it if the write never lands.

        Without the rollback, a failed write (retries exhausted during
        a storage outage) would leave ``_next_seq`` advanced past a
        record that does not exist, and the next successful append
        would commit a sequence *gap* — which strict recovery rightly
        refuses to replay.
        """
        try:
            self._write_line(line)
        except BaseException:
            with self._seq_lock:
                if self._next_seq == seq + 1:
                    self._next_seq = seq
            raise

    def _write_line(self, line: str) -> None:
        """The durable write, with transient-error retry."""
        attempt = 0
        while True:
            try:
                FAULTS.fire("wal.append.before")
                storage.append_line(self.path, line, fsync=self.fsync)
                FAULTS.fire("wal.append.after")
                return
            except OSError as exc:
                if attempt >= self.retries:
                    raise PersistenceError(
                        f"log append failed after "
                        f"{attempt + 1} attempts: {exc}"
                    ) from exc
                if OBS.enabled:
                    OBS.inc("fdb.wal.retries")
                time.sleep(self.backoff * (2 ** attempt))
                attempt += 1

    def _note_appended(self, committed: int) -> None:
        if self._cache is not None:
            try:
                size = self.path.stat().st_size
            except OSError:
                self._cache = None
                return
            self._cache = (size, self._cache[1] + committed)

    # -- scanning -----------------------------------------------------------

    def _scan(self, policy: str) -> LogScan:
        """One streaming pass: decode, verify checksums, track
        sequence numbers, classify damage.

        ``strict`` raises on interior damage; ``salvage`` records the
        problem and skips the record. A final line that fails to parse
        is a torn tail under both policies — that append was never
        acknowledged.
        """
        scan = LogScan()
        if not self.path.exists():
            return scan
        pending: LogProblem | None = None  # unparsed line, maybe a tear
        last_seq: int | None = None
        with self.path.open("r", encoding="utf-8") as handle:
            for line_no, raw_line in enumerate(handle, 1):
                line = raw_line.strip()
                if not line:
                    continue
                if pending is not None:
                    # Valid data follows the bad line: interior damage,
                    # not a tear.
                    self._problem(scan, policy, pending)
                    pending = None
                try:
                    raw = json.loads(line)
                except json.JSONDecodeError as exc:
                    pending = LogProblem(line_no, "parse", str(exc))
                    continue
                if not isinstance(raw, dict):
                    pending = LogProblem(line_no, "parse",
                                         "not a JSON object")
                    continue
                if "v" not in raw:
                    record = self._decode_legacy(raw, line_no)
                    if record is None:
                        pending = LogProblem(
                            line_no, "parse", "undecodable legacy record"
                        )
                        continue
                    scan.legacy_records += 1
                    scan.records.append(record)
                    continue
                record = self._decode_v2(raw, line_no, scan, policy)
                if record is None:
                    continue
                if record.seq is not None:
                    reference = (last_seq if last_seq is not None
                                 else scan.base_seq)
                    if record.seq != reference + 1:
                        self._problem(scan, policy, LogProblem(
                            line_no, "gap",
                            f"sequence {record.seq} after {reference}",
                        ))
                    last_seq = record.seq
                if record.abort_of is not None:
                    scan.aborted.add(record.abort_of)
                scan.records.append(record)
        if pending is not None:
            scan.torn_tail = True
            scan.problems.append(LogProblem(
                pending.line_no, "torn-tail", pending.detail
            ))
        return scan

    def _decode_v2(self, raw: dict, line_no: int, scan: LogScan,
                   policy: str) -> LogRecord | None:
        if raw.get("v") != WAL_VERSION:
            self._problem(scan, policy, LogProblem(
                line_no, "parse",
                f"unsupported record version {raw.get('v')!r}",
            ))
            return None
        payload = {k: v for k, v in raw.items() if k not in ("v", "crc")}
        if raw.get("crc") != _crc_of(payload):
            scan.checksum_failures += 1
            if OBS.enabled:
                OBS.inc("fdb.wal.checksum_failures")
            self._problem(scan, policy, LogProblem(
                line_no, "checksum",
                f"stored {raw.get('crc')!r} != computed "
                f"{_crc_of(payload)}",
            ))
            return None
        seq = payload.get("seq")
        if not isinstance(seq, int):
            self._problem(scan, policy, LogProblem(
                line_no, "parse", "record lacks a sequence number"
            ))
            return None
        term = payload.get("term", 0)
        if not isinstance(term, int):
            self._problem(scan, policy, LogProblem(
                line_no, "parse", f"non-integer term {term!r}"
            ))
            return None
        if "header" in payload:
            scan.base_seq = payload["header"].get("next_seq", 1) - 1
            scan.base_term = payload["header"].get("term", term)
            return LogRecord(line_no, None, None, term=term)
        if "abort_of" in payload:
            return LogRecord(line_no, seq, None,
                             abort_of=payload["abort_of"], term=term)
        try:
            entry = _decode_entry(payload["entry"])
        except (KeyError, TypeError, ValueError) as exc:
            # The checksum matched, so the record is as written and
            # the writer produced something this reader cannot decode:
            # a version/logic bug, not disk damage. Always fatal.
            raise PersistenceError(
                f"undecodable log entry at line {line_no}: {exc}"
            ) from exc
        return LogRecord(line_no, seq, entry, term=term)

    @staticmethod
    def _decode_legacy(raw: dict, line_no: int) -> LogRecord | None:
        try:
            return LogRecord(line_no, None, _decode_entry(raw),
                             legacy=True)
        except (KeyError, TypeError, ValueError):
            return None

    @staticmethod
    def _problem(scan: LogScan, policy: str,
                 problem: LogProblem) -> None:
        if policy == "strict":
            raise PersistenceError(f"corrupt log: {problem}")
        scan.problems.append(problem)

    # -- reading ------------------------------------------------------------

    def scan(self, policy: str = "strict") -> LogScan:
        """Scan the whole log under a recovery policy (see module
        docstring)."""
        if policy not in ("strict", "salvage"):
            raise ValueError(
                f"policy must be 'strict' or 'salvage', not {policy!r}"
            )
        return self._scan(policy)

    def entries(self) -> Iterator[Update | UpdateSequence]:
        """Committed entries in order: torn tails and aborted records
        are skipped, interior corruption raises (strict policy)."""
        scan = self._scan("strict")
        for record in scan.records:
            if record.entry is None:
                continue
            if record.seq is not None and record.seq in scan.aborted:
                continue
            yield record.entry

    @property
    def tail_is_torn(self) -> bool:
        """Whether the final line is an unparseable fragment (the
        mid-write crash signature). Reads only the file's tail."""
        line = self._last_nonblank_line()
        if line is None:
            return False
        try:
            raw = json.loads(line)
        except json.JSONDecodeError:
            return True
        if not isinstance(raw, dict):
            return True
        if "v" in raw:
            # A parseable v2 record is never a tear; a bad checksum
            # there is corruption, which scan()/recover() report.
            return False
        return self._decode_legacy(raw, 0) is None

    def _last_nonblank_line(self, block: int = 4096) -> str | None:
        """The last non-blank line, read backwards in blocks."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return None
        if size == 0:
            return None
        with self.path.open("rb") as handle:
            buffer = b""
            position = size
            while position > 0:
                step = min(block, position)
                position -= step
                handle.seek(position)
                buffer = handle.read(step) + buffer
                stripped = buffer.rstrip()
                if not stripped:
                    continue  # trailing blank lines; keep reading back
                # The final line is fully buffered once a newline
                # precedes it, or the buffer reaches the file start.
                if position == 0 or b"\n" in stripped:
                    return (stripped.split(b"\n")[-1].strip()
                            .decode("utf-8", errors="replace"))
        return None

    def last_seq(self) -> int:
        """The highest sequence number ever claimed in this log
        generation (0 for a fresh or legacy log)."""
        if self._next_seq is None:
            self._next_seq = self._scan("salvage").max_seq + 1
        return self._next_seq - 1

    # -- shipping -----------------------------------------------------------

    def records_between(self, lo: int, hi: int) -> list[tuple[int, str]]:
        """The raw framed lines of every v2 record with sequence
        number in ``(lo, hi]``, in order — what :class:`WalShipper
        <repro.replication.shipper.WalShipper>` streams to replicas.

        Header records (checkpoint bookkeeping, meaningless off this
        node) and damaged lines are skipped; abort records ship, so a
        replica's log stays a byte-for-byte prefix copy of the
        primary's record stream. Returns fewer records than requested
        when a checkpoint already folded part of the range into the
        snapshot (``base_seq > lo``) — the caller must then fall back
        to snapshot shipping.
        """
        if hi <= lo:
            return []
        out: list[tuple[int, str]] = []
        if not self.path.exists():
            return out
        with self.path.open("r", encoding="utf-8") as handle:
            for raw_line in handle:
                line = raw_line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                except json.JSONDecodeError:
                    continue  # damaged or torn; scan() classifies it
                if not isinstance(raw, dict) or raw.get("v") != WAL_VERSION:
                    continue
                if "header" in raw:
                    continue
                seq = raw.get("seq")
                if isinstance(seq, int) and lo < seq <= hi:
                    out.append((seq, line))
        return out

    def shippable_floor(self) -> int:
        """The highest sequence number already folded away by a
        checkpoint: records at or below it cannot be shipped from this
        log and require snapshot catch-up."""
        return self._scan("salvage").base_seq

    # -- repair -------------------------------------------------------------

    def truncate_to(self, seq: int) -> int:
        """Atomically drop every record with a sequence number above
        ``seq`` (the fencing repair: a rejoining deposed primary cuts
        its unacknowledged tail back to the prefix the new primary's
        history extends). Returns how many records were dropped."""
        if not self.path.exists():
            return 0
        kept: list[str] = []
        dropped = 0
        with self.path.open("r", encoding="utf-8") as handle:
            for raw_line in handle:
                line = raw_line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                except json.JSONDecodeError:
                    dropped += 1  # torn/damaged lines go with the tail
                    continue
                record_seq = raw.get("seq") if isinstance(raw, dict) \
                    else None
                if isinstance(record_seq, int) and record_seq > seq:
                    dropped += 1
                    continue
                kept.append(line)
        if dropped:
            body = "\n".join(kept) + ("\n" if kept else "")
            storage.atomic_write(self.path, body)
            with self._seq_lock:
                self._next_seq = None  # rescan on next claim
            self._cache = None
            self._health_cache = None
            if OBS.enabled:
                OBS.inc("fdb.wal.truncated_records", dropped)
                OBS.action("wal.truncate_to", seq=seq, dropped=dropped)
        return dropped

    def discard_torn_tail(self) -> bool:
        """Drop a torn final line (the mid-write crash signature) from
        the file itself, so the log can be re-used for appends and
        shipping without the fragment. Returns whether a tear was
        removed. Interior damage is untouched — that is corruption,
        not a tear, and scan()/recover() must report it."""
        if not self.tail_is_torn:
            return False
        text = self.path.read_text(encoding="utf-8")
        lines = [line for line in text.splitlines() if line.strip()]
        body = "\n".join(lines[:-1]) + ("\n" if lines[:-1] else "")
        storage.atomic_write(self.path, body)
        with self._seq_lock:
            self._next_seq = None
        self._cache = None
        self._health_cache = None
        if OBS.enabled:
            OBS.inc("fdb.wal.torn_tails_discarded")
            OBS.action("wal.torn_tail_discarded", path=str(self.path))
        return True

    # -- health -------------------------------------------------------------

    def health(self) -> dict:
        """One JSON-ready view of the log's durability state: last
        sequence number, current term, torn-tail flag, committed entry
        count, and damage tallies from a salvage scan. The scan is
        cached against the file's (size, mtime), so monitoring
        surfaces (``stats``/``/metrics``/``/health``/``monitor``) that
        scrape between appends pay O(log size) only when the log
        actually changed."""
        try:
            stat = self.path.stat()
            key = (stat.st_size, stat.st_mtime_ns)
        except OSError:
            key = None
        cached = self._health_cache
        if key is not None and cached is not None and cached[0] == key:
            scanned = cached[1]
        else:
            # Stat happens before the scan: a record landing between
            # the two makes the cached view *fresher* than its key,
            # never staler, and the next size change invalidates it.
            scan = self._scan("salvage")
            scanned = {
                "last_seq": scan.max_seq,
                "scan_term": scan.max_term,
                "tail_torn": scan.torn_tail,
                "entries": sum(
                    1 for r in scan.records
                    if r.entry is not None
                    and (r.seq is None or r.seq not in scan.aborted)
                ),
                "aborted": len(scan.aborted),
                "checksum_failures": scan.checksum_failures,
                "problems": len(scan.problems),
            }
            self._health_cache = (key, scanned) \
                if key is not None else None
        health = {
            "path": str(self.path),
            "last_seq": scanned["last_seq"],
            "term": max(self.term, scanned["scan_term"]),
            "tail_torn": scanned["tail_torn"],
            "entries": scanned["entries"],
            "aborted": scanned["aborted"],
            "checksum_failures": scanned["checksum_failures"],
            "problems": scanned["problems"],
        }
        if OBS.enabled:
            OBS.gauge("fdb.wal.last_seq", health["last_seq"])
            OBS.gauge("fdb.wal.tail_torn", int(health["tail_torn"]))
        return health

    def truncate(self, next_seq: int | None = None) -> None:
        """Atomically empty the log.

        ``next_seq`` (used by :func:`checkpoint`) persists a header so
        sequence numbers keep increasing across the truncation —
        that monotonicity is what lets recovery tell "already folded
        into the snapshot" from "new since the snapshot".
        """
        if next_seq is None or next_seq <= 1:
            storage.atomic_write(self.path, "")
            with self._seq_lock:
                self._next_seq = 1
        else:
            meta: dict = {"next_seq": next_seq}
            if self.term:
                meta["term"] = self.term
            header = _frame(self._payload({"seq": next_seq - 1,
                                           "header": meta}))
            storage.atomic_write(self.path, header + "\n")
            with self._seq_lock:
                self._next_seq = next_seq
        self._cache = (self.path.stat().st_size, 0)
        self._health_cache = None

    def __len__(self) -> int:
        """Number of committed entries. Cached between calls; the
        cache is revalidated against the file size, so external
        writes (or another process) force a rescan."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return 0
        if self._cache is not None and self._cache[0] == size:
            return self._cache[1]
        count = sum(1 for _ in self.entries())
        self._cache = (size, count)
        return count


# -- the write-ahead wrapper --------------------------------------------------


def _validate(db: FunctionalDatabase,
              update: Update | UpdateSequence) -> None:
    """Reject an update the schema cannot apply *before* it is logged.

    Logging an inapplicable update is the write-ahead divergence bug:
    the log would replay an update the live database never performed.
    """
    updates = update if isinstance(update, UpdateSequence) else (update,)
    for simple in updates:
        db.is_base(simple.function)  # raises UnknownFunctionError


class LoggedDatabase:
    """Write-ahead wrapper: validate, log durably, then apply.

    Exposes the update front door of :class:`FunctionalDatabase`;
    reads go straight to ``self.db``. If applying a logged update
    fails, the in-memory state is rolled back and a compensating
    abort record is appended so replay skips it — the log and the
    live state never diverge.
    """

    def __init__(self, db: FunctionalDatabase,
                 log: UpdateLog | str | Path) -> None:
        self.db = db
        self.log = log if isinstance(log, UpdateLog) else UpdateLog(log)

    def execute(self, update: Update | UpdateSequence) -> int:
        """Validate, log durably, apply; returns the update's WAL
        sequence number (what replication acks are counted against)."""
        _validate(self.db, update)
        with OBS.span("wal.commit"):
            seq = self.log.append(update)
        try:
            with Transaction(self.db):
                FAULTS.fire("wal.apply.before")
                if isinstance(update, UpdateSequence):
                    for simple in update:
                        apply_update(self.db, simple)
                else:
                    apply_update(self.db, update)
        except Exception:
            # The update is durably logged but was never applied (the
            # transaction above rolled the memory state back): append
            # the compensation so replay skips it too. A SimulatedCrash
            # is a BaseException and falls through — a dead process
            # writes nothing.
            FAULTS.fire("wal.abort.append")
            try:
                self.log.append_abort(seq)
            except (OSError, PersistenceError):
                # Disk went away mid-compensation; replay will re-apply
                # the entry (its intent was durable and deterministic).
                # Count it so operators can see the window was hit.
                if OBS.enabled:
                    OBS.inc("fdb.wal.abort_failures")
            raise
        return seq

    def insert(self, name: str, x: Value, y: Value) -> None:
        self.execute(Update.ins(name, x, y))

    def delete(self, name: str, x: Value, y: Value) -> None:
        self.execute(Update.delete(name, x, y))

    def replace(self, name: str, old: tuple[Value, Value],
                new: tuple[Value, Value]) -> None:
        self.execute(Update.rep(name, old, new))


# -- checkpoint / recover -----------------------------------------------------


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover` did, in enough detail to audit it."""

    db: FunctionalDatabase
    entries_applied: int
    torn_tail: bool
    policy: str = "strict"
    records_skipped: int = 0
    checksum_failures: int = 0
    aborted: int = 0
    already_checkpointed: int = 0
    legacy_records: int = 0
    term: int = 0  # highest replication epoch seen in the log
    notes: tuple[str, ...] = ()

    def as_dict(self) -> dict:
        """The report minus the live database handle, JSON-ready — the
        shape the soak and CI archive next to the JSONL event logs."""
        return {
            "report": "recovery",
            "entries_applied": self.entries_applied,
            "torn_tail": self.torn_tail,
            "policy": self.policy,
            "records_skipped": self.records_skipped,
            "checksum_failures": self.checksum_failures,
            "aborted": self.aborted,
            "already_checkpointed": self.already_checkpointed,
            "legacy_records": self.legacy_records,
            "term": self.term,
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RecoveryReport":
        """Rebuild an archived report (``db`` is gone: a JSON artifact
        carries the audit trail, not the live instance)."""
        return cls(
            db=None,  # type: ignore[arg-type]
            entries_applied=data["entries_applied"],
            torn_tail=data["torn_tail"],
            policy=data.get("policy", "strict"),
            records_skipped=data.get("records_skipped", 0),
            checksum_failures=data.get("checksum_failures", 0),
            aborted=data.get("aborted", 0),
            already_checkpointed=data.get("already_checkpointed", 0),
            legacy_records=data.get("legacy_records", 0),
            term=data.get("term", 0),
            notes=tuple(data.get("notes", ())),
        )

    def __str__(self) -> str:
        tear = " (torn tail skipped)" if self.torn_tail else ""
        parts = [f"recovered: {self.entries_applied} log entries{tear}"]
        if self.aborted:
            parts.append(f"{self.aborted} aborted")
        if self.already_checkpointed:
            parts.append(
                f"{self.already_checkpointed} already checkpointed"
            )
        if self.records_skipped:
            parts.append(
                f"{self.records_skipped} skipped ({self.policy})"
            )
        if self.checksum_failures:
            parts.append(f"{self.checksum_failures} checksum failures")
        return "; ".join(parts)


def checkpoint(logged: LoggedDatabase,
               snapshot_path: str | Path) -> None:
    """Fold the log into a durable snapshot.

    Ordering is the whole point: the snapshot — stamped with the
    highest sequence number it folds in — is written atomically and
    fsync'd *before* the log is truncated (itself an atomic rename).
    A crash before the snapshot rename keeps the old pair; a crash
    between the two steps leaves the new snapshot plus the old log,
    which :func:`recover` reconciles by skipping already-folded
    sequence numbers. There is no window in which committed state is
    only partially on disk.
    """
    if OBS.enabled:
        OBS.inc("fdb.wal.checkpoints")
    FAULTS.fire("wal.checkpoint.before-snapshot")
    folded = logged.log.last_seq()
    persistence.save(logged.db, snapshot_path, wal_applied=folded,
                     term=logged.log.term or None)
    FAULTS.fire("wal.checkpoint.after-snapshot")
    if OBS.enabled:
        OBS.action("checkpoint.snapshot_written",
                   path=str(snapshot_path), wal_applied=folded)
    logged.log.truncate(next_seq=folded + 1)
    FAULTS.fire("wal.checkpoint.after-truncate")
    if OBS.enabled:
        OBS.action("checkpoint.log_truncated", next_seq=folded + 1)


def recover(snapshot_path: str | Path, log_path: str | Path, *,
            policy: str = "strict") -> RecoveryReport:
    """Rebuild a database: load the snapshot, replay the log over it.

    ``policy="strict"`` raises on interior damage; ``policy="salvage"``
    applies every record that survives its checksum and reports the
    rest. Records the snapshot already folded in (by sequence number),
    aborted records, and a torn final line are skipped under both.
    """
    db, meta = persistence.load_with_meta(snapshot_path)
    log = UpdateLog(log_path)
    scan = log.scan(policy)
    wal_applied = meta.get("wal_applied")
    if OBS.enabled:
        OBS.action("recovery.start", policy=policy,
                   snapshot=str(snapshot_path), log=str(log_path))
    applied = aborted = already = skipped = 0
    notes = [str(problem) for problem in scan.problems]
    for record in scan.records:
        if record.entry is None:
            continue  # header or abort record
        if record.seq is not None and record.seq in scan.aborted:
            aborted += 1
            continue
        if (wal_applied is not None and record.seq is not None
                and record.seq <= wal_applied):
            already += 1
            continue
        try:
            if OBS.enabled:
                OBS.action("recovery.replay", seq=record.seq,
                           entry=str(record.entry))
            if isinstance(record.entry, UpdateSequence):
                apply_sequence(db, record.entry)
            else:
                apply_update(db, record.entry)
        except Exception as exc:
            # A logged update that cannot re-apply: normally prevented
            # by validate-then-log + abort records; reachable when a
            # crash hit the abort window. Strict surfaces it, salvage
            # records and carries on.
            if policy == "strict":
                raise PersistenceError(
                    f"log entry at line {record.line_no} failed to "
                    f"re-apply: {exc}"
                ) from exc
            skipped += 1
            notes.append(
                f"line {record.line_no}: apply-failed ({exc})"
            )
            continue
        applied += 1
    skipped += sum(1 for p in scan.problems
                   if p.kind in ("checksum", "parse"))
    if OBS.enabled:
        OBS.inc("fdb.wal.recoveries")
        OBS.inc("fdb.wal.recovered_entries", applied)
        OBS.inc("fdb.recovery.runs")
        OBS.inc("fdb.recovery.records_applied", applied)
        OBS.inc("fdb.recovery.records_skipped", skipped)
        if scan.torn_tail:
            OBS.inc("fdb.recovery.torn_tails")
        OBS.action("recovery.finish", policy=policy, applied=applied,
                   skipped=skipped, aborted=aborted,
                   already_checkpointed=already,
                   torn_tail=scan.torn_tail)
    return RecoveryReport(
        db,
        entries_applied=applied,
        torn_tail=scan.torn_tail,
        policy=policy,
        records_skipped=skipped,
        checksum_failures=scan.checksum_failures,
        aborted=aborted,
        already_checkpointed=already,
        legacy_records=scan.legacy_records,
        term=scan.max_term,
        notes=tuple(notes),
    )
