"""Write-ahead logging and recovery.

Base functions are "extensionally stored" (Section 1); a database that
loses its extension on a crash is not stored at all. This module adds
the classic durability pair on top of :mod:`repro.fdb.persistence`
snapshots:

* :class:`UpdateLog` — an append-only JSON-lines file of updates.
  :class:`LoggedDatabase` wraps a database so every update is logged
  *before* it is applied (write-ahead order); update application is
  deterministic (null and NC indices come from persisted counters), so
  replaying the log over the last snapshot reproduces the state
  exactly — partial information included.

* :func:`checkpoint` / :func:`recover` — write a snapshot and truncate
  the log; rebuild a database from snapshot + log after a crash. A
  torn final log line (the classic mid-write crash) is detected and
  skipped, and recovery reports how many entries were applied and
  whether a tear was found.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import PersistenceError
from repro.fdb import persistence
from repro.fdb.database import FunctionalDatabase
from repro.fdb.persistence import _decode_value, _encode_value
from repro.fdb.updates import (
    Update,
    UpdateSequence,
    apply_sequence,
    apply_update,
)
from repro.fdb.values import Value
from repro.obs.hooks import OBS

__all__ = ["UpdateLog", "LoggedDatabase", "checkpoint", "recover",
           "RecoveryReport"]


def _encode_update(update: Update) -> dict:
    entry = {
        "kind": update.kind,
        "function": update.function,
        "pair": [_encode_value(update.pair[0]),
                 _encode_value(update.pair[1])],
    }
    if update.new_pair is not None:
        entry["new_pair"] = [
            _encode_value(update.new_pair[0]),
            _encode_value(update.new_pair[1]),
        ]
    return entry


def _decode_update(entry: dict) -> Update:
    pair = tuple(_decode_value(item) for item in entry["pair"])
    new_pair = None
    if "new_pair" in entry:
        new_pair = tuple(
            _decode_value(item) for item in entry["new_pair"]
        )
    return Update(entry["kind"], entry["function"], pair, new_pair)


def _encode_entry(update: Update | UpdateSequence) -> dict:
    if isinstance(update, UpdateSequence):
        return {
            "kind": "SEQ",
            "label": update.label,
            "updates": [_encode_update(u) for u in update],
        }
    return _encode_update(update)


def _decode_entry(entry: dict) -> Update | UpdateSequence:
    if entry.get("kind") == "SEQ":
        return UpdateSequence(
            tuple(_decode_update(u) for u in entry["updates"]),
            label=entry.get("label", ""),
        )
    return _decode_update(entry)


class UpdateLog:
    """Append-only JSON-lines log of updates."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, update: Update | UpdateSequence) -> None:
        if not OBS.enabled:
            line = json.dumps(_encode_entry(update), sort_keys=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
            return
        # Instrumented path: count appends and time the full durable
        # write (open + write + flush), the WAL's fsync-analogue cost.
        OBS.inc("fdb.wal.appends")
        started = time.perf_counter()
        line = json.dumps(_encode_entry(update), sort_keys=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
        OBS.observe("fdb.wal.append_seconds",
                    time.perf_counter() - started)
        OBS.event("wal.append", entry=str(update))

    def entries(self) -> Iterator[Update | UpdateSequence]:
        """Logged entries in order; a torn final line is skipped (it
        never committed). A torn line *before* valid entries means real
        corruption and raises."""
        if not self.path.exists():
            return
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                yield _decode_entry(json.loads(line))
            except (json.JSONDecodeError, KeyError) as exc:
                if index == len(lines) - 1:
                    return  # torn tail from a mid-write crash
                raise PersistenceError(
                    f"corrupt log entry at line {index + 1}: {exc}"
                ) from exc

    @property
    def tail_is_torn(self) -> bool:
        """Whether the last line fails to parse (crash signature)."""
        if not self.path.exists():
            return False
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines or not lines[-1].strip():
            return False
        try:
            _decode_entry(json.loads(lines[-1]))
            return False
        except (json.JSONDecodeError, KeyError):
            return True

    def truncate(self) -> None:
        self.path.write_text("", encoding="utf-8")

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())


class LoggedDatabase:
    """Write-ahead wrapper: log first, then apply.

    Exposes the update front door of :class:`FunctionalDatabase`;
    reads go straight to ``self.db``.
    """

    def __init__(self, db: FunctionalDatabase,
                 log: UpdateLog | str | Path) -> None:
        self.db = db
        self.log = log if isinstance(log, UpdateLog) else UpdateLog(log)

    def execute(self, update: Update | UpdateSequence) -> None:
        self.log.append(update)
        if isinstance(update, UpdateSequence):
            apply_sequence(self.db, update)
        else:
            apply_update(self.db, update)

    def insert(self, name: str, x: Value, y: Value) -> None:
        self.execute(Update.ins(name, x, y))

    def delete(self, name: str, x: Value, y: Value) -> None:
        self.execute(Update.delete(name, x, y))

    def replace(self, name: str, old: tuple[Value, Value],
                new: tuple[Value, Value]) -> None:
        self.execute(Update.rep(name, old, new))


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover` did."""

    db: FunctionalDatabase
    entries_applied: int
    torn_tail: bool

    def __str__(self) -> str:
        tear = " (torn tail skipped)" if self.torn_tail else ""
        return f"recovered: {self.entries_applied} log entries{tear}"


def checkpoint(logged: LoggedDatabase,
               snapshot_path: str | Path) -> None:
    """Write a snapshot of the current state and truncate the log —
    everything in the log is now folded into the snapshot."""
    if OBS.enabled:
        OBS.inc("fdb.wal.checkpoints")
    persistence.save(logged.db, snapshot_path)
    logged.log.truncate()


def recover(snapshot_path: str | Path,
            log_path: str | Path) -> RecoveryReport:
    """Rebuild a database: load the snapshot, replay the log over it."""
    db = persistence.load(snapshot_path)
    log = UpdateLog(log_path)
    torn = log.tail_is_torn
    applied = 0
    for entry in log.entries():
        if isinstance(entry, UpdateSequence):
            apply_sequence(db, entry)
        else:
            apply_update(db, entry)
        applied += 1
    if OBS.enabled:
        OBS.inc("fdb.wal.recoveries")
        OBS.inc("fdb.wal.recovered_entries", applied)
    return RecoveryReport(db, applied, torn)
