"""The surface language and interactive tool.

The paper's deliverable is "an interactive design aid ... to facilitate
the identification of derived functions" together with consistent
update algorithms. This subpackage is that tool: a small statement
language covering the whole lifecycle —

* design:  ``add teach: faculty -> course (many-many)`` feeds Method
  2.1; cycles are reported to the session's designer (interactively in
  the REPL); ``commit`` freezes the design into a live database;
* update:  ``insert pupil(gauss, bill)``, ``delete teach(euclid,
  math)``, ``replace cutoff(90, A) with (85, A)``;
* query:   ``show pupil``, ``truth pupil(euclid, john)``,
  ``query (teach o class_list)(euclid)``, ``pairs teach^-1``;
* inspect: ``ncs``, ``metrics``, ``design``;
* manage:  ``resolve``, ``save "db.json"``, ``load "db.json"``.

:class:`repro.lang.interp.Interpreter` executes statements against a
design session + database pair; ``fdb-repl`` (see ``pyproject.toml``)
runs it as a console tool.
"""

from __future__ import annotations

from repro.lang.tokenizer import Token, tokenize
from repro.lang.parser import parse_program, parse_statement
from repro.lang.interp import Interpreter

__all__ = [
    "Token",
    "tokenize",
    "parse_program",
    "parse_statement",
    "Interpreter",
]
