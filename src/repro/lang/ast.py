"""Abstract syntax of the surface language.

Statements are plain frozen dataclasses; query expressions reuse the
:class:`repro.fdb.query.Query` combinators directly (the parser builds
them with ``fn``, ``*`` and ``~``), so there is no separate expression
AST to interpret.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schema import FunctionDef
from repro.fdb.query import Query
from repro.fdb.values import Value

__all__ = [
    "Statement",
    "AddFunction",
    "Commit",
    "ShowDesign",
    "Insert",
    "Delete",
    "Replace",
    "TruthQuery",
    "ImageQuery",
    "PairsQuery",
    "Show",
    "ShowNCs",
    "Metrics",
    "Stats",
    "Trace",
    "SlowLogCmd",
    "DeadlineCmd",
    "Resolve",
    "Save",
    "Load",
    "Help",
    "Undo",
    "Redo",
    "History",
    "Worlds",
    "Probability",
    "DeclareInclusion",
    "DeclareRange",
    "DeclareCardinality",
    "Check",
    "Guard",
    "DotExport",
    "Begin",
    "End",
    "Abort",
    "Condition",
    "ForEach",
    "Explain",
    "Extent",
    "Changes",
    "DefaultQuery",
    "Retract",
    "Minimal",
    "Source",
    "LoadSchema",
]


class Statement:
    """Marker base class for statements."""


@dataclass(frozen=True)
class AddFunction(Statement):
    """``add <funcdef>`` — feed one function to the design session."""

    function: FunctionDef


@dataclass(frozen=True)
class Source(Statement):
    """``source "path"`` — execute a script file in place."""

    path: str


@dataclass(frozen=True)
class LoadSchema(Statement):
    """``schema "path"`` — add every function of a paper-notation
    schema file to the design session."""

    path: str


@dataclass(frozen=True)
class Retract(Statement):
    """``retract <name>`` — withdraw a function from the design."""

    function: str


@dataclass(frozen=True)
class Minimal(Statement):
    """``minimal`` — AMS advisory: minimal schemas of the catalog
    under the UFA."""


@dataclass(frozen=True)
class Commit(Statement):
    """``commit`` — freeze the design into a live database."""


@dataclass(frozen=True)
class ShowDesign(Statement):
    """``design`` — print base/derived split and derivations so far."""


@dataclass(frozen=True)
class Insert(Statement):
    """``insert f(x, y)``."""

    function: str
    x: Value
    y: Value


@dataclass(frozen=True)
class Delete(Statement):
    """``delete f(x, y)``."""

    function: str
    x: Value
    y: Value


@dataclass(frozen=True)
class Replace(Statement):
    """``replace f(x1, y1) with (x2, y2)``."""

    function: str
    old: tuple[Value, Value]
    new: tuple[Value, Value]


@dataclass(frozen=True)
class TruthQuery(Statement):
    """``truth f(x, y)`` — three-valued truth of one fact."""

    function: str
    x: Value
    y: Value


@dataclass(frozen=True)
class ImageQuery(Statement):
    """``query <expr>(x)`` — image of x under a functional expression."""

    query: Query
    x: Value


@dataclass(frozen=True)
class PairsQuery(Statement):
    """``pairs <expr>`` — full extension of a functional expression."""

    query: Query


@dataclass(frozen=True)
class Show(Statement):
    """``show f`` or ``show all`` — paper-style table rendering."""

    function: str | None  # None means all


@dataclass(frozen=True)
class ShowNCs(Statement):
    """``ncs`` — the live negated conjunctions."""


@dataclass(frozen=True)
class Metrics(Statement):
    """``metrics`` — the ambiguity report."""


@dataclass(frozen=True)
class Stats(Statement):
    """``stats`` — instance counts plus the observability snapshot
    (runtime counters, gauges, timings, profile)."""


@dataclass(frozen=True)
class Trace(Statement):
    """``trace on|off|show [--dot "path"]`` — control update-propagation
    tracing.

    ``on`` enables instrumentation with span collection, ``off``
    disables tracing (metrics stay on), ``show`` re-prints the last
    recorded trace tree — with ``--dot "path"`` it instead writes the
    trace's propagation DAG as Graphviz DOT to the file.
    """

    mode: str  # "on" | "off" | "show"
    dot_path: str | None = None


@dataclass(frozen=True)
class SlowLogCmd(Statement):
    """``slowlog [query SECONDS | update SECONDS | off | clear]`` —
    the slow-operation log.

    Bare ``slowlog`` prints the captured records; ``query``/``update``
    set the family's threshold in seconds (enabling capture);
    ``off`` disables both thresholds; ``clear`` drops the records.
    """

    mode: str  # "show" | "query" | "update" | "off" | "clear"
    threshold: float | None = None


@dataclass(frozen=True)
class DeadlineCmd(Statement):
    """``deadline [SECONDS | off]`` — per-statement execution deadline.

    ``deadline 0.5`` bounds every subsequent statement to half a
    second of wall clock (updates that overrun abort cleanly via the
    transaction machinery); ``deadline off`` removes the bound; bare
    ``deadline`` reports the current setting.
    """

    mode: str  # "set" | "off" | "show"
    seconds: float | None = None


@dataclass(frozen=True)
class Monitor(Statement):
    """``monitor [serve [PORT] | stop]`` — the service-health dashboard
    and the live metrics endpoint.

    Bare ``monitor`` prints the RED / lock-contention / admission /
    breaker dashboard from the process-wide metrics; ``serve`` starts
    the Prometheus exposition endpoint (ephemeral port unless given)
    and reports its URL; ``stop`` shuts the endpoint down.
    """

    mode: str  # "show" | "serve" | "stop"
    port: int | None = None


@dataclass(frozen=True)
class Timeline(Statement):
    """``timeline [STRING]`` — the replication audit timeline.

    Bare ``timeline`` folds the in-memory event ring (the first call
    attaches one) into the typed replication lifecycle view —
    attaches, acked commits, fences, promotions, rejoins, snapshot
    bootstraps — with the fence-ordering audit applied. With a quoted
    path it reads a JSONL event artifact (e.g. a soak's
    ``replication-events.jsonl``) instead.
    """

    path: str | None = None


@dataclass(frozen=True)
class Promote(Statement):
    """``promote [NAME]`` — manual failover of the attached
    replication group.

    With a replica name, promotes that replica; bare ``promote`` lets
    the group pick the freshest one. The manual path coexists with
    lease-based automatic elections: both go through the same monotone
    term fence, so whichever promotion lands second simply fences the
    other's term — there is no split-brain window either way.
    """

    name: str | None = None


@dataclass(frozen=True)
class ShardMapCmd(Statement):
    """``shardmap [N]`` — preview the sharded-keyspace placement.

    Builds a :class:`repro.shard.ShardMap` over the committed schema
    and prints which shard lane each derivation cluster (and so each
    function) would land on at ``N`` lanes (default 2) under the
    stable hash placement. A planning view: the REPL itself runs
    unsharded, but the map is the same one
    :class:`repro.shard.ShardedDatabaseService` routes by, so this is
    how an operator sees which clusters a pin override should move
    before deploying lanes.
    """

    shards: int = 2


@dataclass(frozen=True)
class Resolve(Statement):
    """``resolve`` — run FD-driven null resolution."""


@dataclass(frozen=True)
class Save(Statement):
    """``save "path"``."""

    path: str


@dataclass(frozen=True)
class Load(Statement):
    """``load "path"``."""

    path: str


@dataclass(frozen=True)
class Checkpoint(Statement):
    """``checkpoint "dir"`` — write a durable snapshot of the live
    database into the directory and attach its write-ahead log, so
    every later update is durably logged before it is applied."""

    path: str


@dataclass(frozen=True)
class Recover(Statement):
    """``recover "dir" [strict|salvage]`` — rebuild the database from
    the directory's snapshot plus write-ahead log (crash recovery)."""

    path: str
    policy: str = "strict"


@dataclass(frozen=True)
class Help(Statement):
    """``help``."""


@dataclass(frozen=True)
class Undo(Statement):
    """``undo`` — revert the most recent update."""


@dataclass(frozen=True)
class Redo(Statement):
    """``redo`` — re-apply the most recently undone update."""


@dataclass(frozen=True)
class History(Statement):
    """``history`` — list the applied updates."""


@dataclass(frozen=True)
class Worlds(Statement):
    """``worlds`` — possible-worlds analysis of the current ambiguity."""


@dataclass(frozen=True)
class Probability(Statement):
    """``prob f(x, y)`` — marginal probability under uniform worlds."""

    function: str
    x: Value
    y: Value


@dataclass(frozen=True)
class DeclareInclusion(Statement):
    """``constraint include f.col in g.col``."""

    source_function: str
    source_column: str
    target_function: str
    target_column: str


@dataclass(frozen=True)
class DeclareRange(Statement):
    """``constraint range f.col LOW HIGH`` — numeric bounds."""

    function: str
    column: str
    low: float
    high: float


@dataclass(frozen=True)
class DeclareCardinality(Statement):
    """``constraint card f per domain|range [min N] [max N]``."""

    function: str
    per: str
    minimum: int = 0
    maximum: int | None = None


@dataclass(frozen=True)
class Check(Statement):
    """``check`` — audit the instance against declared constraints."""


@dataclass(frozen=True)
class Guard(Statement):
    """``guard on|off`` — toggle constraint-guarded updates."""

    enabled: bool


@dataclass(frozen=True)
class DotExport(Statement):
    """``dot "path"`` — write the current design as Graphviz DOT."""

    path: str


@dataclass(frozen=True)
class Begin(Statement):
    """``begin`` — start collecting an atomic update sequence."""


@dataclass(frozen=True)
class End(Statement):
    """``end`` — execute the collected sequence atomically."""


@dataclass(frozen=True)
class Abort(Statement):
    """``abort`` — discard the collected sequence."""


@dataclass(frozen=True)
class DefaultQuery(Statement):
    """``default f(x, y)`` — truth under preferred-world defaults."""

    function: str
    x: Value
    y: Value


@dataclass(frozen=True)
class Changes(Statement):
    """``changes`` — the state delta of the last applied update."""


@dataclass(frozen=True)
class Extent(Statement):
    """``extent <type>`` — the observed entities of an object type."""

    type_name: str


@dataclass(frozen=True)
class Explain(Statement):
    """``explain f(x, y)`` — the evidence behind a truth verdict."""

    function: str
    x: Value
    y: Value


@dataclass(frozen=True)
class Condition:
    """One ``such that`` conjunct of a for-each query.

    ``op`` is ``"="`` (the expression's image of the entity must
    contain ``value`` as a *true* fact) or ``"contains"`` (alias with
    multi-valued reading; identical semantics, Daplex-flavoured
    spelling).
    """

    query: Query
    op: str
    value: Value


@dataclass(frozen=True)
class ForEach(Statement):
    """``for each s in student such that ... print expr, expr``.

    A Daplex-style entity loop: iterate the observed extent of an
    object type, filter by function-application conditions, and print
    the images of the surviving entities under each print expression.
    """

    variable: str
    type_name: str
    conditions: tuple[Condition, ...]
    prints: tuple[Query, ...]
