"""Interpreter for the surface language.

An :class:`Interpreter` owns a design session and (after ``commit``) a
live :class:`repro.fdb.database.FunctionalDatabase`, and executes
parsed statements against them, returning printable output lines.
The REPL wraps it with an interactive designer; tests drive it with
scripted or automatic designers.

Lifecycle: ``add`` statements feed the design session; the first data
statement after the last ``add`` triggers an implicit ``commit`` (with
a notice), or ``commit`` may be issued explicitly. After a commit,
further ``add`` statements start a *new* design round seeded with the
existing catalog — committing again rebuilds the database schema and
re-loads the surviving stored facts.
"""

from __future__ import annotations

from typing import Callable

from repro.cancel import deadline_scope
from repro.errors import ConstraintViolation, DesignError, ReproError
from repro.core.design_aid import AutoDesigner, Designer, DesignSession
from repro.core.dot import design_to_dot
from repro.fdb import persistence, worlds
from repro.fdb.ambiguity import measure
from repro.fdb.constraints import resolve_nulls
from repro.fdb.database import FunctionalDatabase
from repro.fdb.integrity import (
    CardinalityConstraint,
    ConstraintSet,
    DomainConstraint,
    InclusionDependency,
)
from repro.fdb.journal import Journal
from repro.fdb.logic import Truth
from repro.fdb.render import render_state
from repro.fdb.updates import Update
from repro.fdb.values import Value
from repro.obs.export import render_stats
from repro.obs.hooks import OBS
from repro.lang import ast
from repro.lang.parser import parse_program

__all__ = ["Interpreter", "HELP_TEXT"]

HELP_TEXT = """\
Design:
  add <f>: <type> -> <type> [(one-one|one-many|many-one|many-many)]
  design                 show base/derived split so far
  retract <f>            withdraw a function from the design
  minimal                AMS advisory: minimal schemas under the UFA
  commit                 freeze the design into a live database
Updates:
  insert f(x, y)         INS(f, <x, y>)
  delete f(x, y)         DEL(f, <x, y>)
  replace f(x1, y1) with (x2, y2)
  begin ... end | abort  atomic update sequence (one journal entry)
  undo / redo / history  step through the update journal
  changes                the state delta of the last update
Queries:
  show f | show all      paper-style tables (ambiguous facts flagged)
  truth f(x, y)          three-valued truth of one fact
  explain f(x, y)        the chains/flags/NCs behind the verdict
  prob f(x, y)           probability under uniform possible worlds
  default f(x, y)        truth under preferred-world defaults
  query <expr>(x)        image of x;  expr uses 'o' and '^-1'
  pairs <expr>           full extension of an expression
  for each v in <type> [such that <expr>(v) = val and ...]
      print <expr>, ...  Daplex-style entity loop
Inspection:
  ncs                    live negated conjunctions
  metrics                degree-of-ambiguity report
  stats                  runtime counters, timings and profile
  trace on | off | show  update-propagation span trees
  trace show --dot "path"
                         write the last trace's propagation DAG as DOT
  slowlog                captured slow operations (with cost breakdown)
  slowlog query 0.5      capture queries slower than 0.5 s
  slowlog update 0.5     capture updates slower than 0.5 s
  slowlog off | clear    disable thresholds / drop records
  deadline 0.5 | off     bound each statement to 0.5 s of wall clock
  monitor                service-health dashboard (RED, locks, breaker)
  monitor serve [port]   start the live /metrics endpoint (Prometheus)
  monitor stop           stop the endpoint
  timeline               replication audit timeline (fences, commits,
                         promotions); first call starts recording
  timeline "path"        fold a JSONL event artifact instead
  promote [name]         manual failover of the attached replication
                         group (fenced; coexists with auto elections)
  shardmap [n]           preview cluster -> shard lane placement at n
                         lanes (default 2) for the sharded keyspace
  worlds                 possible-worlds analysis (counts + marginals)
Constraints:
  constraint include f.domain in g.range
  constraint range f.range 0 100
  constraint card f per domain max 30
  check                  audit the instance
  guard on | off         auto-undo updates that violate constraints
Maintenance:
  resolve                FD-driven null resolution
  save "path" / load "path"
  checkpoint "dir"       durable snapshot + write-ahead log in dir
  recover "dir" [strict|salvage]
                         rebuild from snapshot + log after a crash
  source "path"          run a script file
  schema "path"          add a paper-notation schema file
  dot "path"             export the design as Graphviz DOT
Values: names, numbers, "strings", and (a, b) tuples for product types."""


class Interpreter:
    """Executes surface-language statements.

    Parameters
    ----------
    designer:
        Drives Method 2.1 decisions for ``add`` statements and vets
        derivations at ``commit``; defaults to :class:`AutoDesigner`.
    on_notice:
        Callback for incidental notices (implicit commits, cycle
        reports); defaults to collecting them into the output.
    """

    def __init__(self, designer: Designer | None = None,
                 on_notice: Callable[[str], None] | None = None) -> None:
        self.designer = designer or AutoDesigner()
        self.session = DesignSession(self.designer)
        self.db: FunctionalDatabase | None = None
        self.journal: Journal | None = None
        self.wal = None  # UpdateLog attached by checkpoint/recover
        self._wal_snapshot = None  # its snapshot path
        self.constraints = ConstraintSet()
        self.guard_enabled = False
        self._pending: list[Update] | None = None  # open begin-block
        self._design_dirty = False
        self._notice = on_notice
        self.deadline_seconds: float | None = None
        self.monitor_endpoint = None  # MetricsEndpoint from 'monitor serve'
        self.replication = None  # ReplicationGroup attached by embedder

    # -- public API ----------------------------------------------------------

    def execute(self, text: str) -> list[str]:
        """Parse and run a script; returns the output lines.

        Errors abort the remainder of the script and are reported as an
        ``error:`` line (the REPL keeps running; library callers who
        want exceptions can use :meth:`run`).
        """
        output: list[str] = []
        try:
            for statement in parse_program(text):
                output.extend(self.run(statement))
        except ReproError as exc:
            output.append(f"error: {exc}")
        return output

    def run(self, statement: ast.Statement) -> list[str]:
        """Execute one parsed statement, raising on errors."""
        handler = getattr(
            self, f"_run_{type(statement).__name__.lower()}", None
        )
        if handler is None:
            raise DesignError(
                f"no handler for statement {type(statement).__name__}"
            )
        if (self.deadline_seconds is None
                or isinstance(statement, ast.DeadlineCmd)):
            return handler(statement)
        # An overrunning update raises DeadlineExceeded from inside the
        # engine's transaction scope, so the rollback has already run
        # by the time the error surfaces here.
        with deadline_scope(self.deadline_seconds):
            return handler(statement)

    # -- design ------------------------------------------------------------------

    def _run_addfunction(self, statement: ast.AddFunction) -> list[str]:
        mark = len(self.session.log)
        self.session.add(statement.function)
        self._design_dirty = True
        output = [f"added {statement.function}"]
        for event in self.session.log[mark:]:
            if event.kind == "cycle":
                assert event.report is not None
                output.append(event.report.describe())
            elif event.kind == "removed":
                output.append(
                    f"  -> {event.function} classified as derived"
                )
            elif event.kind == "kept":
                output.append("  -> cycle kept (no edge removed)")
        return output

    def _run_showdesign(self, statement: ast.ShowDesign) -> list[str]:
        return self.session.finish().summary().splitlines()

    def _run_source(self, statement: ast.Source) -> list[str]:
        text = self._read_file(statement.path)
        output = [f"sourcing {statement.path}"]
        for parsed in parse_program(text):
            output.extend(self.run(parsed))
        return output

    def _run_loadschema(self, statement: ast.LoadSchema) -> list[str]:
        from repro.core.schema_text import parse_schema

        text = self._read_file(statement.path)
        output = [f"loading schema {statement.path}"]
        for function in parse_schema(text):
            output.extend(self.run(ast.AddFunction(function)))
        return output

    @staticmethod
    def _read_file(path: str) -> str:
        from pathlib import Path

        from repro.errors import PersistenceError

        try:
            return Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise PersistenceError(f"cannot read {path}: {exc}") from exc

    def _run_retract(self, statement: ast.Retract) -> list[str]:
        function = self.session.retract(statement.function)
        self._design_dirty = True
        return [f"retracted {function}"]

    def _run_minimal(self, statement: ast.Minimal) -> list[str]:
        from repro.core.minimal_schema import all_minimal_schemas

        catalog = self.session.catalog
        if len(catalog) == 0:
            return ["(no functions added yet)"]
        schemas = all_minimal_schemas(catalog)
        output = [
            f"under the UFA, {len(catalog)} functions admit "
            f"{len(schemas)} minimal schema(s):"
        ]
        for index, minimal in enumerate(schemas, start=1):
            output.append(
                f"  {index}. base = {{{', '.join(minimal.names)}}}"
            )
        output.append(
            "(advisory only -- the UFA may not hold; your designer "
            "decisions stand)"
        )
        return output

    def _run_commit(self, statement: ast.Commit) -> list[str]:
        return self._commit()

    def _commit(self) -> list[str]:
        outcome = self.session.finish()
        new_db = FunctionalDatabase.from_design(outcome)
        carried = 0
        orphaned: list[str] = []
        if self.db is not None:
            # Carry forward surviving stored facts of unchanged base
            # functions (a re-design keeps data where it can).
            for name in self.db.base_names:
                if name in new_db.base_names:
                    for fact in self.db.table(name).facts():
                        new_db.table(name).add_pair(
                            fact.x, fact.y, fact.truth
                        )
                        carried += 1
            # A function re-classified base -> derived keeps no table;
            # report its stored facts that the new derivation cannot
            # reproduce, so the designer can re-assert what matters.
            for name in self.db.base_names:
                if name in new_db.derived_names:
                    for fact in self.db.table(name).facts():
                        if new_db.truth_of(
                            name, fact.x, fact.y
                        ) is not Truth.TRUE:
                            orphaned.append(
                                f"<{name}, {fact.x}, {fact.y}>"
                            )
        self.db = new_db
        self.journal = Journal(new_db)
        self._design_dirty = False
        lines = [
            "committed: "
            f"{len(outcome.base)} base, {len(outcome.derived)} derived"
        ]
        if carried:
            lines.append(f"carried {carried} stored facts forward")
        if orphaned:
            lines.append(
                f"warning: {len(orphaned)} stored facts of re-classified "
                "functions are not derivable in the new design: "
                + ", ".join(orphaned[:5])
                + (" ..." if len(orphaned) > 5 else "")
            )
            lines.append(
                "  (re-insert the ones that should hold; derived "
                "inserts will materialize null-valued chains)"
            )
        return lines

    def _require_db(self) -> tuple[FunctionalDatabase, list[str]]:
        notices: list[str] = []
        if self.db is None or self._design_dirty:
            notices = ["(implicit commit)"] + self._commit()
        assert self.db is not None
        return self.db, notices

    # -- updates --------------------------------------------------------------------

    def _apply(self, update: Update) -> list[str]:
        """Run one update through the journal, enforcing declared
        constraints when the guard is on (violations undo the update).
        Inside an open ``begin`` block the update is queued instead."""
        if self._pending is not None:
            self._pending.append(update)
            return [f"queued: {update}"]
        db, output = self._require_db()
        traces_before = len(OBS.tracer.traces) if OBS.tracing else 0
        self._execute_guarded(db, update, f"update {update}")
        output.append(f"ok: {update}")
        output.extend(self._trace_lines(traces_before))
        return output

    def _execute_guarded(self, db: FunctionalDatabase, update,
                         label: str) -> None:
        """The journal execute shared by updates and ``end`` blocks:
        durably WAL-log first when a checkpoint directory is attached,
        apply, then enforce guarded constraints. A failed apply or a
        guard undo appends a compensating abort record so the log
        never replays an update the live state rejected."""
        assert self.journal is not None
        seq = self.wal.append(update) if self.wal is not None else None
        try:
            self.journal.execute(update)
        except Exception:
            if seq is not None:
                self.wal.append_abort(seq)
            raise
        if self.guard_enabled:
            violations = self.constraints.check(db)
            if violations:
                self.journal.undo()
                if seq is not None:
                    self.wal.append_abort(seq)
                raise ConstraintViolation(
                    f"{label} undone; it violates: "
                    + "; ".join(str(v) for v in violations)
                )

    def _trace_lines(self, traces_before: int) -> list[str]:
        """Span trees recorded since ``traces_before`` (tracing only)."""
        if not OBS.tracing:
            return []
        lines: list[str] = []
        for span in OBS.tracer.traces[traces_before:]:
            lines.extend(span.lines("  "))
        return lines

    def _run_insert(self, statement: ast.Insert) -> list[str]:
        return self._apply(
            Update.ins(statement.function, statement.x, statement.y)
        )

    def _run_delete(self, statement: ast.Delete) -> list[str]:
        return self._apply(
            Update.delete(statement.function, statement.x, statement.y)
        )

    def _run_replace(self, statement: ast.Replace) -> list[str]:
        return self._apply(
            Update.rep(statement.function, statement.old, statement.new)
        )

    def _run_undo(self, statement: ast.Undo) -> list[str]:
        _, output = self._require_db()
        assert self.journal is not None
        undone = self.journal.undo()
        output.append(f"undone: {undone}")
        output.extend(self._refresh_wal())
        return output

    def _run_redo(self, statement: ast.Redo) -> list[str]:
        _, output = self._require_db()
        assert self.journal is not None
        redone = self.journal.redo()
        output.append(f"redone: {redone}")
        output.extend(self._refresh_wal())
        return output

    def _refresh_wal(self) -> list[str]:
        """Re-checkpoint after undo/redo: those rewind the state
        *behind* the log, so replaying the old log would resurrect
        what was just undone. Folding state into a fresh snapshot
        restores the invariant that snapshot + log = live state."""
        if self.wal is None or self._wal_snapshot is None:
            return []
        from repro.fdb.wal import LoggedDatabase, checkpoint

        assert self.db is not None
        checkpoint(LoggedDatabase(self.db, self.wal),
                   self._wal_snapshot)
        return ["checkpoint refreshed (snapshot + log match the "
                "rewound state)"]

    def _run_begin(self, statement: ast.Begin) -> list[str]:
        if self._pending is not None:
            raise DesignError("a begin block is already open")
        self._pending = []
        return ["begin: collecting an atomic update sequence"]

    def _run_end(self, statement: ast.End) -> list[str]:
        if self._pending is None:
            raise DesignError("no begin block is open")
        pending, self._pending = self._pending, None
        if not pending:
            return ["end: empty sequence, nothing to do"]
        from repro.fdb.updates import UpdateSequence

        sequence = UpdateSequence(tuple(pending))
        db, output = self._require_db()
        traces_before = len(OBS.tracer.traces) if OBS.tracing else 0
        self._execute_guarded(db, sequence, "sequence")
        output.append(f"ok: {sequence}")
        output.extend(self._trace_lines(traces_before))
        return output

    def _run_abort(self, statement: ast.Abort) -> list[str]:
        if self._pending is None:
            raise DesignError("no begin block is open")
        count = len(self._pending)
        self._pending = None
        return [f"aborted: discarded {count} queued updates"]

    def _run_history(self, statement: ast.History) -> list[str]:
        _, output = self._require_db()
        assert self.journal is not None
        output.extend(self.journal.describe().splitlines())
        return output

    # -- queries --------------------------------------------------------------------------

    def _run_truthquery(self, statement: ast.TruthQuery) -> list[str]:
        db, output = self._require_db()
        truth = db.truth_of(statement.function, statement.x, statement.y)
        output.append(
            f"{statement.function}({statement.x}) = {statement.y}: {truth}"
        )
        return output

    def _run_imagequery(self, statement: ast.ImageQuery) -> list[str]:
        db, output = self._require_db()
        image = statement.query.image(db, statement.x)
        if not image:
            output.append("(empty)")
            return output
        for y, truth in image.items():
            star = " *" if truth is Truth.AMBIGUOUS else ""
            output.append(f"  {y}{star}")
        return output

    def _run_pairsquery(self, statement: ast.PairsQuery) -> list[str]:
        db, output = self._require_db()
        pairs = statement.query.pairs(db)
        if not pairs:
            output.append("(empty)")
            return output
        for (x, y), truth in pairs.items():
            star = " *" if truth is Truth.AMBIGUOUS else ""
            output.append(f"  <{x}, {y}>{star}")
        return output

    def _run_changes(self, statement: ast.Changes) -> list[str]:
        _, output = self._require_db()
        assert self.journal is not None
        output.extend(self.journal.last_change().describe().splitlines())
        return output

    def _run_extent(self, statement: ast.Extent) -> list[str]:
        db, output = self._require_db()
        entities = db.extent(statement.type_name)
        if not entities:
            output.append(f"(no {statement.type_name} entities)")
            return output
        output.append(
            f"{statement.type_name}: "
            + ", ".join(str(e) for e in entities)
        )
        return output

    def _run_explain(self, statement: ast.Explain) -> list[str]:
        from repro.fdb.explain import explain

        db, output = self._require_db()
        explanation = explain(
            db, statement.function, statement.x, statement.y
        )
        output.extend(explanation.describe().splitlines())
        return output

    def _run_foreach(self, statement: ast.ForEach) -> list[str]:
        db, output = self._require_db()
        entities = db.extent(statement.type_name)
        if not entities:
            output.append(
                f"(no {statement.type_name} entities in the database)"
            )
            return output
        shown = 0
        for entity in entities:
            if not all(
                self._condition_holds(db, condition, entity)
                for condition in statement.conditions
            ):
                continue
            shown += 1
            cells = []
            for query in statement.prints:
                image = query.image(db, entity)
                rendered = ", ".join(
                    f"{y}{'*' if truth is Truth.AMBIGUOUS else ''}"
                    for y, truth in image.items()
                ) or "-"
                cells.append(f"{query} = {{{rendered}}}")
            output.append(f"  {entity}: " + "; ".join(cells))
        if shown == 0:
            output.append("(no entities satisfy the conditions)")
        return output

    def _condition_holds(self, db, condition: ast.Condition,
                         entity: Value) -> bool:
        # '=' and 'contains' both ask: is value truly in the image?
        return condition.query.truth(
            db, entity, condition.value
        ) is Truth.TRUE

    def _run_show(self, statement: ast.Show) -> list[str]:
        db, output = self._require_db()
        if statement.function is None:
            output.extend(render_state(db).splitlines())
            return output
        name = statement.function
        if db.is_base(name):
            output.extend(render_state(db, (name,), ()).splitlines())
        else:
            output.extend(render_state(db, (), (name,)).splitlines())
        return output

    def _run_showncs(self, statement: ast.ShowNCs) -> list[str]:
        db, output = self._require_db()
        output.extend(str(db.ncs).splitlines())
        return output

    def _run_metrics(self, statement: ast.Metrics) -> list[str]:
        db, output = self._require_db()
        output.extend(str(measure(db)).splitlines())
        return output

    # -- observability -------------------------------------------------------------

    def _run_stats(self, statement: ast.Stats) -> list[str]:
        db, output = self._require_db()
        output.extend(
            render_stats(db.stats(wal=self.wal)).splitlines()
        )
        return output

    def _run_trace(self, statement: ast.Trace) -> list[str]:
        if statement.mode == "on":
            OBS.enable(tracing=True)
            return ["trace on: updates will print propagation span "
                    "trees (metrics collection enabled too)"]
        if statement.mode == "off":
            # Tracing off but metrics stay on, so 'stats' keeps working.
            OBS.enable(tracing=False)
            return ["trace off (metrics still collecting; 'stats' "
                    "shows them)"]
        last = OBS.tracer.last_trace
        if last is None:
            return ["(no trace recorded -- run 'trace on' and then an "
                    "update)"]
        if statement.dot_path is not None:
            from pathlib import Path

            from repro.obs import propagation_dag, span_records

            dag = propagation_dag(span_records(last))
            Path(statement.dot_path).write_text(
                dag.to_dot(name="trace") + "\n", encoding="utf-8"
            )
            return [
                f"wrote propagation DAG ({len(dag.nodes)} nodes, "
                f"{len(dag.edges)} edges) to {statement.dot_path}"
            ]
        return last.lines("  ")

    def _run_slowlogcmd(self, statement: ast.SlowLogCmd) -> list[str]:
        from repro.obs.export import render_slowlog

        slowlog = OBS.slowlog
        if statement.mode == "query":
            OBS.enable(tracing=OBS.tracing)
            slowlog.configure(query_seconds=statement.threshold)
            return [f"slowlog: capturing queries slower than "
                    f"{statement.threshold}s"]
        if statement.mode == "update":
            OBS.enable(tracing=OBS.tracing)
            slowlog.configure(update_seconds=statement.threshold)
            return [f"slowlog: capturing updates slower than "
                    f"{statement.threshold}s"]
        if statement.mode == "off":
            slowlog.disable()
            return ["slowlog off (records kept; 'slowlog clear' drops "
                    "them)"]
        if statement.mode == "clear":
            slowlog.clear()
            return ["slowlog cleared"]
        if not slowlog.active and not len(slowlog):
            return ["slowlog inactive -- set a threshold with "
                    "'slowlog query 0.5' or 'slowlog update 0.5'"]
        return render_slowlog(slowlog.snapshot()).splitlines()

    def _run_monitor(self, statement: ast.Monitor) -> list[str]:
        if statement.mode == "serve":
            from repro.obs.endpoint import MetricsEndpoint

            if (self.monitor_endpoint is not None
                    and self.monitor_endpoint.running):
                return [f"monitor: endpoint already serving at "
                        f"{self.monitor_endpoint.url}"]
            OBS.enable(tracing=OBS.tracing)  # a scrape of zeros helps nobody
            self.monitor_endpoint = MetricsEndpoint(
                OBS.metrics, port=statement.port or 0
            )
            self.monitor_endpoint.start()
            return [f"monitor: serving {self.monitor_endpoint.url}/metrics "
                    f"(and /health); 'monitor stop' shuts it down"]
        if statement.mode == "stop":
            if self.monitor_endpoint is None:
                return ["monitor: no endpoint running"]
            self.monitor_endpoint.stop()
            self.monitor_endpoint = None
            return ["monitor: endpoint stopped"]
        from repro.obs.export import render_monitor

        output = []
        if not OBS.enabled:
            output.append("(observability disabled -- counts below are "
                          "stale; 'trace on' enables collection)")
        output.extend(
            render_monitor(OBS.metrics.snapshot()).splitlines()
        )
        return output

    def _run_shardmapcmd(self, statement: ast.ShardMapCmd) -> list[str]:
        db, output = self._require_db()
        from repro.shard import ShardMap

        shard_map = ShardMap(db, statement.shards)
        assignments = shard_map.assignments()
        output.append(
            f"shard map: {len(assignments)} clusters over "
            f"{statement.shards} lanes (stable hash placement, schema "
            f"version {shard_map.version})"
        )
        for shard in range(statement.shards):
            clusters = shard_map.clusters_on(shard)
            names = shard_map.names_on(shard)
            output.append(
                f"  shard {shard}: {len(clusters)} clusters | "
                + (", ".join(names) if names else "(empty)")
            )
        output.append(
            "  (writes inside one cluster stay on one lane; pin "
            "overrides via repro.shard.ShardMap(pins=...))"
        )
        return output

    def _run_timeline(self, statement: ast.Timeline) -> list[str]:
        from repro.obs import (
            RingBufferSink,
            read_jsonl,
            render_timeline,
            replication_timeline,
        )

        if statement.path is not None:
            try:
                records = read_jsonl(statement.path)
            except OSError as exc:
                return [f"timeline: cannot read {statement.path}: {exc}"]
        else:
            ring = next(
                (sink for sink in OBS.events.sinks
                 if isinstance(sink, RingBufferSink)),
                None,
            )
            if ring is None:
                OBS.events.add_sink(RingBufferSink(capacity=4096))
                OBS.enable(tracing=OBS.tracing)
                return ["timeline: recording started (in-memory ring "
                        "attached) -- replication events from here on "
                        "will appear; run 'timeline' again later, or "
                        'read an artifact: timeline "events.jsonl"']
            records = list(ring.records)
        timeline = replication_timeline(records)
        if not len(timeline):
            return ["(no replication events recorded -- the timeline "
                    "fills once a replication group ships commits)"]
        return render_timeline(timeline).splitlines()

    def _run_promote(self, statement: ast.Promote) -> list[str]:
        group = self.replication
        if group is None:
            return ["promote: no replication group attached -- embed "
                    "the interpreter with interp.replication = group"]
        report = group.promote(statement.name)
        output = [f"promote: {report}"]
        if group.lease is not None:
            output.append(
                "promote: automatic elections stay armed -- the manual "
                f"term {report.new_term} fences the old leadership "
                "either way"
            )
        output.append(
            f"promote: attach the new primary on {report.chosen!r} to "
            f"claim term {report.new_term} (attach_primary consumes it)"
        )
        return output

    def _run_deadlinecmd(self, statement: ast.DeadlineCmd) -> list[str]:
        if statement.mode == "set":
            self.deadline_seconds = statement.seconds
            return [f"deadline: statements limited to "
                    f"{statement.seconds}s"]
        if statement.mode == "off":
            self.deadline_seconds = None
            return ["deadline off"]
        if self.deadline_seconds is None:
            return ["deadline off -- set one with 'deadline 0.5'"]
        return [f"deadline: {self.deadline_seconds}s per statement"]

    # -- maintenance -----------------------------------------------------------------------

    def _run_resolve(self, statement: ast.Resolve) -> list[str]:
        db, output = self._require_db()
        substitutions = resolve_nulls(db)
        if not substitutions:
            output.append("nothing to resolve")
        for substitution in substitutions:
            output.append(f"resolved: {substitution}")
        return output

    def _run_save(self, statement: ast.Save) -> list[str]:
        db, output = self._require_db()
        persistence.save(db, statement.path)
        output.append(f"saved to {statement.path}")
        return output

    def _run_load(self, statement: ast.Load) -> list[str]:
        self._adopt_database(persistence.load(statement.path))
        output = [f"loaded {statement.path}"]
        if self.wal is not None:
            # The attached log described the *previous* state; keeping
            # it would replay stale updates over the loaded one.
            self.wal = None
            self._wal_snapshot = None
            output.append("write-ahead log detached (run 'checkpoint' "
                          "to re-attach)")
        return output

    def _adopt_database(self, db: FunctionalDatabase) -> None:
        """Install a database from disk and rebuild the design session
        to mirror its schema, so a later 'add' continues from it."""
        self.db = db
        self.journal = Journal(db)
        self._design_dirty = False
        self.session = DesignSession(self.designer)
        for name in db.base_names:
            self.session.catalog.add(db.schema[name])
            self.session.graph.add(db.schema[name])
        for derived in db.derived_functions():
            self.session.catalog.add(derived.definition)

    def _run_checkpoint(self, statement: ast.Checkpoint) -> list[str]:
        from pathlib import Path

        from repro.fdb.wal import LoggedDatabase, UpdateLog, checkpoint

        db, output = self._require_db()
        directory = Path(statement.path)
        directory.mkdir(parents=True, exist_ok=True)
        snapshot = directory / "snapshot.json"
        log = self.wal
        if log is None or Path(log.path).parent != directory:
            log = UpdateLog(directory / "wal.log")
        checkpoint(LoggedDatabase(db, log), snapshot)
        self.wal = log
        self._wal_snapshot = snapshot
        output.append(
            f"checkpoint: snapshot + log in {directory} "
            "(updates are now logged write-ahead)"
        )
        return output

    def _run_recover(self, statement: ast.Recover) -> list[str]:
        from pathlib import Path

        from repro.fdb.wal import UpdateLog, recover

        directory = Path(statement.path)
        report = recover(
            directory / "snapshot.json", directory / "wal.log",
            policy=statement.policy,
        )
        self._adopt_database(report.db)
        self.wal = UpdateLog(directory / "wal.log")
        self._wal_snapshot = directory / "snapshot.json"
        output = [str(report)]
        output.extend(f"  {note}" for note in report.notes)
        output.append(f"recovered from {directory} (log re-attached)")
        return output

    def _run_help(self, statement: ast.Help) -> list[str]:
        return HELP_TEXT.splitlines()

    # -- possible worlds ----------------------------------------------------------

    def _run_worlds(self, statement: ast.Worlds) -> list[str]:
        db, output = self._require_db()
        output.extend(str(worlds.analyze(db)).splitlines())
        return output

    def _run_defaultquery(self, statement: ast.DefaultQuery) -> list[str]:
        db, output = self._require_db()
        verdict = worlds.default_truth(
            db, statement.function, statement.x, statement.y
        )
        output.append(
            f"{statement.function}({statement.x}) = {statement.y} "
            f"by default: {verdict}"
        )
        return output

    def _run_probability(self, statement: ast.Probability) -> list[str]:
        db, output = self._require_db()
        probability = worlds.marginal(
            db, statement.function, statement.x, statement.y
        )
        output.append(
            f"P({statement.function}({statement.x}) = {statement.y}) "
            f"= {probability:.3f}"
        )
        return output

    # -- integrity constraints -------------------------------------------------------

    def _run_declareinclusion(
        self, statement: ast.DeclareInclusion
    ) -> list[str]:
        constraint = InclusionDependency(
            statement.source_function, statement.source_column,
            statement.target_function, statement.target_column,
        )
        self.constraints.add(constraint)
        return [f"declared: {constraint.name}"]

    def _run_declarerange(self, statement: ast.DeclareRange) -> list[str]:
        low, high = statement.low, statement.high
        constraint = DomainConstraint(
            statement.function, statement.column,
            lambda v: isinstance(v, (int, float)) and low <= v <= high,
            description=f"in [{low}, {high}]",
        )
        self.constraints.add(constraint)
        return [f"declared: {constraint.name}"]

    def _run_declarecardinality(
        self, statement: ast.DeclareCardinality
    ) -> list[str]:
        constraint = CardinalityConstraint(
            statement.function, statement.per,
            statement.minimum, statement.maximum,
        )
        self.constraints.add(constraint)
        return [f"declared: {constraint.name}"]

    def _run_check(self, statement: ast.Check) -> list[str]:
        db, output = self._require_db()
        violations = self.constraints.check(db)
        if not violations:
            output.append(
                f"ok: all {len(self.constraints)} constraints hold"
            )
        for violation in violations:
            output.append(f"violation: {violation}")
        return output

    def _run_guard(self, statement: ast.Guard) -> list[str]:
        self.guard_enabled = statement.enabled
        return [f"guard {'on' if statement.enabled else 'off'}"]

    # -- export ----------------------------------------------------------------------

    def _run_dotexport(self, statement: ast.DotExport) -> list[str]:
        from pathlib import Path

        outcome = self.session.finish()
        Path(statement.path).write_text(
            design_to_dot(outcome), encoding="utf-8"
        )
        return [f"wrote DOT design to {statement.path}"]
