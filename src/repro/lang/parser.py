"""Recursive-descent parser for the surface language.

Grammar (EBNF; ``;`` terminators optional everywhere)::

    program    := statement*
    statement  := "add" funcdef
                | "commit" | "design" | "ncs" | "metrics" | "resolve"
                | "help" | "undo" | "redo" | "history" | "worlds"
                | "check" | "stats"
                | "trace" ("on" | "off" | "show" [ "--dot" STRING ])
                | "slowlog" [ ("query"|"update") NUMBER
                            | "off" | "clear" ]
                | "deadline" [ NUMBER | "off" ]
                | "monitor" [ "serve" [ NUMBER ] | "stop" ]
                | "timeline" [ STRING ]
                | "promote" [ NAME | STRING ]
                | "shardmap" [ NUMBER ]
                | "insert" NAME "(" value "," value ")"
                | "delete" NAME "(" value "," value ")"
                | "replace" NAME "(" value "," value ")"
                      "with" "(" value "," value ")"
                | "truth" NAME "(" value "," value ")"
                | "prob" NAME "(" value "," value ")"
                | "query" qexpr "(" value ")"
                | "pairs" qexpr
                | "show" (NAME | "all")
                | "save" STRING | "load" STRING | "dot" STRING
                | "checkpoint" STRING
                | "recover" STRING [ "strict" | "salvage" ]
                | "guard" ("on" | "off")
                | "constraint" "include" colref "in" colref
                | "constraint" "range" colref NUMBER NUMBER
                | "constraint" "card" NAME "per" ("domain"|"range")
                      [ "min" NUMBER ] [ "max" NUMBER ]
    colref     := NAME "." ("domain" | "range")
    funcdef    := NAME ":" type "->" type [ "(" NAME "-" NAME ")" ]
    type       := NAME | "[" NAME (";" NAME)* "]"
    qexpr      := qterm ("o" qterm)*
    qterm      := qatom ["^-1"]
    qatom      := NAME | "(" qexpr ")"
    value      := NAME | NUMBER | STRING | "(" value ("," value)* ")"

Keywords are contextual: ``add``, ``show`` etc. are ordinary NAMEs
anywhere a value or function name is expected.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality, product_type
from repro.fdb.query import Query, fn
from repro.fdb.values import Value
from repro.lang import ast
from repro.lang.tokenizer import Token, tokenize

__all__ = ["parse_program", "parse_statement"]


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self._index += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self.current
        return ParseError(message, token.line, token.column)

    def _at_punct(self, text: str) -> bool:
        return self.current.kind == "PUNCT" and self.current.text == text

    def _at_name(self, *texts: str) -> bool:
        return self.current.kind == "NAME" and (
            not texts or self.current.text in texts
        )

    def _expect_punct(self, text: str) -> Token:
        if not self._at_punct(text):
            raise self._error(
                f"expected {text!r}, found {self.current.text!r}"
            )
        return self._advance()

    def _expect_name(self) -> str:
        if self.current.kind != "NAME":
            raise self._error(
                f"expected a name, found {self.current.text!r}"
            )
        return self._advance().text

    def _skip_terminators(self) -> None:
        while self._at_punct(";"):
            self._advance()

    # -- program / statements --------------------------------------------------

    def parse_program(self) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        self._skip_terminators()
        while self.current.kind != "EOF":
            statements.append(self.parse_statement())
            self._skip_terminators()
        return statements

    def parse_statement(self) -> ast.Statement:
        if self.current.kind != "NAME":
            raise self._error(
                f"expected a statement, found {self.current.text!r}"
            )
        keyword = self.current.text
        handler = {
            "add": self._parse_add,
            "commit": lambda: self._nullary(ast.Commit),
            "design": lambda: self._nullary(ast.ShowDesign),
            "ncs": lambda: self._nullary(ast.ShowNCs),
            "metrics": lambda: self._nullary(ast.Metrics),
            "stats": lambda: self._nullary(ast.Stats),
            "trace": self._parse_trace,
            "slowlog": self._parse_slowlog,
            "deadline": self._parse_deadline,
            "monitor": self._parse_monitor,
            "timeline": self._parse_timeline,
            "promote": self._parse_promote,
            "shardmap": self._parse_shardmap,
            "resolve": lambda: self._nullary(ast.Resolve),
            "help": lambda: self._nullary(ast.Help),
            "insert": lambda: self._parse_fact_stmt(ast.Insert),
            "delete": lambda: self._parse_fact_stmt(ast.Delete),
            "replace": self._parse_replace,
            "truth": lambda: self._parse_fact_stmt(ast.TruthQuery),
            "query": self._parse_image_query,
            "pairs": self._parse_pairs_query,
            "show": self._parse_show,
            "save": lambda: self._parse_path_stmt(ast.Save),
            "load": lambda: self._parse_path_stmt(ast.Load),
            "checkpoint": lambda: self._parse_path_stmt(ast.Checkpoint),
            "recover": self._parse_recover,
            "undo": lambda: self._nullary(ast.Undo),
            "redo": lambda: self._nullary(ast.Redo),
            "history": lambda: self._nullary(ast.History),
            "worlds": lambda: self._nullary(ast.Worlds),
            "check": lambda: self._nullary(ast.Check),
            "prob": lambda: self._parse_fact_stmt(ast.Probability),
            "constraint": self._parse_constraint,
            "guard": self._parse_guard,
            "dot": lambda: self._parse_path_stmt(ast.DotExport),
            "begin": lambda: self._nullary(ast.Begin),
            "end": lambda: self._nullary(ast.End),
            "abort": lambda: self._nullary(ast.Abort),
            "for": self._parse_for_each,
            "explain": lambda: self._parse_fact_stmt(ast.Explain),
            "extent": self._parse_extent,
            "changes": lambda: self._nullary(ast.Changes),
            "default": lambda: self._parse_fact_stmt(ast.DefaultQuery),
            "retract": self._parse_retract,
            "minimal": lambda: self._nullary(ast.Minimal),
            "source": lambda: self._parse_path_stmt(ast.Source),
            "schema": lambda: self._parse_path_stmt(ast.LoadSchema),
        }.get(keyword)
        if handler is None:
            raise self._error(
                f"unknown statement {keyword!r} (try 'help')"
            )
        return handler()

    def _nullary(self, cls: type) -> ast.Statement:
        self._advance()
        return cls()

    # -- design statements ----------------------------------------------------------

    def _parse_add(self) -> ast.AddFunction:
        self._advance()  # add
        return ast.AddFunction(self.parse_funcdef())

    def parse_funcdef(self) -> FunctionDef:
        name = self._expect_name()
        self._expect_punct(":")
        domain = self._parse_type()
        self._expect_punct("->")
        range_ = self._parse_type()
        functionality = TypeFunctionality.MANY_MANY
        if self._at_punct("("):
            self._advance()
            left = self._expect_name()
            self._expect_punct("-")
            right = self._expect_name()
            self._expect_punct(")")
            try:
                functionality = TypeFunctionality.parse(f"{left}-{right}")
            except ValueError as exc:
                raise self._error(str(exc)) from exc
        return FunctionDef(name, domain, range_, functionality)

    def _parse_type(self) -> ObjectType:
        if self._at_punct("["):
            self._advance()
            components = [self._expect_name()]
            while self._at_punct(";"):
                self._advance()
                components.append(self._expect_name())
            self._expect_punct("]")
            return product_type(*components)
        return ObjectType(self._expect_name())

    # -- update / fact statements ------------------------------------------------------

    def _parse_fact_stmt(self, cls: type) -> ast.Statement:
        self._advance()  # keyword
        function = self._expect_name()
        x, y = self._parse_pair()
        return cls(function, x, y)

    def _parse_pair(self) -> tuple[Value, Value]:
        self._expect_punct("(")
        x = self.parse_value()
        self._expect_punct(",")
        y = self.parse_value()
        self._expect_punct(")")
        return x, y

    def _parse_replace(self) -> ast.Replace:
        self._advance()  # replace
        function = self._expect_name()
        old = self._parse_pair()
        if not self._at_name("with"):
            raise self._error("expected 'with' in replace statement")
        self._advance()
        new = self._parse_pair()
        return ast.Replace(function, old, new)

    # -- queries ----------------------------------------------------------------------------

    def _parse_image_query(self) -> ast.ImageQuery:
        self._advance()  # query
        query = self.parse_query_expr()
        self._expect_punct("(")
        x = self.parse_value()
        self._expect_punct(")")
        return ast.ImageQuery(query, x)

    def _parse_pairs_query(self) -> ast.PairsQuery:
        self._advance()  # pairs
        return ast.PairsQuery(self.parse_query_expr())

    def parse_query_expr(self) -> Query:
        query = self._parse_query_term()
        while self._at_name("o"):
            self._advance()
            query = query * self._parse_query_term()
        return query

    def _parse_query_term(self) -> Query:
        if self._at_punct("("):
            self._advance()
            inner = self.parse_query_expr()
            self._expect_punct(")")
            query = inner
        else:
            name = self._expect_name()
            query = fn(name)
        while self._at_punct("^-1"):
            self._advance()
            query = ~query
        return query

    def _parse_show(self) -> ast.Show:
        self._advance()  # show
        if self._at_name("all"):
            self._advance()
            return ast.Show(None)
        return ast.Show(self._expect_name())

    def _parse_path_stmt(self, cls: type) -> ast.Statement:
        self._advance()  # save / load / dot / checkpoint ...
        if self.current.kind != "STRING":
            raise self._error("expected a quoted path")
        return cls(self._advance().text)

    def _parse_recover(self) -> ast.Recover:
        self._advance()  # recover
        if self.current.kind != "STRING":
            raise self._error("expected a quoted directory")
        path = self._advance().text
        policy = "strict"
        if self._at_name("strict", "salvage"):
            policy = self._advance().text
        return ast.Recover(path, policy)

    # -- constraints and guards ---------------------------------------------------

    def _parse_column_ref(self) -> tuple[str, str]:
        function = self._expect_name()
        self._expect_punct(".")
        column = self._expect_name()
        if column not in ("domain", "range"):
            raise self._error(
                f"column must be 'domain' or 'range', not {column!r}"
            )
        return function, column

    def _parse_constraint(self) -> ast.Statement:
        self._advance()  # constraint
        kind = self._expect_name()
        if kind == "include":
            source = self._parse_column_ref()
            if not self._at_name("in"):
                raise self._error("expected 'in' in inclusion constraint")
            self._advance()
            target = self._parse_column_ref()
            return ast.DeclareInclusion(*source, *target)
        if kind == "range":
            function, column = self._parse_column_ref()
            low = self._parse_number()
            high = self._parse_number()
            return ast.DeclareRange(function, column, low, high)
        if kind == "card":
            function = self._expect_name()
            if not self._at_name("per"):
                raise self._error("expected 'per' in cardinality "
                                  "constraint")
            self._advance()
            per = self._expect_name()
            if per not in ("domain", "range"):
                raise self._error("per must be 'domain' or 'range'")
            minimum = 0
            maximum: int | None = None
            while self._at_name("min", "max"):
                which = self._advance().text
                bound = self._parse_number()
                if which == "min":
                    minimum = int(bound)
                else:
                    maximum = int(bound)
            return ast.DeclareCardinality(function, per, minimum, maximum)
        raise self._error(
            f"unknown constraint kind {kind!r} "
            "(expected include/range/card)"
        )

    def _parse_number(self) -> float:
        if self.current.kind != "NUMBER":
            raise self._error("expected a number")
        return self._advance().value  # type: ignore[return-value]

    def _parse_for_each(self) -> ast.ForEach:
        """``for each VAR in TYPE [such that cond and cond ...]
        print expr, expr``."""
        self._advance()  # for
        if not self._at_name("each"):
            raise self._error("expected 'each' after 'for'")
        self._advance()
        variable = self._expect_name()
        if not self._at_name("in"):
            raise self._error("expected 'in' in for-each")
        self._advance()
        type_name = self._expect_name()
        conditions: list[ast.Condition] = []
        if self._at_name("such"):
            self._advance()
            if not self._at_name("that"):
                raise self._error("expected 'that' after 'such'")
            self._advance()
            conditions.append(self._parse_condition(variable))
            while self._at_name("and"):
                self._advance()
                conditions.append(self._parse_condition(variable))
        if not self._at_name("print"):
            raise self._error("expected 'print' in for-each")
        self._advance()
        prints = [self.parse_query_expr()]
        while self._at_punct(","):
            self._advance()
            prints.append(self.parse_query_expr())
        return ast.ForEach(
            variable, type_name, tuple(conditions), tuple(prints)
        )

    def _parse_condition(self, variable: str) -> ast.Condition:
        query = self.parse_query_expr()
        self._expect_punct("(")
        argument = self._expect_name()
        if argument != variable:
            raise self._error(
                f"condition must apply to the loop variable "
                f"{variable!r}, not {argument!r}"
            )
        self._expect_punct(")")
        if self._at_punct("="):
            self._advance()
            op = "="
        elif self._at_name("contains"):
            self._advance()
            op = "contains"
        else:
            raise self._error("expected '=' or 'contains' in condition")
        return ast.Condition(query, op, self.parse_value())

    def _parse_retract(self) -> ast.Retract:
        self._advance()  # retract
        return ast.Retract(self._expect_name())

    def _parse_extent(self) -> ast.Extent:
        self._advance()  # extent
        return ast.Extent(self._expect_name())

    def _parse_guard(self) -> ast.Guard:
        self._advance()  # guard
        mode = self._expect_name()
        if mode not in ("on", "off"):
            raise self._error("guard takes 'on' or 'off'")
        return ast.Guard(mode == "on")

    def _parse_trace(self) -> ast.Trace:
        self._advance()  # trace
        mode = self._expect_name()
        if mode not in ("on", "off", "show"):
            raise self._error("trace takes 'on', 'off' or 'show'")
        dot_path: str | None = None
        if self._at_punct("-"):
            # "--dot" lexes as PUNCT(-) PUNCT(-) NAME(dot).
            self._advance()
            self._expect_punct("-")
            flag = self._expect_name()
            if flag != "dot" or mode != "show":
                raise self._error(
                    "the only trace flag is 'show --dot \"path\"'"
                )
            if self.current.kind != "STRING":
                raise self._error("expected a quoted path after --dot")
            dot_path = self._advance().text
        return ast.Trace(mode, dot_path)

    def _parse_slowlog(self) -> ast.SlowLogCmd:
        self._advance()  # slowlog
        if self._at_name("off", "clear"):
            return ast.SlowLogCmd(self._advance().text)
        # 'slowlog query 0.5' sets a threshold; a bare 'slowlog'
        # followed by a query *statement* must not be swallowed, so
        # require the NUMBER to disambiguate.
        if (self._at_name("query", "update")
                and self._tokens[self._index + 1].kind == "NUMBER"):
            mode = self._advance().text
            return ast.SlowLogCmd(mode, self._parse_number())
        return ast.SlowLogCmd("show")

    def _parse_deadline(self) -> ast.DeadlineCmd:
        self._advance()  # deadline
        if self._at_name("off"):
            self._advance()
            return ast.DeadlineCmd("off")
        if self.current.kind == "NUMBER":
            seconds = self._parse_number()
            if seconds <= 0:
                raise self._error("deadline must be positive")
            return ast.DeadlineCmd("set", seconds)
        return ast.DeadlineCmd("show")

    def _parse_monitor(self) -> ast.Monitor:
        self._advance()  # monitor
        if self._at_name("stop"):
            self._advance()
            return ast.Monitor("stop")
        if self._at_name("serve"):
            self._advance()
            port: int | None = None
            if self.current.kind == "NUMBER":
                value = self._parse_number()
                port = int(value)
                if port != value or not 0 <= port <= 65535:
                    raise self._error(
                        "monitor serve takes a port in 0..65535"
                    )
            return ast.Monitor("serve", port)
        return ast.Monitor("show")

    def _parse_timeline(self) -> ast.Timeline:
        self._advance()  # timeline
        path: str | None = None
        if self.current.kind == "STRING":
            path = self._advance().text
        return ast.Timeline(path)

    def _parse_shardmap(self) -> ast.ShardMapCmd:
        self._advance()  # shardmap
        shards = 2
        if self.current.kind == "NUMBER":
            value = self._parse_number()
            shards = int(value)
            if shards != value or shards < 1:
                raise self._error(
                    "shardmap takes a positive whole lane count"
                )
        return ast.ShardMapCmd(shards)

    def _parse_promote(self) -> ast.Promote:
        self._advance()  # promote
        name: str | None = None
        if self.current.kind in ("NAME", "STRING"):
            name = self._advance().text
        return ast.Promote(name)

    # -- values ------------------------------------------------------------------------------

    def parse_value(self) -> Value:
        token = self.current
        if token.kind in ("NAME", "NUMBER", "STRING"):
            self._advance()
            return token.value
        if self._at_punct("("):
            self._advance()
            items = [self.parse_value()]
            while self._at_punct(","):
                self._advance()
                items.append(self.parse_value())
            self._expect_punct(")")
            if len(items) == 1:
                return items[0]
            return tuple(items)
        raise self._error(f"expected a value, found {token.text!r}")


def parse_program(text: str) -> list[ast.Statement]:
    """Parse a whole script into statements."""
    return _Parser(tokenize(text)).parse_program()


def parse_statement(text: str) -> ast.Statement:
    """Parse exactly one statement (trailing terminators allowed)."""
    parser = _Parser(tokenize(text))
    parser._skip_terminators()
    statement = parser.parse_statement()
    parser._skip_terminators()
    if parser.current.kind != "EOF":
        raise ParseError(
            f"unexpected trailing input: {parser.current.text!r}",
            parser.current.line,
            parser.current.column,
        )
    return statement
