"""The interactive console tool (``fdb-repl``).

This is the paper's "interactive design aid" as a runnable program: a
read-eval-print loop over the surface language, with Method 2.1's
designer dialogue carried out on the console — cycles are printed with
their candidate derived functions and the designer answers with the
name of the function to classify as derived (or nothing to keep the
cycle), exactly the interaction Section 2.3 narrates.

Run ``fdb-repl`` (installed by the package) or
``python -m repro.lang.repl``. Pass a script path to execute it before
entering the loop; ``--batch`` exits after the script;
``--deadline SECONDS`` bounds every statement's wall clock (same as
the ``deadline`` command).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Callable, TextIO

from repro.core.derivation import Derivation
from repro.core.design_aid import CycleReport, Designer
from repro.core.schema import FunctionDef
from repro.lang.interp import Interpreter

__all__ = ["ConsoleDesigner", "Repl", "main"]

_PROMPT = "fdb> "
_BANNER = """\
functional database design aid & update tool
(reproduction of Yerneni & Lanka, ICDE 1989 -- type 'help')"""


class ConsoleDesigner(Designer):
    """Method 2.1's designer dialogue over input()/print()."""

    def __init__(self, input_fn: Callable[[str], str] = input,
                 output: TextIO | None = None) -> None:
        self._input = input_fn
        self._output = output

    def _say(self, text: str) -> None:
        # Resolve sys.stdout lazily so stream redirection (tests,
        # pipes) set up after import still takes effect.
        print(text, file=self._output or sys.stdout)

    def break_cycle(self, report: CycleReport) -> str | None:
        self._say(report.describe())
        if not report.candidates:
            self._say("no candidate derived functions; keeping the cycle")
            return None
        names = [f.name for f in report.candidate_functions]
        while True:
            answer = self._input(
                f"remove which edge as derived? [{'/'.join(names)}/keep] "
            ).strip()
            if answer in ("", "keep", "none"):
                return None
            if answer in names:
                return answer
            self._say(f"please answer one of {names} or 'keep'")

    def confirm_derivation(self, function: FunctionDef,
                           derivation: Derivation) -> bool:
        while True:
            answer = self._input(
                f"confirm derivation {function.name} = {derivation}? [y/n] "
            ).strip().lower()
            if answer in ("y", "yes", ""):
                return True
            if answer in ("n", "no"):
                return False
            self._say("please answer y or n")


class Repl:
    """The loop: read a statement, execute, print."""

    def __init__(self, input_fn: Callable[[str], str] = input,
                 output: TextIO | None = None) -> None:
        self._input = input_fn
        self._output = output
        designer = ConsoleDesigner(input_fn, output)
        self.interpreter = Interpreter(designer)

    def _say(self, text: str) -> None:
        print(text, file=self._output or sys.stdout)

    def run_script(self, text: str) -> None:
        for line in self.interpreter.execute(text):
            self._say(line)

    def loop(self) -> None:
        self._say(_BANNER)
        while True:
            try:
                line = self._input(_PROMPT)
            except (EOFError, KeyboardInterrupt):
                self._say("")
                return
            stripped = line.strip()
            if stripped in ("exit", "quit"):
                return
            if not stripped:
                continue
            for out in self.interpreter.execute(line):
                self._say(out)


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``fdb-repl`` console script."""
    args = list(sys.argv[1:] if argv is None else argv)
    batch = "--batch" in args
    if batch:
        args.remove("--batch")
    deadline: float | None = None
    if "--deadline" in args:
        at = args.index("--deadline")
        try:
            deadline = float(args[at + 1])
        except (IndexError, ValueError):
            print("--deadline requires a number of seconds",
                  file=sys.stderr)
            return 2
        del args[at:at + 2]
    repl = Repl()
    if deadline is not None:
        repl.interpreter.deadline_seconds = deadline
    for path in args:
        repl.run_script(Path(path).read_text(encoding="utf-8"))
    if not batch:
        repl.loop()
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
