"""Tokenizer for the surface language.

Hand-rolled single-pass scanner producing position-annotated tokens.
Token kinds:

====== =========================================================
NAME    identifiers (``teach``, ``letter_grade``); keywords are
        plain NAMEs resolved contextually by the parser
NUMBER  integer or decimal literals (``42``, ``3.5``)
STRING  double- or single-quoted, with backslash escapes
PUNCT   one of ``: ; , ( ) [ ] - .``, plus the two-character
        ``->`` and the three-character inverse marker ``^-1``
====== =========================================================

``#`` starts a comment running to end of line. Newlines are
insignificant (statements are self-delimiting, semicolons optional).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParseError

__all__ = ["Token", "tokenize"]

_PUNCT_MULTI = ("->", "^-1")
_PUNCT_SINGLE = ":;,()[]-.="
_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CONT = _NAME_START | set("0123456789")
_DIGITS = set("0123456789")


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its 1-based source position."""

    kind: str  # "NAME" | "NUMBER" | "STRING" | "PUNCT" | "EOF"
    text: str
    line: int
    column: int

    @property
    def value(self) -> str | int | float:
        """The Python value a literal token denotes."""
        if self.kind == "NUMBER":
            return float(self.text) if "." in self.text else int(self.text)
        return self.text

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def tokenize(text: str) -> list[Token]:
    """Scan ``text`` into tokens, ending with an EOF token."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    index = 0
    line = 1
    column = 1
    length = len(text)

    def advance(count: int = 1) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and text[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = text[index]
        if char in " \t\r\n":
            advance()
            continue
        if char == "#":
            while index < length and text[index] != "\n":
                advance()
            continue
        start_line, start_column = line, column
        multi = next(
            (p for p in _PUNCT_MULTI if text.startswith(p, index)), None
        )
        if multi is not None:
            advance(len(multi))
            yield Token("PUNCT", multi, start_line, start_column)
            continue
        if char in _PUNCT_SINGLE:
            advance()
            yield Token("PUNCT", char, start_line, start_column)
            continue
        if char in ('"', "'"):
            yield _scan_string(text, index, start_line, start_column,
                               advance)
            continue
        if char in _DIGITS:
            begin = index
            while index < length and text[index] in _DIGITS:
                advance()
            if index < length and text[index] == ".":
                advance()
                while index < length and text[index] in _DIGITS:
                    advance()
            yield Token("NUMBER", text[begin:index], start_line, start_column)
            continue
        if char in _NAME_START:
            begin = index
            while index < length and text[index] in _NAME_CONT:
                advance()
            yield Token("NAME", text[begin:index], start_line, start_column)
            continue
        raise ParseError(f"unexpected character {char!r}", line, column)
    yield Token("EOF", "", line, column)


def _scan_string(text: str, start: int, line: int, column: int,
                 advance) -> Token:
    quote = text[start]
    advance()  # opening quote
    parts: list[str] = []
    index = start + 1
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 1 < len(text):
            escape = text[index + 1]
            parts.append(
                {"n": "\n", "t": "\t"}.get(escape, escape)
            )
            advance(2)
            index += 2
            continue
        if char == quote:
            advance()
            return Token("STRING", "".join(parts), line, column)
        if char == "\n":
            break
        parts.append(char)
        advance()
        index += 1
    raise ParseError("unterminated string literal", line, column)
