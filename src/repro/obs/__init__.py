"""Observability for the functional database runtime.

The paper's update machinery turns one ``DEL``/``INS`` into a cascade
of chain enumerations, negated conjunctions and base mutations; this
package makes that cascade *reportable* — as counters and histograms
(:mod:`repro.obs.metrics`), hierarchical update-propagation traces
(:mod:`repro.obs.tracing`), per-function/per-derivation cost profiles
(:mod:`repro.obs.profile`), a structured event log with pluggable
sinks and causal links (:mod:`repro.obs.events`), slow-path
attribution (:mod:`repro.obs.slowlog`), JSON/text renderings of
all of it (:mod:`repro.obs.export`), declarative service-level
objectives with burn-rate alerting (:mod:`repro.obs.slo`), and a live
stdlib HTTP exposition endpoint serving Prometheus text format
(:mod:`repro.obs.endpoint`).

Everything hangs off the process-wide :data:`OBS` context
(:mod:`repro.obs.hooks`), which is **disabled by default**: hot paths
guard instrumentation behind a single ``if OBS.enabled:`` attribute
check, so the un-observed runtime is unchanged.

>>> from repro.obs import OBS                        # doctest: +SKIP
>>> OBS.enable(tracing=True)                         # doctest: +SKIP
>>> db.delete("pupil", "euclid", "john")             # doctest: +SKIP
>>> print(OBS.tracer.last_trace.render())            # doctest: +SKIP
"""

from __future__ import annotations

from repro.obs.events import (
    CallbackSink,
    EventLog,
    EventRecord,
    FileSink,
    PropagationDag,
    ReplicationTimeline,
    RingBufferSink,
    Sink,
    TimelineEntry,
    propagation_dag,
    read_jsonl,
    replication_timeline,
    span_records,
)
from repro.obs.endpoint import (
    ExpositionError,
    MetricsEndpoint,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.hooks import OBS, Instrumentation
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LogHistogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.slo import (
    Objective,
    SLOMonitor,
    Verdict,
    default_objectives,
    replication_lag_objective,
)
from repro.obs.profile import ProfileEntry, Profiler
from repro.obs.slowlog import SlowLog, SlowRecord
from repro.obs.tracing import Span, SpanEvent, Tracer
from repro.obs.export import (
    render_metrics,
    render_monitor,
    render_profile,
    render_replication,
    render_slowlog,
    render_stats,
    render_timeline,
    snapshot,
    to_json,
    write_json,
)

__all__ = [
    "OBS",
    "Instrumentation",
    "Counter",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricError",
    "MetricsRegistry",
    "Objective",
    "Verdict",
    "SLOMonitor",
    "default_objectives",
    "replication_lag_objective",
    "MetricsEndpoint",
    "ExpositionError",
    "render_prometheus",
    "parse_prometheus",
    "ProfileEntry",
    "Profiler",
    "Span",
    "SpanEvent",
    "Tracer",
    "EventRecord",
    "EventLog",
    "Sink",
    "RingBufferSink",
    "FileSink",
    "CallbackSink",
    "propagation_dag",
    "PropagationDag",
    "read_jsonl",
    "span_records",
    "TimelineEntry",
    "ReplicationTimeline",
    "replication_timeline",
    "SlowLog",
    "SlowRecord",
    "snapshot",
    "to_json",
    "write_json",
    "render_metrics",
    "render_monitor",
    "render_profile",
    "render_replication",
    "render_slowlog",
    "render_stats",
    "render_timeline",
]
