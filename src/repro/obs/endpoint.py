"""Live metrics exposition over HTTP — stdlib only.

:class:`MetricsEndpoint` wraps a :class:`~http.server.ThreadingHTTPServer`
on a background thread and serves three routes:

* ``/metrics`` — the registry in Prometheus text exposition format
  0.0.4 (:func:`render_prometheus`): counters as ``_total`` samples,
  gauges as-is, sampling histograms as summaries with quantile labels,
  log-bucketed histograms as real Prometheus histograms with
  cumulative ``le`` buckets (mergeable server-side, exactly because
  :class:`repro.obs.metrics.LogHistogram` keeps cumulative-friendly
  buckets).
* ``/health`` — liveness verdict: HTTP 200 with a JSON body when the
  supplied health probe (breaker state + SLO alerts for the service)
  says healthy, 503 otherwise — the shape load balancers and soak
  scrapers expect.
* ``/slo`` — the SLO monitor's full verdict snapshot as JSON.

:func:`parse_prometheus` is the validating counterpart the chaos soak
and CI scrape use: it re-parses an exposition body, enforcing the
format's structural rules (name syntax, TYPE consistency, cumulative
non-decreasing buckets ending in ``+Inf`` equal to ``_count``), so a
malformed ``/metrics`` fails loudly instead of being silently dropped
by a real scraper.

Dotted metric names (``service.red.execute.duration_seconds``) map to
Prometheus names by replacing every non-``[a-zA-Z0-9_]`` character
with ``_`` (``service_red_execute_duration_seconds``).
"""

from __future__ import annotations

import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.errors import ReproError
from repro.obs.metrics import (Counter, Gauge, Histogram, LogHistogram,
                               MetricsRegistry)

__all__ = ["MetricsEndpoint", "ExpositionError", "render_prometheus",
           "parse_prometheus"]


class ExpositionError(ReproError):
    """An exposition body violated the Prometheus text format."""


_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")
_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)(?: (?P<ts>-?\d+))?$"
)
_LABEL_PAIR = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"$'
)


def _prom_name(dotted: str) -> str:
    name = _NAME_OK.sub("_", dotted)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or value == int(value):
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every instrument of ``registry`` as Prometheus text
    exposition format 0.0.4 (trailing newline included)."""
    lines: list[str] = []
    instruments = sorted(registry, key=lambda ins: ins.name)
    for ins in instruments:
        name = _prom_name(ins.name)
        if isinstance(ins, Counter):
            lines.append(f"# HELP {name}_total {ins.name}")
            lines.append(f"# TYPE {name}_total counter")
            lines.append(f"{name}_total {_fmt(ins.value)}")
        elif isinstance(ins, Gauge):
            lines.append(f"# HELP {name} {ins.name}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(ins.value)}")
        elif isinstance(ins, LogHistogram):
            lines.append(f"# HELP {name} {ins.name}")
            lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in ins.buckets():
                lines.append(
                    f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {ins.count}')
            lines.append(f"{name}_sum {_fmt(ins.total)}")
            lines.append(f"{name}_count {ins.count}")
        elif isinstance(ins, Histogram):
            lines.append(f"# HELP {name} {ins.name}")
            lines.append(f"# TYPE {name} summary")
            for q in (0.5, 0.95, 0.99):
                lines.append(
                    f'{name}{{quantile="{_fmt(q)}"}} '
                    f"{_fmt(ins.percentile(q * 100))}"
                )
            lines.append(f"{name}_sum {_fmt(ins.total)}")
            lines.append(f"{name}_count {ins.count}")
    return "\n".join(lines) + "\n"


def _parse_value(raw: str, where: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise ExpositionError(f"{where}: bad sample value {raw!r}")


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse (and validate) a Prometheus text exposition body.

    Returns ``{family_name: {"type": str, "samples": {key: value}}}``
    where ``key`` is the full sample name plus its sorted label string.
    Raises :class:`ExpositionError` on any structural violation: bad
    metric/label syntax, a sample under a family whose TYPE was never
    declared, histogram buckets that are not cumulative, or a
    histogram whose ``+Inf`` bucket disagrees with ``_count``.
    """
    if not text.endswith("\n"):
        raise ExpositionError("exposition must end with a newline")
    families: dict[str, dict] = {}
    declared: dict[str, str] = {}
    for lineno, line in enumerate(text.split("\n")[:-1], start=1):
        where = f"line {lineno}"
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _METRIC_NAME.match(parts[2]):
                raise ExpositionError(f"{where}: malformed HELP line")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if (len(parts) != 4 or not _METRIC_NAME.match(parts[2])
                    or parts[3] not in ("counter", "gauge", "histogram",
                                        "summary", "untyped")):
                raise ExpositionError(f"{where}: malformed TYPE line")
            declared[parts[2]] = parts[3]
            families.setdefault(
                parts[2], {"type": parts[3], "samples": {}}
            )
            continue
        if line.startswith("#"):
            continue  # plain comment
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ExpositionError(f"{where}: malformed sample: {line!r}")
        name = match.group("name")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in raw_labels.split(","):
                pair_match = _LABEL_PAIR.match(pair)
                if pair_match is None:
                    raise ExpositionError(
                        f"{where}: malformed label pair {pair!r}"
                    )
                labels[pair_match.group("key")] = pair_match.group("val")
        value = _parse_value(match.group("value"), where)
        # A sample belongs to the family that declared it — for
        # histograms/summaries that family is the name minus the
        # _bucket/_sum/_count (or quantile) suffix.
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and declared.get(base) in ("histogram", "summary"):
                family = base
                break
        if family not in declared:
            raise ExpositionError(
                f"{where}: sample {name!r} has no TYPE declaration"
            )
        label_key = ",".join(
            f"{k}={v}" for k, v in sorted(labels.items())
        )
        key = f"{name}{{{label_key}}}" if label_key else name
        families[family]["samples"][key] = value
    for family, info in families.items():
        if info["type"] != "histogram":
            continue
        samples = info["samples"]
        buckets = []
        for key, value in samples.items():
            if key.startswith(f"{family}_bucket{{"):
                match = re.search(r'le=(?:\\")?([^,}"]+)', key)
                if match is None:
                    raise ExpositionError(
                        f"histogram {family!r}: bucket without le label"
                    )
                buckets.append(
                    (_parse_value(match.group(1), family), value)
                )
        if not buckets:
            raise ExpositionError(
                f"histogram {family!r} has no buckets"
            )
        buckets.sort()
        last = -1.0
        for bound, cumulative in buckets:
            if cumulative < last:
                raise ExpositionError(
                    f"histogram {family!r}: bucket counts not cumulative"
                )
            last = cumulative
        if buckets[-1][0] != math.inf:
            raise ExpositionError(
                f"histogram {family!r}: missing +Inf bucket"
            )
        count = samples.get(f"{family}_count")
        if count is not None and buckets[-1][1] != count:
            raise ExpositionError(
                f"histogram {family!r}: +Inf bucket {buckets[-1][1]} "
                f"!= _count {count}"
            )
    return families


class MetricsEndpoint:
    """The live exposition server (see module docstring).

    ``health`` is a zero-argument callable returning a JSON-ready dict
    that must contain a boolean ``"healthy"`` key; ``slo`` is an
    optional :class:`repro.obs.slo.SLOMonitor`. Binds ``host:port``
    (port 0 picks a free one) on :meth:`start`; idempotent
    :meth:`stop`.
    """

    def __init__(self, registry: MetricsRegistry, *,
                 slo=None, health: Callable[[], dict] | None = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.registry = registry
        self.slo = slo
        self._health = health
        self.host = host
        self.port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- routes -------------------------------------------------------------

    def _metrics_body(self) -> tuple[int, str, str]:
        return (200, "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(self.registry))

    def _health_body(self) -> tuple[int, str, str]:
        verdict = dict(self._health()) if self._health else {}
        if self.slo is not None:
            verdict["slo_alerts"] = list(self.slo.alerts)
            verdict.setdefault("healthy", True)
            if not self.slo.healthy:
                verdict["healthy"] = False
        verdict.setdefault("healthy", True)
        status = 200 if verdict["healthy"] else 503
        return (status, "application/json",
                json.dumps(verdict, sort_keys=True) + "\n")

    def _slo_body(self) -> tuple[int, str, str]:
        if self.slo is None:
            return 404, "application/json", '{"error": "no slo monitor"}\n'
        return (200, "application/json",
                json.dumps(self.slo.snapshot(), sort_keys=True) + "\n")

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "MetricsEndpoint":
        if self._server is not None:
            return self
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    status, ctype, body = endpoint._metrics_body()
                elif path == "/health":
                    status, ctype, body = endpoint._health_body()
                elif path == "/slo":
                    status, ctype, body = endpoint._slo_body()
                else:
                    status, ctype, body = (
                        404, "text/plain", "not found\n"
                    )
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args) -> None:
                pass  # scrapes must not spam the service's stderr

        self._server = ThreadingHTTPServer((self.host, self.port),
                                           Handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-endpoint", daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._server = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._server is not None

    def __enter__(self) -> "MetricsEndpoint":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
