"""The structured event log: typed records, pluggable sinks, causal DAGs.

Span trees (:mod:`repro.obs.tracing`) answer "what did this update do"
interactively; the event log answers it *durably and causally*. Every
span boundary, update side-effect, WAL append and recovery action is
emitted as one :class:`EventRecord` — a flat, JSON-ready object with
three causal fields:

* ``span_id`` — the span the record belongs to (span boundaries carry
  their own id);
* ``parent_span`` — the enclosing span, so the span *tree* can be
  rebuilt from the flat stream;
* ``cause`` — the update id (``u1``, ``u2``, ...) whose propagation
  produced the record, inherited down the span context, so a whole
  cascade (derived delete → chain enumeration → NC creation → WAL
  append) can be grouped and rendered as a DAG.

Records flow through pluggable :class:`Sink` implementations attached
to the process-wide :class:`EventLog` (``OBS.events``):

* :class:`RingBufferSink` — the last N records in memory (the REPL and
  the tests read this);
* :class:`FileSink` — append-only JSONL (one record per line);
* :class:`CallbackSink` — hand each record to a callable (bridges to
  external collectors).

Emission is wholly decoupled from tracing: with ``OBS.enabled`` and at
least one sink attached, records flow even when span-tree construction
is off. With no sinks attached the pipeline costs one attribute check.

:func:`propagation_dag` folds a record stream back into a
:class:`PropagationDag`; :meth:`PropagationDag.to_dot` renders it via
:func:`repro.core.dot.dag_to_dot`, closing the loop the acceptance
test exercises: events → JSONL → DAG → DOT.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "EventRecord",
    "Sink",
    "RingBufferSink",
    "FileSink",
    "CallbackSink",
    "EventLog",
    "read_jsonl",
    "PropagationDag",
    "propagation_dag",
    "span_records",
    "TimelineEntry",
    "ReplicationTimeline",
    "replication_timeline",
]


def _format_value(value) -> str:
    # Lazy import, same reason as repro.obs.tracing: fdb modules import
    # obs at module level, so obs must not import fdb until first use.
    from repro.fdb.values import format_value

    return format_value(value)


@dataclass(frozen=True)
class EventRecord:
    """One typed record of the event log.

    ``kind`` is the record type — ``span.start``, ``span.end``,
    ``event`` (a point marker inside a span), or ``action`` (a
    standalone occurrence outside any span, e.g. a recovery step).
    ``seq`` is a process-wide monotone ordering key; ``ts`` is wall
    time (``time.time()``); attribute values are stringified through
    :func:`repro.fdb.values.format_value` so indexed nulls stay
    diffable across runs.
    """

    seq: int
    ts: float
    kind: str
    name: str
    span_id: int | None = None
    parent_span: int | None = None
    cause: str | None = None
    duration: float | None = None
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        record: dict = {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "name": self.name,
        }
        if self.span_id is not None:
            record["span_id"] = self.span_id
        if self.parent_span is not None:
            record["parent_span"] = self.parent_span
        if self.cause is not None:
            record["cause"] = self.cause
        if self.duration is not None:
            record["duration"] = self.duration
        if self.attrs:
            record["attrs"] = {
                key: _format_value(value)
                for key, value in self.attrs.items()
            }
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)

    @classmethod
    def from_dict(cls, raw: dict) -> "EventRecord":
        return cls(
            seq=raw.get("seq", 0),
            ts=raw.get("ts", 0.0),
            kind=raw["kind"],
            name=raw["name"],
            span_id=raw.get("span_id"),
            parent_span=raw.get("parent_span"),
            cause=raw.get("cause"),
            duration=raw.get("duration"),
            attrs=dict(raw.get("attrs", {})),
        )


class Sink:
    """Where event records go. Subclasses implement :meth:`emit`."""

    def emit(self, record: EventRecord) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; the default has none."""


class RingBufferSink(Sink):
    """The most recent ``capacity`` records, in memory."""

    def __init__(self, capacity: int = 1024) -> None:
        self._records: deque[EventRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def emit(self, record: EventRecord) -> None:
        with self._lock:
            self._records.append(record)

    @property
    def records(self) -> tuple[EventRecord, ...]:
        with self._lock:
            return tuple(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class FileSink(Sink):
    """Append-only JSONL file of records.

    The handle is opened lazily and kept open between emits (an event
    log that re-opened per record would dominate the cost it
    measures). Writes are line-buffered, not fsync'd — the event log
    is diagnostic, not durable state; the WAL owns durability.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = None
        self._lock = threading.Lock()

    def emit(self, record: EventRecord) -> None:
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(record.to_json() + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class CallbackSink(Sink):
    """Hand each record to a callable (testing, external bridges)."""

    def __init__(self, callback: Callable[[EventRecord], None]) -> None:
        self._callback = callback

    def emit(self, record: EventRecord) -> None:
        self._callback(record)


class EventLog:
    """The fan-out point: one :meth:`emit` call, every attached sink.

    ``active`` is the single attribute hot paths check before building
    a record, so a process with no sinks pays one boolean load. Sink
    errors propagate — a sink that cannot accept records is a
    configuration bug the operator must see, not silently lose data
    over.
    """

    def __init__(self) -> None:
        self._sinks: list[Sink] = []
        self._seq = itertools.count(1)
        self.active = False

    def add_sink(self, sink: Sink) -> Sink:
        self._sinks.append(sink)
        self.active = True
        return sink

    def remove_sink(self, sink: Sink) -> None:
        self._sinks.remove(sink)
        sink.close()
        self.active = bool(self._sinks)

    def clear_sinks(self) -> None:
        for sink in self._sinks:
            sink.close()
        self._sinks.clear()
        self.active = False

    @property
    def sinks(self) -> tuple[Sink, ...]:
        return tuple(self._sinks)

    def emit(
        self,
        kind: str,
        name: str,
        *,
        span_id: int | None = None,
        parent_span: int | None = None,
        cause: str | None = None,
        duration: float | None = None,
        attrs: dict | None = None,
    ) -> EventRecord | None:
        """Build and fan out one record; no-op without sinks."""
        if not self.active:
            return None
        record = EventRecord(
            seq=next(self._seq),
            ts=time.time(),
            kind=kind,
            name=name,
            span_id=span_id,
            parent_span=parent_span,
            cause=cause,
            duration=duration,
            attrs=attrs or {},
        )
        for sink in self._sinks:
            sink.emit(record)
        return record


def read_jsonl(path: str | Path) -> list[EventRecord]:
    """Decode a :class:`FileSink` artifact back into records."""
    records: list[EventRecord] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(EventRecord.from_dict(json.loads(line)))
    return records


# -- DAG reconstruction -------------------------------------------------------


@dataclass(frozen=True)
class DagNode:
    """One node of a propagation DAG: a span or a point event."""

    node_id: str
    label: str
    kind: str  # "span" | "event" | "action" | "cause"


@dataclass
class PropagationDag:
    """A record stream folded back into its causal structure.

    Nodes are spans, point events and standalone actions; edges run
    parent-span → child (tree structure) and update-cause → root span
    (causal attribution). The same trace always folds to the same DAG,
    so the DOT rendering is diffable.
    """

    nodes: list[DagNode] = field(default_factory=list)
    edges: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def node_ids(self) -> set[str]:
        return {node.node_id for node in self.nodes}

    def roots(self) -> list[DagNode]:
        """Nodes with no incoming edge."""
        targets = {dst for _, dst, _ in self.edges}
        return [n for n in self.nodes if n.node_id not in targets]

    def to_dot(self, *, name: str = "propagation") -> str:
        from repro.core.dot import dag_to_dot

        return dag_to_dot(
            [(n.node_id, n.label, n.kind) for n in self.nodes],
            self.edges,
            name=name,
        )


def _span_label(record: EventRecord) -> str:
    rendered = " ".join(
        f"{key}={value}" for key, value in record.attrs.items()
        if key not in ("update_id",)
    )
    label = record.name + (f"\n{rendered}" if rendered else "")
    if record.duration is not None:
        label += f"\n[{record.duration * 1000:.2f} ms]"
    return label


def propagation_dag(records: Iterable[EventRecord]) -> PropagationDag:
    """Reconstruct the propagation DAG of a record stream.

    ``span.start``/``span.end`` pairs collapse into one span node
    (labelled with the end record's duration); ``event`` records hang
    off their span; ``action`` records stand alone; each distinct
    ``cause`` becomes a source node with an edge to every root span it
    caused.
    """
    dag = PropagationDag()
    span_nodes: dict[int, DagNode] = {}
    span_parents: dict[int, int | None] = {}
    causes: dict[str, list[str]] = {}
    for record in records:
        if record.kind == "span.start":
            continue  # the matching span.end carries the duration
        if record.kind == "span.end":
            assert record.span_id is not None
            node = DagNode(f"s{record.span_id}", _span_label(record),
                           "span")
            span_nodes[record.span_id] = node
            span_parents[record.span_id] = record.parent_span
            dag.nodes.append(node)
            if record.cause is not None and record.parent_span is None:
                causes.setdefault(record.cause, []).append(node.node_id)
            continue
        node_id = f"e{record.seq}"
        kind = "event" if record.kind == "event" else "action"
        dag.nodes.append(DagNode(node_id, _span_label(record), kind))
        if record.span_id is not None:
            dag.edges.append((f"s{record.span_id}", node_id, ""))
        elif record.cause is not None:
            causes.setdefault(record.cause, []).append(node_id)
    for span_id, parent in span_parents.items():
        if parent is not None and parent in span_nodes:
            dag.edges.append((f"s{parent}", f"s{span_id}", ""))
    for cause, roots in causes.items():
        cause_id = f"c_{cause}"
        dag.nodes.append(DagNode(cause_id, cause, "cause"))
        for root in roots:
            dag.edges.append((cause_id, root, "causes"))
    # Events attached to spans that never closed (span.end missing,
    # e.g. a truncated JSONL) keep their edges only if the span node
    # exists; prune dangling edges so the DOT stays well-formed.
    known = dag.node_ids
    dag.edges = [
        (src, dst, label) for src, dst, label in dag.edges
        if src in known and dst in known
    ]
    return dag


# -- replication audit timeline -----------------------------------------------
#
# Replication lifecycle steps are emitted as ``action`` records
# (``replication.promote``, ``replication.fence``, ...). The fold below
# projects a record stream onto just those actions and types them, so a
# failover can be audited from the same JSONL artifact the soak already
# writes: which commits were acked under which term, where the fence
# fell, who was promoted, who re-bootstrapped via snapshot.

_TIMELINE_KINDS = {
    "replication.primary_attached": "attach",
    "replication.commit_acked": "commit",
    "replication.ack_timeout": "ack_timeout",
    "replication.write_fenced": "write_fenced",
    "replication.fence": "fence",
    "replication.promote": "promote",
    "replication.rejoin": "rejoin",
    "replication.catch_up": "catch_up",
    "replication.snapshot_bootstrap": "snapshot_bootstrap",
    "replication.snapshot_installed": "snapshot_install",
    "replication.lease_granted": "lease_grant",
    "replication.lease_renewed": "lease_renew",
    "replication.lease_expired": "lease_expire",
    "replication.elected": "elect",
}


def _timeline_int(value) -> int | None:
    # Attr values arrive raw from a live RingBufferSink but stringified
    # after a JSONL round-trip; accept both.
    if value is None:
        return None
    try:
        return int(str(value))
    except (TypeError, ValueError):
        return None


@dataclass(frozen=True)
class TimelineEntry:
    """One typed step of the replication audit timeline.

    ``order`` is the source record's event-log ``seq`` — the process-
    wide total order the fence invariant is stated over. ``term`` is
    the term the step happened *under* (for ``fence`` the term being
    fenced; for ``promote`` the new term). ``commit_seq`` is set on
    ``commit`` entries, ``fence_seq`` on ``fence``/``rejoin`` entries;
    everything else stays available in ``attrs`` verbatim.
    """

    order: int
    ts: float
    kind: str
    name: str
    term: int | None
    replica: str | None
    commit_seq: int | None
    fence_seq: int | None
    attrs: dict

    def to_dict(self) -> dict:
        entry: dict = {
            "order": self.order,
            "ts": self.ts,
            "kind": self.kind,
            "name": self.name,
        }
        if self.term is not None:
            entry["term"] = self.term
        if self.replica is not None:
            entry["replica"] = self.replica
        if self.commit_seq is not None:
            entry["commit_seq"] = self.commit_seq
        if self.fence_seq is not None:
            entry["fence_seq"] = self.fence_seq
        if self.attrs:
            entry["attrs"] = {
                key: _format_value(value)
                for key, value in self.attrs.items()
            }
        return entry

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


@dataclass
class ReplicationTimeline:
    """The ordered audit timeline folded from a record stream."""

    entries: list[TimelineEntry] = field(default_factory=list)

    def __iter__(self) -> Iterator[TimelineEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def of_kind(self, kind: str) -> list[TimelineEntry]:
        return [entry for entry in self.entries if entry.kind == kind]

    def commits(self, *, term: int | None = None) -> list[TimelineEntry]:
        """Acked-commit entries, optionally restricted to one term."""
        return [
            entry for entry in self.entries
            if entry.kind == "commit"
            and (term is None or entry.term == term)
        ]

    def fence_violations(self) -> list[str]:
        """The audit check: every commit acked under a fenced term at
        or below the fence seq must precede the fence entry, and the
        first commit of the new term must follow it. Returns the
        violations (empty = timeline is well-ordered)."""
        problems: list[str] = []
        for fence in self.of_kind("fence"):
            new_term = _timeline_int(fence.attrs.get("new_term"))
            for commit in self.commits(term=fence.term):
                if (commit.commit_seq is not None
                        and fence.fence_seq is not None
                        and commit.commit_seq <= fence.fence_seq
                        and commit.order >= fence.order):
                    problems.append(
                        f"commit seq={commit.commit_seq} "
                        f"term={commit.term} recorded after its fence"
                    )
            if new_term is not None:
                early = [
                    commit for commit in self.commits(term=new_term)
                    if commit.order <= fence.order
                ]
                if early:
                    problems.append(
                        f"term {new_term} commit recorded before the "
                        f"fence of term {fence.term}"
                    )
        return problems

    def to_jsonl(self) -> str:
        return "".join(entry.to_json() + "\n" for entry in self.entries)


def replication_timeline(
    records: Iterable[EventRecord],
) -> ReplicationTimeline:
    """Fold a record stream into the replication audit timeline.

    Keeps only the ``action`` records named in the replication
    lifecycle vocabulary, in event-log order, typed per
    :data:`_TIMELINE_KINDS`. Works on live :class:`RingBufferSink`
    records and on :func:`read_jsonl` artifacts alike.
    """
    timeline = ReplicationTimeline()
    for record in records:
        if record.kind != "action":
            continue
        kind = _TIMELINE_KINDS.get(record.name)
        if kind is None:
            continue
        attrs = record.attrs
        if kind == "fence":
            term = _timeline_int(attrs.get("old_term"))
            fence_seq = _timeline_int(attrs.get("fence_seq"))
        elif kind == "rejoin":
            term = _timeline_int(attrs.get("old_term"))
            fence_seq = _timeline_int(attrs.get("fence_seq"))
        elif kind == "promote":
            term = _timeline_int(attrs.get("new_term"))
            fence_seq = _timeline_int(attrs.get("applied_seq"))
        elif kind == "write_fenced":
            term = _timeline_int(attrs.get("writer_term"))
            fence_seq = None
        else:
            term = _timeline_int(attrs.get("term"))
            fence_seq = None
        replica = attrs.get("replica") or attrs.get("chosen")
        commit_seq = (_timeline_int(attrs.get("seq"))
                      if kind in ("commit", "ack_timeout") else None)
        timeline.entries.append(TimelineEntry(
            order=record.seq,
            ts=record.ts,
            kind=kind,
            name=record.name,
            term=term,
            replica=str(replica) if replica is not None else None,
            commit_seq=commit_seq,
            fence_seq=fence_seq,
            attrs=dict(attrs),
        ))
    return timeline


def span_records(span, *, cause: str | None = None) -> list[EventRecord]:
    """Synthesize the record stream of one finished
    :class:`repro.obs.tracing.Span` tree (for rendering a live trace as
    a DAG without an attached sink)."""
    counter = itertools.count(1)
    records: list[EventRecord] = []

    def walk(node, parent_id: int | None) -> None:
        records.append(EventRecord(
            seq=next(counter), ts=0.0, kind="span.start", name=node.name,
            span_id=node.span_id, parent_span=parent_id,
            cause=cause or node.cause, attrs=dict(node.attrs),
        ))
        for event in node.events:
            records.append(EventRecord(
                seq=next(counter), ts=0.0, kind="event", name=event.name,
                span_id=node.span_id, parent_span=parent_id,
                cause=cause or node.cause, attrs=dict(event.attrs),
            ))
        for child in node.children:
            walk(child, node.span_id)
        records.append(EventRecord(
            seq=next(counter), ts=0.0, kind="span.end", name=node.name,
            span_id=node.span_id, parent_span=parent_id,
            cause=cause or node.cause, duration=node.duration,
            attrs=dict(node.attrs),
        ))

    walk(span, None)
    return records
