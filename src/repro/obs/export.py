"""Renderers for observability data: JSON for machines, text for humans.

Everything the instrumentation collects is already plain data
(:meth:`MetricsRegistry.snapshot`, :meth:`Profiler.snapshot`,
:meth:`Span.to_dict`); this module turns those dicts into the two
surfaces people actually read — ``benchmarks/results/*.json`` artifacts
and the REPL's ``stats`` table.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.hooks import OBS, Instrumentation

__all__ = ["snapshot", "to_json", "write_json", "render_metrics",
           "render_monitor", "render_profile", "render_replication",
           "render_slowlog", "render_stats", "render_timeline"]


def snapshot(obs: Instrumentation | None = None) -> dict:
    """Flags + metrics + profile of ``obs`` (default: the process-wide
    :data:`repro.obs.hooks.OBS`)."""
    return (obs or OBS).snapshot()


def to_json(data: dict, *, indent: int | None = 2) -> str:
    """JSON-encode a snapshot; non-JSON values fall back to ``str``
    (nulls, tuples and enum members all have stable renderings)."""
    return json.dumps(data, indent=indent, sort_keys=True, default=str)


def write_json(path: str | Path, data: dict, *,
               indent: int | None = 2) -> Path:
    path = Path(path)
    path.write_text(to_json(data, indent=indent) + "\n", encoding="utf-8")
    return path


def _seconds(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value * 1000:.3f}ms"


def render_metrics(metrics: dict) -> str:
    """A metrics snapshot (the dict :meth:`MetricsRegistry.snapshot`
    returns) as aligned text."""
    lines: list[str] = []
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name.ljust(width)}  {value}")
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name.ljust(width)}  {value}")
    if histograms:
        lines.append("histograms:")
        width = max(len(name) for name in histograms)
        for name, h in histograms.items():
            lines.append(
                f"  {name.ljust(width)}  n={h['count']} "
                f"mean={_seconds(h['mean'])} p95={_seconds(h['p95'])} "
                f"max={_seconds(h['max'])}"
            )
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)


def _slo_value(value: float | None) -> str:
    return "-" if value is None else f"{value:.4g}"


def render_monitor(metrics: dict, *, slo: dict | None = None,
                   top: int = 5) -> str:
    """The service-health dashboard the REPL's ``monitor`` command
    prints: RED per operation family, lock contention (waiters,
    upgrades, deadlocks, timeouts, worst wait/hold clusters),
    admission saturation, breaker state, and — when an
    :meth:`repro.obs.slo.SLOMonitor.snapshot` is passed — the SLO
    verdicts.

    ``metrics`` is a :meth:`MetricsRegistry.snapshot` dict; everything
    here degrades to "(no ... )" placeholders when the corresponding
    instruments have never fired, so the dashboard is safe to print
    against a cold registry.
    """
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    lines: list[str] = []

    # -- RED: one row per service.red.<family>.* triple -----------------
    families = sorted(
        name.split(".")[2] for name in counters
        if name.startswith("service.red.") and name.endswith(".requests")
    )
    lines.append("requests (RED):")
    if not families:
        lines.append("  (no service requests recorded)")
    else:
        rows = []
        for family in families:
            dur = histograms.get(
                f"service.red.{family}.duration_seconds", {}
            )
            rows.append((
                family,
                str(counters.get(f"service.red.{family}.requests", 0)),
                str(counters.get(f"service.red.{family}.errors", 0)),
                _seconds(dur.get("p50")),
                _seconds(dur.get("p95")),
                _seconds(dur.get("p99")),
            ))
        headers = ("family", "requests", "errors", "p50", "p95", "p99")
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows))
            for i in range(len(headers))
        ]
        lines.append(
            "  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths))
        )
        for row in rows:
            lines.append(
                "  " + "  ".join(c.ljust(w) for c, w in zip(row, widths))
            )

    # -- shard lanes (present only behind a ShardedDatabaseService) -----
    shard_ids = sorted({
        int(name.split(".")[2])
        for name in (*counters, *gauges, *histograms)
        if name.startswith("service.shard.")
        and name.split(".")[2].isdigit()
    })
    if shard_ids:
        lines.append("shards:")
        rows = []
        for shard in shard_ids:
            prefix = f"service.shard.{shard}."
            dur = histograms.get(prefix + "duration_seconds", {})
            rows.append((
                str(shard),
                str(counters.get(prefix + "requests", 0)),
                str(counters.get(prefix + "errors", 0)),
                "{:g}".format(gauges.get(prefix + "committed", 0)),
                _seconds(dur.get("p50")),
                _seconds(dur.get("p99")),
            ))
        headers = ("lane", "requests", "errors", "committed",
                   "p50", "p99")
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows))
            for i in range(len(headers))
        ]
        lines.append(
            "  " + "  ".join(h.ljust(w)
                             for h, w in zip(headers, widths))
        )
        for row in rows:
            lines.append(
                "  " + "  ".join(c.ljust(w)
                                 for c, w in zip(row, widths))
            )
        lines.append(
            "  global lane: multi-shard retries={} "
            "scatter reads={}".format(
                counters.get("service.shard.multi_retries", 0),
                counters.get("service.shard.scatter_reads", 0),
            )
        )

    # -- lock contention ------------------------------------------------
    lines.append("locks:")
    lines.append(
        "  waiters={:g} upgrades={} deadlocks={} timeouts={}".format(
            gauges.get("service.lock.waiters", 0),
            counters.get("service.lock.upgrades", 0),
            counters.get("service.lock.deadlocks", 0),
            counters.get("service.lock.timeouts", 0),
        )
    )
    for kind in ("wait", "hold"):
        prefix = f"service.lock.{kind}."
        per_cluster = sorted(
            ((name[len(prefix):], h) for name, h in histograms.items()
             if name.startswith(prefix)),
            key=lambda item: -(item[1].get("p95") or 0.0),
        )
        if per_cluster:
            worst = ", ".join(
                f"{cluster} p95={_seconds(h.get('p95'))} "
                f"(n={h.get('count')})"
                for cluster, h in per_cluster[:top]
            )
            lines.append(f"  worst {kind}: {worst}")

    # -- admission + breaker --------------------------------------------
    lines.append(
        "admission: active={:g} queued={:g} shed={}".format(
            gauges.get("service.active", 0),
            gauges.get("service.queued", 0),
            counters.get("service.shed", 0),
        )
    )
    state_names = {0: "closed", 1: "half_open", 2: "open"}
    code = gauges.get("service.breaker.state")
    lines.append(
        "breaker: "
        + ("(no transitions recorded)" if code is None
           else f"{state_names.get(int(code), '?')} (code {int(code)})")
    )

    # -- WAL + replication (gauges refreshed by health()/lag()) ---------
    wal_seq = gauges.get("fdb.wal.last_seq")
    if wal_seq is not None:
        lines.append(
            "wal: applied seq {:g}, {}".format(
                wal_seq,
                "TAIL TORN" if gauges.get("fdb.wal.tail_torn")
                else "tail clean",
            )
        )
    lag_prefix = "replication.lag.seq."
    lag_rows = sorted(
        (name[len(lag_prefix):], value)
        for name, value in gauges.items()
        if name.startswith(lag_prefix)
    )
    if lag_rows or gauges.get("replication.term") is not None:
        lines.append(
            "replication: term {:g}, {} shipped / {} applied, "
            "{} ack timeouts, {} fenced writes, {} promotions, "
            "{} rejoins".format(
                gauges.get("replication.term", 0),
                counters.get("replication.records_shipped", 0),
                counters.get("replication.records_applied", 0),
                counters.get("replication.ack_timeouts", 0),
                counters.get("replication.fenced_writes", 0),
                counters.get("replication.promotions", 0),
                counters.get("replication.rejoins", 0),
            )
        )
        lease_held = gauges.get("replication.lease.held")
        if lease_held is not None:
            lines.append(
                "  lease: {} ({:g}s left, quorum {:g}), "
                "{} renewals, {} expiries, {} elections".format(
                    "HELD" if lease_held else "LAPSED",
                    gauges.get("replication.lease.remaining_seconds",
                               0.0),
                    gauges.get("replication.lease.needed_acks", 0),
                    counters.get("replication.lease.renewals", 0),
                    counters.get("replication.lease.expiries", 0),
                    counters.get("replication.elections", 0),
                )
            )
        snap_raw = counters.get("replication.snapshot.bytes_raw", 0)
        snap_wire = counters.get("replication.snapshot.bytes_wire", 0)
        if snap_raw:
            lines.append(
                "  snapshots: {} catch-ups, {} -> {} bytes "
                "({:.0%} of raw)".format(
                    counters.get("replication.snapshot.catch_ups", 0),
                    snap_raw, snap_wire,
                    snap_wire / snap_raw if snap_raw else 0.0,
                )
            )
        for name, lag_seq in lag_rows:
            seconds = gauges.get(f"replication.lag.seconds.{name}", 0.0)
            lines.append(
                f"  lag {name}: {lag_seq:g} seqs / {seconds:g}s"
            )
            # Commit-pipeline stages for this replica, when the
            # distributed-tracing instruments have fired.
            stages = (
                ("ship", f"replication.ship.rtt_seconds.{name}"),
                ("apply",
                 f"replication.pipeline.apply_seconds.{name}"),
                ("ack", f"replication.commit.ack_seconds.{name}"),
            )
            parts = [
                "{} p50={} p99={}".format(
                    stage, _seconds(data.get("p50")),
                    _seconds(data.get("p99")),
                )
                for stage, metric in stages
                if (data := histograms.get(metric))
            ]
            if parts:
                lines.append(f"    pipeline: {'; '.join(parts)}")

    # -- SLO verdicts ---------------------------------------------------
    if slo is not None:
        status = "healthy" if slo.get("healthy") else "ALERTING"
        lines.append(
            f"slo: {status} "
            f"(raised={slo.get('alerts_raised', 0)} "
            f"cleared={slo.get('alerts_cleared', 0)}, "
            f"{slo.get('window_samples', 0)} samples in window)"
        )
        for verdict in slo.get("objectives", []):
            marker = "ALERT" if verdict.get("alerting") else (
                "ok" if verdict.get("ok") else "warn"
            )
            lines.append(
                f"  [{marker:5}] "
                f"{verdict.get('objective', verdict.get('name'))}"
                f"  slow={_slo_value(verdict.get('slow_value'))}"
                f" fast={_slo_value(verdict.get('fast_value'))}"
            )
    return "\n".join(lines)


def render_profile(profile: list[dict], *, limit: int = 20) -> str:
    """A profiler snapshot as a most-expensive-first table."""
    if not profile:
        return "(no profile data)"
    shown = profile[:limit]
    rows = [
        (entry["op"], entry["key"], str(entry["calls"]),
         _seconds(entry["seconds"]), _seconds(entry["mean_seconds"]))
        for entry in shown
    ]
    headers = ("op", "key", "calls", "total", "mean")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rows
    ]
    if len(profile) > limit:
        lines.append(f"... and {len(profile) - limit} more entries")
    return "\n".join(lines)


def render_stats(stats: dict) -> str:
    """The full ``FunctionalDatabase.stats()`` payload as text (what
    the REPL's ``stats`` command prints)."""
    lines: list[str] = []
    instance = stats.get("instance")
    if instance:
        lines.append(
            "instance: "
            f"{instance['stored_facts']} stored facts "
            f"({instance['ambiguous_facts']} ambiguous), "
            f"{instance['ncs']} NCs, "
            f"{instance['next_null_index'] - 1} nulls issued"
        )
    flags = stats.get("observability", {})
    lines.append(
        "observability: "
        + ("enabled" if flags.get("enabled") else "disabled")
        + (", tracing" if flags.get("tracing") else "")
    )
    wal = stats.get("wal")
    if wal:
        lines.append(
            f"wal: applied seq {wal.get('last_seq', 0)} "
            f"(term {wal.get('term', 0)}), "
            f"{wal.get('entries', 0)} live entries "
            f"({wal.get('aborted', 0)} aborted), "
            + ("TAIL TORN" if wal.get("tail_torn") else "tail clean")
            + f", {wal.get('checksum_failures', 0)} checksum failures"
        )
    replication = stats.get("replication")
    if replication:
        lines.append(render_replication(replication,
                                        acked=stats.get("acked")))
    lines.append(render_metrics(stats.get("metrics", {})))
    profile = stats.get("profile", [])
    if profile:
        lines.append("profile (most expensive first):")
        lines.append(render_profile(profile))
    slow = stats.get("slowlog", {})
    if slow.get("records"):
        lines.append("slowlog:")
        lines.append(render_slowlog(slow))
    return "\n".join(lines)


def render_replication(replication: dict, *,
                       acked: int | None = None) -> str:
    """A :meth:`ReplicationGroup.health
    <repro.replication.group.ReplicationGroup.health>` verdict as
    text: role, node, term, commit mode, staleness servability, and
    one lag row per replica."""
    head = (
        f"replication: {replication.get('role', '?')} "
        f"{replication.get('node', '?')}, term "
        f"{replication.get('term', 0)}, mode "
        f"{replication.get('mode', '?')}"
    )
    if acked is not None:
        head += f", {acked} acked commits"
    if not replication.get("servable", True):
        head += " — STALENESS UNSERVABLE"
    lines = [head]
    lease = replication.get("lease")
    if lease:
        state = "HELD" if lease.get("held") else (
            "LAPSED" if lease.get("granted") else "not granted")
        row = f"  lease: {state}"
        if lease.get("remaining_seconds") is not None:
            row += f", {lease['remaining_seconds']:g}s left"
        row += (f" (quorum {lease.get('needed_acks', '?')}, "
                f"{lease.get('acks', 0)} fresh acks, "
                f"duration {lease.get('duration', '?')}s "
                f"± {lease.get('margin', '?')}s)")
        lines.append(row)
    for name, info in sorted(replication.get("replicas", {}).items()):
        row = (
            f"  {name}: acked seq {info.get('acked_seq', 0)}, "
            f"lag {info.get('lag_seq', 0)} seqs / "
            f"{info.get('lag_seconds', 0.0):.3f}s, "
            f"{info.get('errors', 0)} transport errors"
        )
        if info.get("last_error"):
            row += f" (last: {info['last_error']})"
        lines.append(row)
    if not replication.get("replicas"):
        lines.append("  (no replicas linked)")
    for name, stages in sorted(
            (replication.get("pipeline") or {}).items()):
        parts = [
            "{} p50={} p99={}".format(
                stage, _seconds(data.get("p50")),
                _seconds(data.get("p99")),
            )
            for stage in ("ship_rtt", "wal_append", "apply",
                          "commit_ack")
            if (data := stages.get(stage))
        ]
        if parts:
            lines.append(f"  pipeline {name}: {'; '.join(parts)}")
    return "\n".join(lines)


def render_timeline(timeline) -> str:
    """A :class:`repro.obs.events.ReplicationTimeline` as text: one
    row per lifecycle step, commit runs collapsed to keep a long soak
    readable (``N commits (seq a..b, term t)``), fences and
    promotions spelled out with their fence seq and term handoff."""
    entries = list(timeline)
    if not entries:
        return "(no replication events recorded)"
    lines: list[str] = []
    run: list = []

    def flush_run() -> None:
        if not run:
            return
        if len(run) <= 2:
            for entry in run:
                lines.append(
                    f"  #{entry.order:<6} commit seq "
                    f"{entry.commit_seq} (term {entry.term}, "
                    f"acks {entry.attrs.get('acks', '?')})"
                )
        else:
            first, last = run[0], run[-1]
            lines.append(
                f"  #{first.order:<6} {len(run)} commits "
                f"(seq {first.commit_seq}..{last.commit_seq}, "
                f"term {first.term})"
            )
        run.clear()

    for entry in entries:
        if entry.kind == "commit":
            if run and run[-1].term != entry.term:
                flush_run()
            run.append(entry)
            continue
        flush_run()
        detail = {
            "attach": lambda e: f"node {e.replica or e.attrs.get('node')} "
                                f"term {e.term}",
            "fence": lambda e: f"term {e.term} fenced at seq "
                               f"{e.fence_seq} -> term "
                               f"{e.attrs.get('new_term')}",
            "promote": lambda e: f"{e.replica} promoted to term "
                                 f"{e.term}",
            "rejoin": lambda e: f"{e.replica} rejoined past fence "
                                f"{e.fence_seq} (dropped "
                                f"{e.attrs.get('records_dropped', 0)})",
            "catch_up": lambda e: f"{e.replica} via "
                                  f"{e.attrs.get('mode', '?')} to seq "
                                  f"{e.attrs.get('to_seq', '?')}",
            "snapshot_bootstrap": lambda e:
                f"{e.replica} re-bootstrapped at seq "
                f"{e.attrs.get('wal_applied', '?')}",
            "snapshot_install": lambda e:
                f"{e.replica} installed snapshot at seq "
                f"{e.attrs.get('wal_applied', '?')}",
            "write_fenced": lambda e: f"stale writer term {e.term} "
                                      f"refused",
            "ack_timeout": lambda e: f"seq {e.commit_seq} got "
                                     f"{e.attrs.get('acks', '?')}/"
                                     f"{e.attrs.get('needed', '?')} acks",
            "lease_grant": lambda e:
                f"node {e.attrs.get('node', '?')} term {e.term} "
                f"(duration {e.attrs.get('duration', '?')}s "
                f"± {e.attrs.get('margin', '?')}s)",
            "lease_renew": lambda e: f"term {e.term}, "
                                     f"{e.attrs.get('acks', '?')} acks"
                                     + (" (recovered)"
                                        if e.attrs.get("recovered")
                                        else ""),
            "lease_expire": lambda e:
                f"term {e.term} silent {e.attrs.get('age', '?')}s "
                f"({e.attrs.get('acks', '?')}/"
                f"{e.attrs.get('needed_acks', '?')} votes) — "
                f"self-demoted",
            "elect": lambda e: f"{e.replica} elected at seq "
                               f"{e.attrs.get('applied_seq', '?')} "
                               f"({e.attrs.get('votes', '?')} expiry "
                               f"votes)",
        }.get(entry.kind, lambda e: "")
        lines.append(
            f"  #{entry.order:<6} {entry.kind:<18} {detail(entry)}"
            .rstrip()
        )
    flush_run()
    violations = timeline.fence_violations()
    header = (f"replication timeline: {len(entries)} entries, "
              f"{len(timeline.of_kind('fence'))} fences"
              + (", ORDER VIOLATED" if violations else ""))
    out = [header] + lines
    out += [f"  !! {problem}" for problem in violations]
    return "\n".join(out)


def render_slowlog(slowlog: dict) -> str:
    """A slowlog snapshot (:meth:`repro.obs.slowlog.SlowLog.snapshot`)
    as text — thresholds, then one block per captured record with its
    per-hop cost breakdown."""
    lines: list[str] = []
    query_t = slowlog.get("query_threshold_seconds")
    update_t = slowlog.get("update_threshold_seconds")
    lines.append(
        "thresholds: "
        f"query={_seconds(query_t)} update={_seconds(update_t)}"
    )
    records = slowlog.get("records", [])
    if not records:
        lines.append("(no slow operations recorded)")
        return "\n".join(lines)
    for record in records:
        head = (
            f"{record['op']} key={record['key']} "
            f"{_seconds(record['duration_seconds'])} "
            f"(threshold {_seconds(record['threshold_seconds'])})"
        )
        if record.get("cause"):
            head += f" cause={record['cause']}"
        lines.append(head)
        detail = record.get("detail") or {}
        for chain in detail.get("chains", []):
            lines.append(f"  chain: {chain}")
        for hop in detail.get("hops", []):
            lines.append(
                f"  hop {hop.get('hop')}: {hop.get('function')} "
                f"({hop.get('role')}) rows={hop.get('rows')} "
                f"cost={hop.get('est_cost')}"
            )
        if "error" in detail:
            lines.append(f"  detail error: {detail['error']}")
    return "\n".join(lines)
