"""The instrumentation context — zero overhead when disabled.

One process-wide :data:`OBS` object owns the metrics registry, the
tracer and the profiler, plus two flags:

* ``OBS.enabled`` — master switch. Hot call sites guard with a single
  attribute test (``if OBS.enabled:``) before doing *any* observability
  work, so the disabled runtime pays one boolean check per instrumented
  operation and nothing else — no allocation, no dict lookups, no
  context managers. All recording methods are additionally safe no-ops
  when disabled, so cold call sites may skip the guard.
* ``OBS.tracing`` — span-tree construction. Metrics and profiling are
  cheap enough for always-on collection; building span objects with
  per-event attribute dicts is not, so traces are a second opt-in.

Typical use::

    from repro.obs import OBS

    OBS.enable(tracing=True)
    db.delete("pupil", "euclid", "john")
    print(OBS.tracer.last_trace.render())
    print(OBS.metrics.counter("fdb.nc.created").value)

or scoped, restoring the previous state afterwards::

    with OBS.collecting(tracing=True):
        apply_update(db, update)

Instrumented call sites across the runtime:
``repro.fdb.updates`` (spans per insert/delete/replace, events per
NC/NVC and base mutation), ``repro.fdb.evaluate`` (chain counters,
derivation timings), ``repro.fdb.query``, ``repro.fdb.wal``,
``repro.fdb.transaction``, ``repro.fdb.nc``/``nvc``, and
``repro.core.design_aid``. The metric catalogue lives in
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.tracing import Span, Tracer

__all__ = ["Instrumentation", "OBS"]


class _SpanScope:
    """Context manager for one instrumented region.

    Always times the region into the profiler; additionally opens a
    tracer span when tracing is on. Created only when ``OBS.enabled``
    is true (disabled call sites never reach this class).
    """

    __slots__ = ("_obs", "_name", "_key", "_attrs", "_start", "_span")

    def __init__(self, obs: "Instrumentation", name: str, key: str,
                 attrs: dict) -> None:
        self._obs = obs
        self._name = name
        self._key = key
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> "_SpanScope":
        if self._obs.tracing:
            self._span = self._obs.tracer.start(self._name, **self._attrs)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        if self._span is not None:
            self._obs.tracer.finish(self._span)
        self._obs.profiler.record(self._name, self._key, elapsed)
        return False

    @property
    def span(self) -> Span | None:
        return self._span


class _NullScope:
    """The do-nothing span scope handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    @property
    def span(self) -> None:
        return None


_NULL_SCOPE = _NullScope()


class Instrumentation:
    """The process-wide observability context (see module docstring)."""

    def __init__(self) -> None:
        self.enabled = False
        self.tracing = False
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.profiler = Profiler()

    # -- switching ----------------------------------------------------------

    def enable(self, *, tracing: bool = False) -> None:
        """Turn collection on; ``tracing=True`` also builds span trees."""
        self.enabled = True
        self.tracing = tracing

    def disable(self) -> None:
        """Turn everything off (collected data is kept until reset)."""
        self.enabled = False
        self.tracing = False

    def reset(self) -> None:
        """Zero metrics and drop profiles and traces; flags unchanged."""
        self.metrics.reset()
        self.profiler.reset()
        self.tracer.reset()

    @contextmanager
    def collecting(self, *, tracing: bool = False, fresh: bool = True):
        """Enable within a scope, restoring the previous flags after.

        ``fresh=True`` (default) resets collected data on entry, so the
        scope observes only its own work — what the benches want for
        per-run metric snapshots.
        """
        previous = (self.enabled, self.tracing)
        if fresh:
            self.reset()
        self.enable(tracing=tracing)
        try:
            yield self
        finally:
            self.enabled, self.tracing = previous

    # -- recording ----------------------------------------------------------
    #
    # Hot paths guard with `if OBS.enabled:` before calling these; the
    # internal checks below make un-guarded (cold) call sites safe too.

    def inc(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self.metrics.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.histogram(name).observe(value)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge(name).set(value)

    def event(self, name: str, **attrs) -> None:
        """A structured event on the active span (tracing only)."""
        if self.enabled and self.tracing:
            self.tracer.event(name, **attrs)

    def span(self, name: str, *, key: str = "-", **attrs):
        """A timed scope feeding the profiler (and, when tracing, the
        span tree). ``key`` buckets the profile entry — typically the
        function or derivation being worked on."""
        if not self.enabled:
            return _NULL_SCOPE
        return _SpanScope(self, name, key, attrs)

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Flags + metrics + profile as one JSON-ready dict."""
        return {
            "observability": {
                "enabled": self.enabled,
                "tracing": self.tracing,
            },
            "metrics": self.metrics.snapshot(),
            "profile": self.profiler.snapshot(),
        }


OBS = Instrumentation()
"""The process-wide instrumentation context (disabled by default)."""
