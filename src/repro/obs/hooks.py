"""The instrumentation context — zero overhead when disabled.

One process-wide :data:`OBS` object owns the metrics registry, the
tracer, the profiler, the structured event log and the slowlog, plus
two flags:

* ``OBS.enabled`` — master switch. Hot call sites guard with a single
  attribute test (``if OBS.enabled:``) before doing *any* observability
  work, so the disabled runtime pays one boolean check per instrumented
  operation and nothing else — no allocation, no dict lookups, no
  context managers. All recording methods are additionally safe no-ops
  when disabled, so cold call sites may skip the guard.
* ``OBS.tracing`` — span-tree construction. Metrics and profiling are
  cheap enough for always-on collection; building span objects with
  per-event attribute dicts is not, so traces are a second opt-in.

Two further pipelines activate themselves by configuration rather than
a flag:

* ``OBS.events`` (:class:`repro.obs.events.EventLog`) — attach a sink
  and every span boundary and structured event flows out as a typed
  record with causal links (``parent_span``, ``cause=update_id``),
  independent of whether span *trees* are being built;
* ``OBS.slowlog`` (:class:`repro.obs.slowlog.SlowLog`) — set a
  threshold and over-budget queries/updates are captured with an
  explain-style cost breakdown (built lazily, only for the slow ones).

Span nesting is context-propagated (:mod:`contextvars`): spans opened
on one thread or asyncio task never become children of another's, and
the update id that caused a cascade is inherited by every nested span
without explicit threading through the call graph.

Typical use::

    from repro.obs import OBS

    OBS.enable(tracing=True)
    db.delete("pupil", "euclid", "john")
    print(OBS.tracer.last_trace.render())
    print(OBS.metrics.counter("fdb.nc.created").value)

or scoped, restoring the previous state afterwards::

    with OBS.collecting(tracing=True):
        apply_update(db, update)

Instrumented call sites across the runtime:
``repro.fdb.updates`` (spans per insert/delete/replace, events per
NC/NVC and base mutation), ``repro.fdb.evaluate`` (chain counters,
derivation timings), ``repro.fdb.query``, ``repro.fdb.wal``,
``repro.fdb.transaction``, ``repro.fdb.nc``/``nvc``, and
``repro.core.design_aid``. The metric catalogue lives in
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from contextvars import ContextVar

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.slowlog import SlowLog
from repro.obs.tracing import Span, Tracer

__all__ = ["Instrumentation", "OBS"]


class _SpanScope:
    """Context manager for one instrumented region.

    Always times the region into the profiler; additionally opens a
    tracer span when tracing is on, emits ``span.start``/``span.end``
    records when the event log has sinks, and feeds the slowlog when
    the region crosses its threshold. Created only when ``OBS.enabled``
    is true (disabled call sites never reach this class).
    """

    __slots__ = ("_obs", "_name", "_key", "_attrs", "_start", "_span",
                 "_cause", "_slow_detail", "_span_id", "_parent_id",
                 "_ctx_token")

    def __init__(self, obs: "Instrumentation", name: str, key: str,
                 cause: str | None, slow_detail, attrs: dict) -> None:
        self._obs = obs
        self._name = name
        self._key = key
        self._attrs = attrs
        self._cause = cause
        self._slow_detail = slow_detail
        self._span: Span | None = None
        self._span_id: int | None = None
        self._ctx_token = None

    def __enter__(self) -> "_SpanScope":
        obs = self._obs
        events_on = obs.events.active
        if obs.tracing:
            span = obs.tracer.start(self._name, cause=self._cause,
                                    **self._attrs)
            self._span = span
            self._span_id = span.span_id
            self._parent_id = span.parent_id
            self._cause = span.cause
        elif events_on:
            # No span tree, but records still need ids and causal
            # links — maintain them on the instrumentation's own
            # context stack.
            parent_id, parent_cause = obs._span_context()
            self._span_id = obs.tracer.next_id()
            self._parent_id = parent_id
            if self._cause is None:
                self._cause = parent_cause
        if events_on:
            self._ctx_token = obs._span_ctx.set(
                obs._span_ctx.get() + ((self._span_id, self._cause),)
            )
            obs.events.emit(
                "span.start", self._name, span_id=self._span_id,
                parent_span=self._parent_id, cause=self._cause,
                attrs=self._attrs,
            )
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        obs = self._obs
        if self._span is not None:
            obs.tracer.finish(self._span)
        if self._ctx_token is not None:
            obs._span_ctx.reset(self._ctx_token)
            obs.events.emit(
                "span.end", self._name, span_id=self._span_id,
                parent_span=self._parent_id, cause=self._cause,
                duration=elapsed, attrs=self._attrs,
            )
        obs.profiler.record(self._name, self._key, elapsed)
        if obs.slowlog.active:
            obs.slowlog.record(self._name, self._key, elapsed,
                               cause=self._cause,
                               detail=self._slow_detail)
        return False

    @property
    def span(self) -> Span | None:
        return self._span

    @property
    def attrs(self) -> dict:
        """The scope's live attribute dict. Mutations made while the
        scope is open land on the ``span.end`` record — how the service
        stamps ``committed=True`` on a request span only once the write
        actually committed."""
        return self._attrs


class _NullScope:
    """The do-nothing span scope handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    @property
    def span(self) -> None:
        return None

    @property
    def attrs(self) -> dict:
        return {}  # fresh throwaway: writes must not leak between sites


_NULL_SCOPE = _NullScope()


class _RemoteContext:
    """Adopts a span context shipped from another node.

    Entering pushes the remote ``(parent_span, cause)`` pair onto the
    event-log context stack, so spans opened inside parent to the
    *shipping* node's span and the folded :func:`propagation_dag`
    connects the primary's pipeline to the replica's — the cross-node
    join point of distributed traces. A cheap no-op when disabled or
    when the frame carried no context (an older primary).
    """

    __slots__ = ("_obs", "_parent", "_cause", "_token")

    def __init__(self, obs: "Instrumentation", parent_span: int | None,
                 cause: str | None) -> None:
        self._obs = obs
        self._parent = parent_span
        self._cause = cause
        self._token = None

    def __enter__(self) -> "_RemoteContext":
        obs = self._obs
        if obs.enabled and not (self._parent is None
                                and self._cause is None):
            self._token = obs._span_ctx.set(
                obs._span_ctx.get() + ((self._parent, self._cause),)
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            self._obs._span_ctx.reset(self._token)
        return False


class Instrumentation:
    """The process-wide observability context (see module docstring)."""

    def __init__(self) -> None:
        self.enabled = False
        self.tracing = False
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.profiler = Profiler()
        self.events = EventLog()
        self.slowlog = SlowLog()
        self._update_ids = itertools.count(1)
        self._request_ids = itertools.count(1)
        # (span_id, cause) pairs for the event log when span trees are
        # not being built; per thread/task, like the tracer's stack.
        self._span_ctx: ContextVar[tuple] = ContextVar(
            "repro_obs_event_span_ctx", default=()
        )

    # -- switching ----------------------------------------------------------

    def enable(self, *, tracing: bool = False) -> None:
        """Turn collection on; ``tracing=True`` also builds span trees."""
        self.enabled = True
        self.tracing = tracing

    def disable(self) -> None:
        """Turn everything off (collected data is kept until reset)."""
        self.enabled = False
        self.tracing = False

    def reset(self) -> None:
        """Zero metrics and drop profiles, traces and slowlog records;
        flags, thresholds and event sinks unchanged."""
        self.metrics.reset()
        self.profiler.reset()
        self.tracer.reset()
        self.slowlog.reset()
        self._span_ctx.set(())
        self._update_ids = itertools.count(1)
        self._request_ids = itertools.count(1)

    @contextmanager
    def collecting(self, *, tracing: bool = False, fresh: bool = True):
        """Enable within a scope, restoring the previous flags after.

        ``fresh=True`` (default) resets collected data on entry, so the
        scope observes only its own work — what the benches want for
        per-run metric snapshots.
        """
        previous = (self.enabled, self.tracing)
        if fresh:
            self.reset()
        self.enable(tracing=tracing)
        try:
            yield self
        finally:
            self.enabled, self.tracing = previous

    # -- causal identity ----------------------------------------------------

    def new_update_id(self) -> str:
        """Allocate the next update id (``u1``, ``u2``, ...) — the
        ``cause`` tag every propagation record of that update carries."""
        return f"u{next(self._update_ids)}"

    def new_request_id(self) -> str:
        """Allocate the next service request id (``r1``, ``r2``, ...)
        — the tag a request's whole span tree carries, so admission
        wait, lock acquisition, retry attempts, engine execution and
        WAL commit all join back to one caller-visible operation."""
        return f"r{next(self._request_ids)}"

    def current_cause(self) -> str | None:
        """The update id the innermost active span is attributed to
        (``None`` outside any caused span). Front doors use this to
        decide whether they are a fresh user-level update (allocate a
        new id) or a step inside one (inherit)."""
        return self._span_context()[1]

    def trace_context(self) -> dict | None:
        """The wire form of the current span context, for stamping
        into cross-node frames: ``{"parent_span": ..., "cause": ...}``.

        Span ids are process-unique, so the parent span id *is* the
        trace join key — a receiver that opens its spans under
        :meth:`remote_context` with these values joins the sender's
        pipeline in :func:`repro.obs.events.propagation_dag`. Returns
        ``None`` when disabled or outside any span (the frame then
        simply omits the field, which older receivers ignore).
        """
        if not self.enabled:
            return None
        span_id, cause = self._span_context()
        if span_id is None and cause is None:
            return None
        return {"parent_span": span_id, "cause": cause}

    def remote_context(self, parent_span: int | None,
                       cause: str | None) -> _RemoteContext:
        """Adopt a :meth:`trace_context` shipped from another node:
        spans opened inside the returned scope parent to the sender's
        span. Only the event-log pipeline joins across nodes; tracer
        span *trees* (``tracing=True``) stay process-local."""
        return _RemoteContext(self, parent_span, cause)

    def _span_context(self) -> tuple[int | None, str | None]:
        """(span_id, cause) of the innermost event-log span, falling
        back to the tracer's active span when tracing is on."""
        if self.tracing:
            span = self.tracer.active
            if span is not None:
                return span.span_id, span.cause
        ctx = self._span_ctx.get()
        return ctx[-1] if ctx else (None, None)

    # -- recording ----------------------------------------------------------
    #
    # Hot paths guard with `if OBS.enabled:` before calling these; the
    # internal checks below make un-guarded (cold) call sites safe too.

    def inc(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self.metrics.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.histogram(name).observe(value)

    def observe_log(self, name: str, value: float) -> None:
        """Observe into a log-bucketed histogram (accurate tails over
        unbounded streams — the service RED durations)."""
        if self.enabled:
            self.metrics.log_histogram(name).observe(value)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge(name).set(value)

    def event(self, name: str, **attrs) -> None:
        """A structured event on the active span (when tracing) and on
        the event log (when a sink is attached)."""
        if not self.enabled:
            return
        if self.tracing:
            self.tracer.event(name, **attrs)
        if self.events.active:
            span_id, cause = self._span_context()
            self.events.emit("event", name, span_id=span_id,
                             cause=cause, attrs=attrs)

    def action(self, name: str, *, cause: str | None = None,
               **attrs) -> None:
        """A standalone occurrence outside any span (recovery steps,
        checkpoint milestones) for the event log; also mirrored onto
        the active trace span when one happens to be open."""
        if not self.enabled:
            return
        if self.tracing:
            self.tracer.event(name, **attrs)
        if self.events.active:
            span_id, inherited = self._span_context()
            self.events.emit("action", name, span_id=span_id,
                             cause=cause or inherited, attrs=attrs)

    def span(self, name: str, *, key: str = "-",
             cause: str | None = None, slow_detail=None, **attrs):
        """A timed scope feeding the profiler (and, when tracing, the
        span tree; and, with sinks attached, the event log). ``key``
        buckets the profile entry — typically the function or
        derivation being worked on. ``cause`` attributes the span (and
        everything nested under it) to an update id; ``slow_detail`` is
        a zero-argument callable building an explain-style breakdown,
        invoked only if the span crosses its slowlog threshold."""
        if not self.enabled:
            return _NULL_SCOPE
        return _SpanScope(self, name, key, cause, slow_detail, attrs)

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Flags + metrics + profile + slowlog as one JSON-ready dict."""
        return {
            "observability": {
                "enabled": self.enabled,
                "tracing": self.tracing,
            },
            "metrics": self.metrics.snapshot(),
            "profile": self.profiler.snapshot(),
            "slowlog": self.slowlog.snapshot(),
        }


OBS = Instrumentation()
"""The process-wide instrumentation context (disabled by default)."""
