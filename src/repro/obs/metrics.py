"""Metric primitives: counters, gauges, histograms, and a registry.

The runtime reports on its own work as structured data — how many
chains an update enumerated, how many NCs it created, how long a WAL
append took. Three instrument kinds cover everything the engine needs:

* :class:`Counter` — a monotonically increasing event count
  (``fdb.updates.delete``, ``fdb.nc.created``);
* :class:`Gauge` — a point-in-time level (``design.graph_edges``);
* :class:`Histogram` — a distribution of observed values, typically
  seconds (``fdb.wal.append_seconds``).

A :class:`MetricsRegistry` maps dotted metric names to instruments and
renders the whole collection as a plain, JSON-ready dict. Instruments
are created lazily on first use, so call sites never declare anything
up front. The module is dependency-free and makes no attempt at
cross-process aggregation — one registry per process is the model (the
default lives on :data:`repro.obs.hooks.OBS`).
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro.errors import ReproError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "MetricError"]


class MetricError(ReproError):
    """A metric name was reused with a different instrument kind."""


class Counter:
    """A monotonically increasing count of events.

    ``inc`` takes the instrument's lock: ``self.value += amount`` is a
    read-modify-write, and concurrent updaters (the WAL journal, a
    background checkpoint) must not lose counts.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A level that can move both ways (sizes, depths, toggles)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A distribution of observed values.

    Count, total, min and max are exact over every observation; mean
    derives from them. Percentiles come from a bounded sample buffer
    (the first ``sample_limit`` observations) — deterministic, cheap,
    and accurate for the short bursts the benches and the REPL produce.
    Long-running processes get exact aggregates and approximate tails,
    which is the right trade for a diagnostic (not billing) signal.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples",
                 "sample_limit", "_lock")

    def __init__(self, name: str, sample_limit: int = 1024) -> None:
        self.name = name
        self.sample_limit = sample_limit
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # One lock for the whole multi-field update: count/total/min/
        # max must stay mutually consistent under concurrent observers.
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._samples) < self.sample_limit:
                self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) of the sampled observations,
        by nearest-rank; 0.0 when nothing was observed."""
        if not 0 <= p <= 100:
            raise MetricError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            samples = list(self._samples)
        if not samples:
            return 0.0
        ordered = sorted(samples)
        rank = max(0, min(len(ordered) - 1,
                          round(p / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None
            self._samples.clear()

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """All instruments of one process, by dotted name.

    Names are namespaced by convention (``fdb.updates.delete``,
    ``design.cycles_reported``); the full catalogue lives in
    docs/OBSERVABILITY.md. Asking for an existing name with a different
    instrument kind raises :class:`MetricError` — silent kind confusion
    would corrupt every downstream report.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls: type):
        # Fast path without the lock: dict reads are atomic, and an
        # already-registered instrument (the overwhelmingly common
        # case) needs no synchronisation to hand out.
        instrument = self._metrics.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._metrics.get(name)
                if instrument is None:
                    instrument = cls(name)
                    self._metrics[name] = instrument
        if not isinstance(instrument, cls):
            raise MetricError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(tuple(self._metrics.values()))

    def reset(self) -> None:
        """Zero every instrument, keeping registrations."""
        for instrument in self._metrics.values():
            instrument.reset()

    def clear(self) -> None:
        """Drop every instrument."""
        self._metrics.clear()

    def snapshot(self) -> dict:
        """The registry as a JSON-ready dict, names sorted, grouped by
        instrument kind."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._metrics):
            instrument = self._metrics[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.snapshot()
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.snapshot()
            else:
                histograms[name] = instrument.snapshot()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}
