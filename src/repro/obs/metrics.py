"""Metric primitives: counters, gauges, histograms, and a registry.

The runtime reports on its own work as structured data — how many
chains an update enumerated, how many NCs it created, how long a WAL
append took. Four instrument kinds cover everything the engine needs:

* :class:`Counter` — a monotonically increasing event count
  (``fdb.updates.delete``, ``fdb.nc.created``);
* :class:`Gauge` — a point-in-time level (``design.graph_edges``);
* :class:`Histogram` — a distribution of observed values with a
  seeded-reservoir sample buffer for percentiles — cheap and exact
  over short bursts (``fdb.wal.append_seconds``);
* :class:`LogHistogram` — a log-bucketed (HDR-style) distribution
  whose percentiles stay accurate over *unbounded* streams, with
  mergeable buckets — what the service layer's request-duration
  RED instruments use.

A :class:`MetricsRegistry` maps dotted metric names to instruments and
renders the whole collection as a plain, JSON-ready dict. Instruments
are created lazily on first use, so call sites never declare anything
up front. The module is dependency-free and makes no attempt at
cross-process aggregation — one registry per process is the model (the
default lives on :data:`repro.obs.hooks.OBS`).
"""

from __future__ import annotations

import math
import os
import random
import threading
from typing import Iterator

from repro.errors import ReproError

__all__ = ["Counter", "Gauge", "Histogram", "LogHistogram",
           "MetricsRegistry", "MetricError"]


class MetricError(ReproError):
    """A metric name was reused with a different instrument kind."""


class Counter:
    """A monotonically increasing count of events.

    ``inc`` takes the instrument's lock: ``self.value += amount`` is a
    read-modify-write, and concurrent updaters (the WAL journal, a
    background checkpoint) must not lose counts.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A level that can move both ways (sizes, depths, toggles)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


def _reservoir_rng(name: str) -> random.Random:
    """A per-instrument RNG seeded from ``REPRO_SEED`` and the metric
    name, so reservoir contents are reproducible across runs of the
    same workload (``random.Random`` hashes string seeds with SHA-512,
    which is stable across processes, unlike ``hash``)."""
    seed = os.environ.get("REPRO_SEED", "0")
    return random.Random(f"{seed}:{name}")


class Histogram:
    """A distribution of observed values.

    Count, total, min and max are exact over every observation; mean
    derives from them. Percentiles come from a bounded *reservoir*
    sample (Vitter's Algorithm R): the first ``sample_limit``
    observations fill the buffer, after which each observation ``i``
    replaces a uniformly random slot with probability
    ``sample_limit / i`` — so the buffer is always a uniform sample of
    the whole stream and long-run percentiles stay representative
    instead of freezing on the warm-up burst. The trade: percentiles
    are now estimates with sampling error (≈1/sqrt(sample_limit)
    relative rank error) and depend on the ``REPRO_SEED``-derived RNG
    rather than arrival order — deterministic for a fixed seed and
    workload, but not "the first N values". Aggregates (count, total,
    min, max, mean) remain exact. For guaranteed tail accuracy over
    unbounded streams use :class:`LogHistogram`.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples",
                 "sample_limit", "_rng", "_lock")

    def __init__(self, name: str, sample_limit: int = 1024) -> None:
        self.name = name
        self.sample_limit = sample_limit
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []
        self._rng = _reservoir_rng(name)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # One lock for the whole multi-field update: count/total/min/
        # max must stay mutually consistent under concurrent observers.
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._samples) < self.sample_limit:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.sample_limit:
                    self._samples[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) of the sampled observations,
        by nearest-rank; 0.0 when nothing was observed."""
        if not 0 <= p <= 100:
            raise MetricError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            samples = list(self._samples)
        if not samples:
            return 0.0
        ordered = sorted(samples)
        rank = max(0, min(len(ordered) - 1,
                          round(p / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None
            self._samples.clear()
            self._rng = _reservoir_rng(self.name)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


class LogHistogram:
    """A log-bucketed (HDR-style) distribution over unbounded streams.

    Observations land in geometric buckets: bucket ``i`` covers
    ``[base**i, base**(i+1))``, kept as a sparse ``index -> count``
    dict, so memory is O(dynamic range), not O(observations), and the
    value reported for any percentile is off by at most a factor of
    ``base`` (the default ``2**(1/8) ≈ 1.09`` bounds relative error at
    ~9%, usually much less since the geometric bucket midpoint is
    reported). Unlike the sampling :class:`Histogram`, the tails never
    degrade: the p99.9 of the ten-millionth observation is as accurate
    as the p50 of the hundredth. Buckets from two instruments (e.g.
    per-worker registries) merge by addition — :meth:`merge` — which a
    sampling buffer cannot do losslessly.

    Values at or below ``min_value`` (default 1 µs — below clock
    resolution for the latency signals this backs) share the floor
    bucket. Count/total/min/max are exact, as in :class:`Histogram`.
    """

    __slots__ = ("name", "count", "total", "min", "max", "base",
                 "min_value", "_buckets", "_log_base", "_lock")

    def __init__(self, name: str, *, base: float = 2.0 ** 0.125,
                 min_value: float = 1e-6) -> None:
        if base <= 1.0:
            raise MetricError(
                f"log histogram {name!r} needs base > 1, got {base}"
            )
        if min_value <= 0:
            raise MetricError(
                f"log histogram {name!r} needs min_value > 0"
            )
        self.name = name
        self.base = base
        self.min_value = min_value
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._buckets: dict[int, int] = {}
        self._log_base = math.log(base)
        self._lock = threading.Lock()

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            value = self.min_value
        return math.floor(math.log(value) / self._log_base + 1e-12)

    def bucket_bound(self, index: int) -> float:
        """The exclusive upper bound of bucket ``index``."""
        return self.base ** (index + 1)

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            index = self._index(value)
            self._buckets[index] = self._buckets.get(index, 0) + 1

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other``'s buckets into this instrument (the two must
        share ``base``; merging differently-shaped grids would silently
        misplace every count)."""
        if other.base != self.base:
            raise MetricError(
                f"cannot merge {other.name!r} (base {other.base}) into "
                f"{self.name!r} (base {self.base})"
            )
        with other._lock:
            buckets = dict(other._buckets)
            count, total = other.count, other.total
            other_min, other_max = other.min, other.max
        with self._lock:
            self.count += count
            self.total += total
            if other_min is not None and (self.min is None
                                          or other_min < self.min):
                self.min = other_min
            if other_max is not None and (self.max is None
                                          or other_max > self.max):
                self.max = other_max
            for index, n in buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) by cumulative bucket rank;
        reports the geometric midpoint of the holding bucket, clamped
        to the exact observed min/max so the envelope stays truthful."""
        if not 0 <= p <= 100:
            raise MetricError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if not self.count:
                return 0.0
            rank = max(1, math.ceil(p / 100 * self.count))
            seen = 0
            for index in sorted(self._buckets):
                seen += self._buckets[index]
                if seen >= rank:
                    mid = self.base ** (index + 0.5)
                    assert self.min is not None and self.max is not None
                    return min(max(mid, self.min), self.max)
            return self.max if self.max is not None else 0.0

    def buckets(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ascending — the
        shape a Prometheus histogram exposition wants."""
        with self._lock:
            cumulative = 0
            out: list[tuple[float, int]] = []
            for index in sorted(self._buckets):
                cumulative += self._buckets[index]
                out.append((self.bucket_bound(index), cumulative))
            return out

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None
            self._buckets.clear()

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return f"LogHistogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """All instruments of one process, by dotted name.

    Names are namespaced by convention (``fdb.updates.delete``,
    ``design.cycles_reported``); the full catalogue lives in
    docs/OBSERVABILITY.md. Asking for an existing name with a different
    instrument kind raises :class:`MetricError` — silent kind confusion
    would corrupt every downstream report.
    """

    def __init__(self) -> None:
        self._metrics: dict[
            str, Counter | Gauge | Histogram | LogHistogram
        ] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls: type):
        # Fast path without the lock: dict reads are atomic, and an
        # already-registered instrument (the overwhelmingly common
        # case) needs no synchronisation to hand out.
        instrument = self._metrics.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._metrics.get(name)
                if instrument is None:
                    instrument = cls(name)
                    self._metrics[name] = instrument
        if not isinstance(instrument, cls):
            raise MetricError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def log_histogram(self, name: str) -> LogHistogram:
        return self._get(name, LogHistogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(
        self,
    ) -> Iterator[Counter | Gauge | Histogram | LogHistogram]:
        return iter(tuple(self._metrics.values()))

    def reset(self) -> None:
        """Zero every instrument, keeping registrations."""
        for instrument in self._metrics.values():
            instrument.reset()

    def clear(self) -> None:
        """Drop every instrument."""
        self._metrics.clear()

    def snapshot(self) -> dict:
        """The registry as a JSON-ready dict, names sorted, grouped by
        instrument kind."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._metrics):
            instrument = self._metrics[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.snapshot()
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.snapshot()
            else:  # Histogram and LogHistogram share the snapshot shape
                histograms[name] = instrument.snapshot()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}
