"""Aggregated cost accounting per operation and per function/derivation.

Spans answer "what did *this* update do"; the profiler answers "where
does the time go overall". Every instrumented span feeds one
:class:`ProfileEntry` keyed by ``(op, key)`` — ``op`` is the span name
(``update.delete``, ``query.pairs``, ``evaluate.accumulate``) and
``key`` the function or derivation it worked on — so after a workload
you can read off that, say, 80% of update time went into derived
deletes of ``pupil``, almost all of it enumerating chains of
``teach o class_list``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProfileEntry", "Profiler"]


@dataclass
class ProfileEntry:
    """Accumulated cost of one (operation, key) pair."""

    op: str
    key: str
    calls: int = 0
    seconds: float = 0.0
    min_seconds: float | None = None
    max_seconds: float | None = None

    def record(self, seconds: float) -> None:
        self.calls += 1
        self.seconds += seconds
        if self.min_seconds is None or seconds < self.min_seconds:
            self.min_seconds = seconds
        if self.max_seconds is None or seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0

    def snapshot(self) -> dict:
        return {
            "op": self.op,
            "key": self.key,
            "calls": self.calls,
            "seconds": self.seconds,
            "mean_seconds": self.mean_seconds,
            "min_seconds": self.min_seconds,
            "max_seconds": self.max_seconds,
        }


class Profiler:
    """All :class:`ProfileEntry` aggregates of one process."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], ProfileEntry] = {}

    def record(self, op: str, key: str, seconds: float) -> None:
        entry = self._entries.get((op, key))
        if entry is None:
            entry = ProfileEntry(op, key)
            self._entries[(op, key)] = entry
        entry.record(seconds)

    def entry(self, op: str, key: str) -> ProfileEntry | None:
        return self._entries.get((op, key))

    def entries(self) -> list[ProfileEntry]:
        """Every entry, most expensive first (total seconds)."""
        return sorted(
            self._entries.values(),
            key=lambda e: (-e.seconds, e.op, e.key),
        )

    def total_seconds(self, op: str | None = None) -> float:
        return sum(
            entry.seconds
            for entry in self._entries.values()
            if op is None or entry.op == op
        )

    def __len__(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        self._entries.clear()

    def snapshot(self) -> list[dict]:
        """JSON-ready list of entries, most expensive first."""
        return [entry.snapshot() for entry in self.entries()]
