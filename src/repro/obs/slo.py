"""Declarative service-level objectives over sliding request windows.

RED metrics say what the service *is doing*; an SLO says what it
*promised*. This module evaluates declarative :class:`Objective`\\ s —
"p99 ``execute`` latency under 50 ms", "error rate under 1%", "shed
rate under 0.1%" — against a sliding window of request outcomes that
:class:`repro.service.DatabaseService` records on every request.

Alerting follows the multiwindow burn-rate discipline: each objective
is checked over a *slow* window (its full ``window`` seconds) and a
*fast* window (``fast_fraction`` of it). An alert **raises** only when
the objective is violated in *both* — the slow window proves the
breach is sustained (one slow request cannot page anyone), the fast
window proves it is *still happening* (a breach that already stopped
should not page either). It **clears** once the fast window is healthy
again: recovery is visible at the fast horizon long before the slow
window forgets the incident. Raise/clear transitions are narrated as
``slo.alert_raised`` / ``slo.alert_cleared`` action events through
:data:`repro.obs.hooks.OBS`, so a soak's JSONL shows exactly when the
forced outage breached the objective and when the service earned its
health back — the invariant the chaos soak asserts.

Evaluation is pull-based (:meth:`SLOMonitor.evaluate`), with
:meth:`SLOMonitor.maybe_evaluate` as the rate-limited form request
paths call opportunistically; the clock is injectable so tests can
step time instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.obs.hooks import OBS
from repro.obs.metrics import MetricError

__all__ = ["Objective", "Verdict", "SLOMonitor", "default_objectives",
           "replication_lag_objective",
           "LATENCY", "ERROR_RATE", "SHED_RATE", "REPLICATION_LAG"]

LATENCY = "latency"
ERROR_RATE = "error_rate"
SHED_RATE = "shed_rate"
REPLICATION_LAG = "replication_lag"

_KINDS = (LATENCY, ERROR_RATE, SHED_RATE, REPLICATION_LAG)


@dataclass(frozen=True)
class Objective:
    """One declarative objective.

    ``family`` selects the operation family the objective watches
    (``"read"``, ``"execute"``, ``"rmw"``, ``"checkpoint"``) or
    ``"*"`` for all traffic. ``threshold`` is seconds for ``latency``
    objectives and a ratio in [0, 1] for the rate kinds.
    """

    name: str
    kind: str
    threshold: float
    family: str = "*"
    percentile: float = 99.0
    window: float = 60.0
    fast_fraction: float = 1 / 6

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise MetricError(
                f"objective {self.name!r}: unknown kind {self.kind!r} "
                f"(have {', '.join(_KINDS)})"
            )
        if self.threshold < 0:
            raise MetricError(
                f"objective {self.name!r}: threshold must be >= 0"
            )
        if not 0 < self.fast_fraction <= 1:
            raise MetricError(
                f"objective {self.name!r}: fast_fraction must be in "
                f"(0, 1]"
            )
        if self.window <= 0:
            raise MetricError(
                f"objective {self.name!r}: window must be positive"
            )

    @property
    def fast_window(self) -> float:
        return self.window * self.fast_fraction

    def describe(self) -> str:
        if self.kind == LATENCY:
            return (f"p{self.percentile:g} {self.family} latency "
                    f"< {self.threshold * 1000:g}ms")
        if self.kind == REPLICATION_LAG:
            return f"replication lag <= {self.threshold:g} seqs"
        noun = "error rate" if self.kind == ERROR_RATE else "shed rate"
        scope = "" if self.family == "*" else f"{self.family} "
        return f"{scope}{noun} < {self.threshold * 100:g}%"


@dataclass(frozen=True)
class Verdict:
    """One objective's evaluation at a point in time."""

    objective: Objective
    ok: bool
    alerting: bool
    slow_value: float | None
    fast_value: float | None
    slow_requests: int
    fast_requests: int

    def to_dict(self) -> dict:
        return {
            "name": self.objective.name,
            "objective": self.objective.describe(),
            "kind": self.objective.kind,
            "family": self.objective.family,
            "threshold": self.objective.threshold,
            "ok": self.ok,
            "alerting": self.alerting,
            "slow_value": self.slow_value,
            "fast_value": self.fast_value,
            "slow_requests": self.slow_requests,
            "fast_requests": self.fast_requests,
        }


def default_objectives() -> tuple[Objective, ...]:
    """The service defaults: tail latency on the write path, error and
    shed rates over all traffic."""
    return (
        Objective("execute-p99", LATENCY, 0.050, family="execute",
                  percentile=99.0),
        Objective("error-rate", ERROR_RATE, 0.01),
        Objective("shed-rate", SHED_RATE, 0.001),
    )


def replication_lag_objective(threshold_seq: float = 256.0, *,
                              window: float = 30.0) -> Objective:
    """The default lag objective a replicated service adds itself:
    worst-replica applied-seq lag stays at or under ``threshold_seq``.
    Measured from a probe (:meth:`SLOMonitor.set_probe`), not from
    request samples — lag is a *level*, sampled at evaluation time,
    not a per-request outcome."""
    return Objective("replication.lag", REPLICATION_LAG, threshold_seq,
                     window=window)


class _Sample:
    __slots__ = ("ts", "family", "duration", "error", "shed")

    def __init__(self, ts: float, family: str, duration: float,
                 error: bool, shed: bool) -> None:
        self.ts = ts
        self.family = family
        self.duration = duration
        self.error = error
        self.shed = shed


class SLOMonitor:
    """Records request outcomes, evaluates objectives, manages alerts.

    One monitor per service. ``record`` is called on every request
    completion (success or failure); ``evaluate`` walks the objectives
    and fires/clears alerts; ``maybe_evaluate`` rate-limits that to
    ``eval_interval`` so request paths can call it unconditionally.
    """

    def __init__(self, objectives: tuple[Objective, ...] | None = None,
                 *, clock=time.monotonic,
                 eval_interval: float = 0.25) -> None:
        self.objectives = tuple(objectives if objectives is not None
                                else default_objectives())
        self._clock = clock
        self.eval_interval = eval_interval
        self._horizon = max(
            (o.window for o in self.objectives), default=60.0
        )
        self._samples: deque[_Sample] = deque()
        self._alerting: dict[str, bool] = {
            o.name: False for o in self.objectives
        }
        # Level probes (replication lag): objective name -> zero-arg
        # callable returning the current level (or None when it cannot
        # be measured), sampled at evaluation time into per-objective
        # (ts, value) deques evaluated over the same two windows.
        self._probes: dict[str, "object"] = {}
        self._levels: dict[str, deque] = {}
        self._raised = 0
        self._cleared = 0
        self._last_eval = 0.0
        self._lock = threading.Lock()

    # -- composition --------------------------------------------------------

    def add_objective(self, objective: Objective) -> None:
        """Add an objective after construction (how a service folds in
        the replication-lag objective once replication is attached)."""
        with self._lock:
            if any(o.name == objective.name for o in self.objectives):
                raise MetricError(
                    f"objective {objective.name!r} already registered"
                )
            self.objectives = self.objectives + (objective,)
            self._alerting[objective.name] = False
            self._horizon = max(self._horizon, objective.window)

    def set_probe(self, objective_name: str, probe) -> None:
        """Attach a level probe to a ``replication_lag``-kind
        objective. ``probe`` is a zero-arg callable returning the
        current level (``None`` = no evidence this round); it is
        invoked outside the monitor lock on every evaluation."""
        if not any(o.name == objective_name for o in self.objectives):
            raise MetricError(
                f"no objective named {objective_name!r} to probe"
            )
        self._probes[objective_name] = probe
        self._levels.setdefault(objective_name, deque())

    # -- recording ----------------------------------------------------------

    def record(self, family: str, duration: float, *,
               error: bool = False, shed: bool = False) -> None:
        now = self._clock()
        with self._lock:
            self._samples.append(
                _Sample(now, family, duration, error, shed)
            )
            self._prune(now)

    def _prune(self, now: float) -> None:
        # Caller holds self._lock.
        cutoff = now - self._horizon
        while self._samples and self._samples[0].ts < cutoff:
            self._samples.popleft()
        for levels in self._levels.values():
            while levels and levels[0][0] < cutoff:
                levels.popleft()

    # -- evaluation ---------------------------------------------------------

    def maybe_evaluate(self) -> list[Verdict] | None:
        """Evaluate if at least ``eval_interval`` elapsed since the
        last evaluation; None when skipped (the common case)."""
        now = self._clock()
        with self._lock:
            if now - self._last_eval < self.eval_interval:
                return None
        return self.evaluate(now)

    def evaluate(self, now: float | None = None) -> list[Verdict]:
        """Evaluate every objective; fire/clear alert transitions as
        ``slo.*`` action events and counters."""
        now = self._clock() if now is None else now
        # Sample level probes outside the lock (a probe may take other
        # locks, e.g. the replication group's link bookkeeping).
        probe_samples = [
            (name, probe()) for name, probe in self._probes.items()
        ]
        transitions: list[tuple[str, Verdict]] = []
        verdicts: list[Verdict] = []
        with self._lock:
            for name, value in probe_samples:
                if value is not None:
                    self._levels[name].append((now, float(value)))
            self._last_eval = now
            self._prune(now)
            samples = tuple(self._samples)
            for objective in self.objectives:
                verdict = self._verdict(objective, samples, now)
                verdicts.append(verdict)
                was = self._alerting[objective.name]
                if verdict.alerting and not was:
                    self._alerting[objective.name] = True
                    self._raised += 1
                    transitions.append(("slo.alert_raised", verdict))
                elif was and not verdict.alerting:
                    self._alerting[objective.name] = False
                    self._cleared += 1
                    transitions.append(("slo.alert_cleared", verdict))
        # Outside the lock: OBS sinks may be arbitrarily slow.
        for name, verdict in transitions:
            if OBS.enabled:
                OBS.inc(name.replace("alert_", "alerts_"))
                OBS.action(
                    name,
                    objective=verdict.objective.name,
                    rule=verdict.objective.describe(),
                    fast_value=verdict.fast_value,
                    slow_value=verdict.slow_value,
                )
        if OBS.enabled:
            OBS.gauge("slo.alerts_active", sum(
                1 for active in self._alerting.values() if active
            ))
        return verdicts

    def _verdict(self, objective: Objective,
                 samples: tuple[_Sample, ...], now: float) -> Verdict:
        if objective.kind == REPLICATION_LAG:
            return self._level_verdict(objective, now)
        slow = [s for s in samples
                if s.ts >= now - objective.window
                and (objective.family == "*"
                     or s.family == objective.family)]
        fast = [s for s in slow if s.ts >= now - objective.fast_window]
        slow_value = self._measure(objective, slow)
        fast_value = self._measure(objective, fast)
        slow_bad = slow_value is not None and slow_value > objective.threshold
        fast_bad = fast_value is not None and fast_value > objective.threshold
        was_alerting = self._alerting[objective.name]
        # Raise on both windows burning; clear when the fast window is
        # healthy again (see module docstring).
        alerting = ((slow_bad and fast_bad) if not was_alerting
                    else fast_bad)
        return Verdict(
            objective=objective,
            ok=not slow_bad and not fast_bad,
            alerting=alerting,
            slow_value=slow_value,
            fast_value=fast_value,
            slow_requests=len(slow),
            fast_requests=len(fast),
        )

    def _level_verdict(self, objective: Objective,
                       now: float) -> Verdict:
        """Verdict for level-probed objectives (replication lag): the
        measured value of a window is the *worst* level seen in it —
        a lag SLO promises the lag never stays above threshold, so max
        (not a percentile) is the honest aggregate. Uses ``>`` against
        the threshold like the rate kinds, so ``threshold=0`` means
        "no lag at all"."""
        levels = self._levels.get(objective.name, ())
        slow = [v for ts, v in levels if ts >= now - objective.window]
        fast = [v for ts, v in levels
                if ts >= now - objective.fast_window]
        slow_value = max(slow) if slow else None
        fast_value = max(fast) if fast else None
        slow_bad = (slow_value is not None
                    and slow_value > objective.threshold)
        fast_bad = (fast_value is not None
                    and fast_value > objective.threshold)
        was_alerting = self._alerting[objective.name]
        alerting = ((slow_bad and fast_bad) if not was_alerting
                    else fast_bad)
        return Verdict(
            objective=objective,
            ok=not slow_bad and not fast_bad,
            alerting=alerting,
            slow_value=slow_value,
            fast_value=fast_value,
            slow_requests=len(slow),
            fast_requests=len(fast),
        )

    @staticmethod
    def _measure(objective: Objective,
                 window: list[_Sample]) -> float | None:
        """The objective's measured value over one window; None when
        the window is empty (no evidence either way)."""
        if not window:
            return None
        if objective.kind == LATENCY:
            ordered = sorted(s.duration for s in window)
            rank = max(0, min(len(ordered) - 1,
                              round(objective.percentile / 100
                                    * (len(ordered) - 1))))
            return ordered[rank]
        if objective.kind == ERROR_RATE:
            return sum(1 for s in window if s.error) / len(window)
        return sum(1 for s in window if s.shed) / len(window)

    # -- reading ------------------------------------------------------------

    @property
    def alerts(self) -> tuple[str, ...]:
        """Names of objectives currently alerting."""
        with self._lock:
            return tuple(name for name, active in self._alerting.items()
                         if active)

    @property
    def raised(self) -> int:
        with self._lock:
            return self._raised

    @property
    def cleared(self) -> int:
        with self._lock:
            return self._cleared

    @property
    def healthy(self) -> bool:
        return not self.alerts

    def snapshot(self) -> dict:
        """Verdicts + alert state as one JSON-ready dict (what the
        ``/slo`` endpoint and ``stats()`` serve). Evaluates without
        firing transitions twice — ``evaluate`` already dedups on the
        alert state."""
        verdicts = self.evaluate()
        return {
            "objectives": [v.to_dict() for v in verdicts],
            "alerts": list(self.alerts),
            "alerts_raised": self.raised,
            "alerts_cleared": self.cleared,
            "healthy": self.healthy,
            "window_samples": len(self._samples),
        }
