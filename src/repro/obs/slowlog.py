"""Slow-path attribution: catch the updates and queries that hurt.

Flat counters say the system is slow; the slowlog says *which
derivation chain* made it slow. When an instrumented span finishes
over its threshold, a :class:`SlowRecord` is captured with the span's
name, key, duration — and, when the call site supplied one, a lazily
built ``detail`` payload (an ``explain``-style cost breakdown of the
derivation chains involved, see :mod:`repro.fdb.explain`). The detail
callback runs *only* for slow spans, so the fast path never pays for
the diagnosis.

Thresholds are per operation family: ``query.*`` spans compare against
``query_seconds``, ``update.*`` spans against ``update_seconds``;
everything else is ignored (WAL appends and chain enumeration are
accounted inside their enclosing update). Either threshold may be
``None`` (that family untracked). Records live in a bounded ring; the
newest survive.

Surfaced through ``FunctionalDatabase.stats()["slowlog"]`` and the
REPL's ``slowlog`` command.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["SlowRecord", "SlowLog"]

_FAMILIES = (("query.", "query_seconds"), ("update.", "update_seconds"))


@dataclass(frozen=True)
class SlowRecord:
    """One over-threshold span, with its diagnosis."""

    op: str
    key: str
    duration: float
    threshold: float
    ts: float
    cause: str | None = None
    detail: dict | None = None

    def to_dict(self) -> dict:
        record: dict = {
            "op": self.op,
            "key": self.key,
            "duration_seconds": self.duration,
            "threshold_seconds": self.threshold,
            "ts": self.ts,
        }
        if self.cause is not None:
            record["cause"] = self.cause
        if self.detail is not None:
            record["detail"] = self.detail
        return record

    def render(self) -> str:
        head = (f"{self.op} key={self.key} "
                f"{self.duration * 1000:.2f} ms "
                f"(threshold {self.threshold * 1000:.2f} ms)")
        if self.cause:
            head += f" cause={self.cause}"
        lines = [head]
        for hop in (self.detail or {}).get("hops", []):
            lines.append(
                "  hop {n}: {function} ({role}) rows={rows} "
                "cost={cost}".format(
                    n=hop.get("hop"), function=hop.get("function"),
                    role=hop.get("role"), rows=hop.get("rows"),
                    cost=hop.get("est_cost"),
                )
            )
        return "\n".join(lines)


class SlowLog:
    """Bounded, thread-safe buffer of :class:`SlowRecord` entries.

    Thresholds default to ``None`` (off): the slowlog is opt-in per
    family, because a meaningful threshold depends on the deployment's
    data volume, not anything the library can guess.
    """

    def __init__(self, *, query_seconds: float | None = None,
                 update_seconds: float | None = None,
                 capacity: int = 64) -> None:
        self.query_seconds = query_seconds
        self.update_seconds = update_seconds
        self._records: deque[SlowRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    # -- configuration -------------------------------------------------------

    def configure(self, *, query_seconds: float | None = ...,
                  update_seconds: float | None = ...) -> None:
        """Set either threshold; ``None`` disables that family,
        an omitted argument leaves it unchanged."""
        if query_seconds is not ...:
            self.query_seconds = query_seconds
        if update_seconds is not ...:
            self.update_seconds = update_seconds

    def disable(self) -> None:
        self.query_seconds = None
        self.update_seconds = None

    @property
    def active(self) -> bool:
        return (self.query_seconds is not None
                or self.update_seconds is not None)

    def threshold_for(self, op: str) -> float | None:
        """The threshold governing ``op``, by name-prefix family."""
        for prefix, attr in _FAMILIES:
            if op.startswith(prefix):
                return getattr(self, attr.replace("_seconds", "")
                               + "_seconds")
        return None

    # -- recording -----------------------------------------------------------

    def record(self, op: str, key: str, duration: float, *,
               cause: str | None = None,
               detail: Callable[[], dict] | dict | None = None,
               ) -> SlowRecord | None:
        """Capture ``op`` if it crossed its family threshold.

        ``detail`` may be a callable — it is invoked only when the span
        actually qualifies, keeping the diagnosis off the fast path.
        """
        threshold = self.threshold_for(op)
        if threshold is None or duration < threshold:
            return None
        if callable(detail):
            try:
                detail = detail()
            except Exception as error:  # diagnosis must not break work
                detail = {"error": f"{type(error).__name__}: {error}"}
        entry = SlowRecord(
            op=op, key=key, duration=duration, threshold=threshold,
            ts=time.time(), cause=cause, detail=detail,
        )
        with self._lock:
            self._records.append(entry)
        return entry

    # -- reading -------------------------------------------------------------

    @property
    def records(self) -> tuple[SlowRecord, ...]:
        """Captured entries, oldest first."""
        with self._lock:
            return tuple(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def reset(self) -> None:
        """Drop records; thresholds unchanged."""
        self.clear()

    def snapshot(self) -> dict:
        return {
            "query_threshold_seconds": self.query_seconds,
            "update_threshold_seconds": self.update_seconds,
            "records": [record.to_dict() for record in self.records],
        }
