"""Hierarchical spans with structured events — update-propagation traces.

A derived ``DEL`` is a cascade: chains are enumerated, conjunctions
negated, NVCs re-truthified, base rows mutated. A :class:`Span` records
one timed region of that cascade; spans nest (``update.replace`` over
``update.delete`` over ``txn``), and carry :class:`SpanEvent` markers
for the atomic things that happen inside them — each NC created, each
chain evaluated, each base mutation.

The :class:`Tracer` keeps the active span stack and retains the last few
finished root spans, so the REPL's ``trace`` command and the examples
can print the tree of what an update actually did::

    update.delete function=pupil x=euclid y=john [0.21 ms]
      + chain.evaluated chain=<teach, euclid, math> . <class_list, math, john>
      + nc.created index=g1 members=2

Attribute values are rendered through
:func:`repro.fdb.values.format_value`, so indexed nulls print ``n1``
(stable across runs) rather than their repr, keeping traces diffable.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = ["SpanEvent", "Span", "Tracer"]


def format_value(value) -> str:
    # Lazy import: repro.fdb modules import repro.obs.hooks at module
    # level (the instrumentation hot-path guard), so obs modules must
    # not import repro.fdb until first use or the packages deadlock in
    # a circular import.
    from repro.fdb.values import format_value as _format_value

    return _format_value(value)


def _render_attrs(attrs: dict) -> str:
    return " ".join(
        f"{key}={format_value(value)}" for key, value in attrs.items()
    )


@dataclass(frozen=True)
class SpanEvent:
    """One structured marker inside a span.

    ``offset`` is seconds since the enclosing span started, so events
    order and locate themselves inside the span's duration.
    """

    name: str
    attrs: dict
    offset: float

    def __str__(self) -> str:
        rendered = _render_attrs(self.attrs)
        return f"+ {self.name}" + (f" {rendered}" if rendered else "")


@dataclass
class Span:
    """One timed, named region of work, with children and events.

    ``span_id``/``parent_id`` identify the span within its process
    (assigned by the tracer); ``cause`` names the update (``u1``, ...)
    whose propagation opened it. All three flow into the structured
    event log so flat JSONL streams fold back into this tree.
    """

    name: str
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    events: list[SpanEvent] = field(default_factory=list)
    start: float = 0.0
    duration: float | None = None
    span_id: int = 0
    parent_id: int | None = None
    cause: str | None = None

    def event(self, name: str, **attrs) -> SpanEvent:
        marker = SpanEvent(name, attrs, time.perf_counter() - self.start)
        self.events.append(marker)
        return marker

    @property
    def finished(self) -> bool:
        return self.duration is not None

    def walk(self):
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every descendant span (incl. self) with the given name."""
        return [span for span in self.walk() if span.name == name]

    def event_names(self) -> list[str]:
        """Event names of this span and every descendant, in tree
        order (events before child spans' events)."""
        names = [event.name for event in self.events]
        for child in self.children:
            names.extend(child.event_names())
        return names

    # -- rendering -----------------------------------------------------------

    def _header(self) -> str:
        rendered = _render_attrs(self.attrs)
        timing = (
            f" [{self.duration * 1000:.2f} ms]"
            if self.duration is not None else " [open]"
        )
        return self.name + (f" {rendered}" if rendered else "") + timing

    def lines(self, indent: str = "") -> list[str]:
        out = [indent + self._header()]
        inner = indent + "  "
        for event in self.events:
            out.append(inner + str(event))
        for child in self.children:
            out.extend(child.lines(inner))
        return out

    def render(self, indent: str = "") -> str:
        """The span tree as indented text."""
        return "\n".join(self.lines(indent))

    def to_dict(self) -> dict:
        """JSON-ready form (attribute values stringified for
        stability)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "cause": self.cause,
            "attrs": {k: format_value(v) for k, v in self.attrs.items()},
            "duration_seconds": self.duration,
            "events": [
                {"name": e.name,
                 "attrs": {k: format_value(v) for k, v in e.attrs.items()},
                 "offset_seconds": e.offset}
                for e in self.events
            ],
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """The active span stack plus a bounded buffer of finished traces.

    ``max_traces`` bounds memory: only the most recent finished *root*
    spans are retained (children live inside their roots). The tracer
    itself has no enabled flag — :class:`repro.obs.hooks.Instrumentation`
    decides whether any span is ever started.

    The active stack lives in a :class:`~contextvars.ContextVar`
    holding an immutable tuple, so every thread (and asyncio task) gets
    its own nesting — spans opened on one thread never become children
    of another thread's spans, with no locking on the hot start/finish
    path. Only the finished-roots buffer is shared, and a lock guards
    it. Span ids come from one process-wide counter, so ids stay unique
    across threads (``itertools.count`` is atomic under CPython).
    """

    def __init__(self, max_traces: int = 16) -> None:
        self.max_traces = max_traces
        self._stack_var: ContextVar[tuple[Span, ...]] = ContextVar(
            "repro_obs_span_stack", default=()
        )
        self._ids = itertools.count(1)
        self._finished: list[Span] = []
        self._lock = threading.Lock()

    @property
    def active(self) -> Span | None:
        stack = self._stack_var.get()
        return stack[-1] if stack else None

    def next_id(self) -> int:
        """Allocate a span id from the process-wide sequence (also used
        by the event log when tracing is off, so ids never collide)."""
        return next(self._ids)

    @property
    def depth(self) -> int:
        return len(self._stack_var.get())

    def start(self, name: str, *, cause: str | None = None,
              **attrs) -> Span:
        """Open a span as a child of the active one (or a new root).

        ``cause`` tags the span with the update id that provoked it;
        left unset, the parent's cause is inherited, so a whole
        propagation cascade shares one attribution.
        """
        stack = self._stack_var.get()
        parent = stack[-1] if stack else None
        span = Span(
            name, attrs, start=time.perf_counter(),
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            cause=cause if cause is not None
            else (parent.cause if parent is not None else None),
        )
        if parent is not None:
            parent.children.append(span)
        self._stack_var.set(stack + (span,))
        return span

    def finish(self, span: Span) -> Span:
        """Close ``span``; it must be the innermost open span *of the
        current context* — a thread cannot close another's spans."""
        stack = self._stack_var.get()
        if not stack or stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} is not the innermost open span"
            )
        self._stack_var.set(stack[:-1])
        span.duration = time.perf_counter() - span.start
        if len(stack) == 1:  # a root completed: retain it
            with self._lock:
                self._finished.append(span)
                if len(self._finished) > self.max_traces:
                    self._finished.pop(0)
        return span

    def event(self, name: str, **attrs) -> None:
        """Attach an event to the active span; dropped when no span is
        open (an event outside any traced operation has no home)."""
        span = self.active
        if span is not None:
            span.event(name, **attrs)

    @property
    def traces(self) -> tuple[Span, ...]:
        """Finished root spans, oldest first."""
        with self._lock:
            return tuple(self._finished)

    @property
    def last_trace(self) -> Span | None:
        with self._lock:
            return self._finished[-1] if self._finished else None

    def reset(self) -> None:
        self._stack_var.set(())
        with self._lock:
            self._finished.clear()
