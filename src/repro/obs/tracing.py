"""Hierarchical spans with structured events — update-propagation traces.

A derived ``DEL`` is a cascade: chains are enumerated, conjunctions
negated, NVCs re-truthified, base rows mutated. A :class:`Span` records
one timed region of that cascade; spans nest (``update.replace`` over
``update.delete`` over ``txn``), and carry :class:`SpanEvent` markers
for the atomic things that happen inside them — each NC created, each
chain evaluated, each base mutation.

The :class:`Tracer` keeps the active span stack and retains the last few
finished root spans, so the REPL's ``trace`` command and the examples
can print the tree of what an update actually did::

    update.delete function=pupil x=euclid y=john [0.21 ms]
      + chain.evaluated chain=<teach, euclid, math> . <class_list, math, john>
      + nc.created index=g1 members=2

Attribute values are rendered through
:func:`repro.fdb.values.format_value`, so indexed nulls print ``n1``
(stable across runs) rather than their repr, keeping traces diffable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["SpanEvent", "Span", "Tracer"]


def format_value(value) -> str:
    # Lazy import: repro.fdb modules import repro.obs.hooks at module
    # level (the instrumentation hot-path guard), so obs modules must
    # not import repro.fdb until first use or the packages deadlock in
    # a circular import.
    from repro.fdb.values import format_value as _format_value

    return _format_value(value)


def _render_attrs(attrs: dict) -> str:
    return " ".join(
        f"{key}={format_value(value)}" for key, value in attrs.items()
    )


@dataclass(frozen=True)
class SpanEvent:
    """One structured marker inside a span.

    ``offset`` is seconds since the enclosing span started, so events
    order and locate themselves inside the span's duration.
    """

    name: str
    attrs: dict
    offset: float

    def __str__(self) -> str:
        rendered = _render_attrs(self.attrs)
        return f"+ {self.name}" + (f" {rendered}" if rendered else "")


@dataclass
class Span:
    """One timed, named region of work, with children and events."""

    name: str
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    events: list[SpanEvent] = field(default_factory=list)
    start: float = 0.0
    duration: float | None = None

    def event(self, name: str, **attrs) -> SpanEvent:
        marker = SpanEvent(name, attrs, time.perf_counter() - self.start)
        self.events.append(marker)
        return marker

    @property
    def finished(self) -> bool:
        return self.duration is not None

    def walk(self):
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every descendant span (incl. self) with the given name."""
        return [span for span in self.walk() if span.name == name]

    def event_names(self) -> list[str]:
        """Event names of this span and every descendant, in tree
        order (events before child spans' events)."""
        names = [event.name for event in self.events]
        for child in self.children:
            names.extend(child.event_names())
        return names

    # -- rendering -----------------------------------------------------------

    def _header(self) -> str:
        rendered = _render_attrs(self.attrs)
        timing = (
            f" [{self.duration * 1000:.2f} ms]"
            if self.duration is not None else " [open]"
        )
        return self.name + (f" {rendered}" if rendered else "") + timing

    def lines(self, indent: str = "") -> list[str]:
        out = [indent + self._header()]
        inner = indent + "  "
        for event in self.events:
            out.append(inner + str(event))
        for child in self.children:
            out.extend(child.lines(inner))
        return out

    def render(self, indent: str = "") -> str:
        """The span tree as indented text."""
        return "\n".join(self.lines(indent))

    def to_dict(self) -> dict:
        """JSON-ready form (attribute values stringified for
        stability)."""
        return {
            "name": self.name,
            "attrs": {k: format_value(v) for k, v in self.attrs.items()},
            "duration_seconds": self.duration,
            "events": [
                {"name": e.name,
                 "attrs": {k: format_value(v) for k, v in e.attrs.items()},
                 "offset_seconds": e.offset}
                for e in self.events
            ],
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """The active span stack plus a bounded buffer of finished traces.

    ``max_traces`` bounds memory: only the most recent finished *root*
    spans are retained (children live inside their roots). The tracer
    itself has no enabled flag — :class:`repro.obs.hooks.Instrumentation`
    decides whether any span is ever started.
    """

    def __init__(self, max_traces: int = 16) -> None:
        self.max_traces = max_traces
        self._stack: list[Span] = []
        self._finished: list[Span] = []

    @property
    def active(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    def start(self, name: str, **attrs) -> Span:
        """Open a span as a child of the active one (or a new root)."""
        span = Span(name, attrs, start=time.perf_counter())
        parent = self.active
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> Span:
        """Close ``span``; it must be the innermost open span."""
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} is not the innermost open span"
            )
        self._stack.pop()
        span.duration = time.perf_counter() - span.start
        if not self._stack:  # a root completed: retain it
            self._finished.append(span)
            if len(self._finished) > self.max_traces:
                self._finished.pop(0)
        return span

    def event(self, name: str, **attrs) -> None:
        """Attach an event to the active span; dropped when no span is
        open (an event outside any traced operation has no home)."""
        span = self.active
        if span is not None:
            span.event(name, **attrs)

    @property
    def traces(self) -> tuple[Span, ...]:
        """Finished root spans, oldest first."""
        return tuple(self._finished)

    @property
    def last_trace(self) -> Span | None:
        return self._finished[-1] if self._finished else None

    def reset(self) -> None:
        self._stack.clear()
        self._finished.clear()
