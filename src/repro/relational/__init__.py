"""A small relational substrate for the Section 3.1 comparison.

The paper contrasts its update semantics with two classical view-update
frameworks over relational databases: the Dayal-Bernstein "correct
translation" criterion [6] and the Fagin-Ullman-Vardi minimal-change
semantics [9]. Reproducing that comparison needs a relational engine —
relations, natural join, projection, chain views — plus the two
translators. This subpackage provides exactly that, from scratch.

The views under study are the paper's *chain views*
``v(A1, Ak+1) = pi(r1 join r2 join ... join rk)`` over relations that
chain on shared attributes — the relational image of a functional
derivation by composition ("the most important operator in our
derivations is composition (analog of join)").
"""

from __future__ import annotations

from repro.relational.relation import Relation, RelationalDatabase
from repro.relational.algebra import natural_join, project, select
from repro.relational.view import ChainView, DerivationChain
from repro.relational.dayal_bernstein import DayalBernsteinTranslator
from repro.relational.fuv import FUVTranslator
from repro.relational.keller import (
    KellerTranslator,
    choose_fewest_deletions,
    choose_least_view_damage,
)
from repro.relational.translate import (
    Deletion,
    Translation,
    ViewDeleteTranslator,
    measure_side_effects,
)

__all__ = [
    "Relation",
    "RelationalDatabase",
    "natural_join",
    "project",
    "select",
    "ChainView",
    "DerivationChain",
    "Deletion",
    "Translation",
    "ViewDeleteTranslator",
    "measure_side_effects",
    "DayalBernsteinTranslator",
    "FUVTranslator",
    "KellerTranslator",
    "choose_fewest_deletions",
    "choose_least_view_damage",
]
