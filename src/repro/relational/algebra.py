"""Relational algebra: selection, projection, natural join.

Only what the Section 3.1 comparison needs — but implemented generally
(natural join on any set of shared attributes, hash-join based), so the
workload generators can build wider experiments than the paper's
three-relation example.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import SchemaError
from repro.relational.relation import Relation

__all__ = ["select", "project", "natural_join", "join_all"]


def select(relation: Relation, predicate: Callable[[dict], bool],
           name: str | None = None) -> Relation:
    """Tuples satisfying ``predicate``, which receives an
    attribute -> value dict."""
    result = Relation(name or relation.name, relation.attributes)
    for row in relation:
        if predicate(dict(zip(relation.attributes, row))):
            result.add(row)
    return result


def project(relation: Relation, attributes: Iterable[str],
            name: str | None = None) -> Relation:
    """Projection onto ``attributes`` (duplicates collapse, as sets)."""
    attributes = tuple(attributes)
    positions = [relation.position(a) for a in attributes]
    result = Relation(name or relation.name, attributes)
    for row in relation:
        result.add(tuple(row[i] for i in positions))
    return result


def natural_join(left: Relation, right: Relation,
                 name: str | None = None) -> Relation:
    """Natural join on all shared attributes (hash join).

    With no shared attributes this degenerates to a cartesian product,
    which is still occasionally useful; chain views never hit that case
    because adjacent relations share exactly one attribute.
    """
    shared = [a for a in left.attributes if a in right.attributes]
    left_pos = [left.position(a) for a in shared]
    right_pos = [right.position(a) for a in shared]
    extra = [
        (a, right.position(a))
        for a in right.attributes
        if a not in shared
    ]
    out_attrs = left.attributes + tuple(a for a, _ in extra)
    result = Relation(name or f"({left.name} join {right.name})", out_attrs)

    index: dict[tuple, list[tuple]] = {}
    for row in right:
        key = tuple(row[i] for i in right_pos)
        index.setdefault(key, []).append(row)
    for row in left:
        key = tuple(row[i] for i in left_pos)
        for match in index.get(key, ()):
            result.add(row + tuple(match[i] for _, i in extra))
    return result


def join_all(relations: Iterable[Relation], name: str = "join") -> Relation:
    """Left-to-right natural join of a non-empty sequence."""
    relations = list(relations)
    if not relations:
        raise SchemaError("join_all needs at least one relation")
    result = relations[0]
    for relation in relations[1:]:
        result = natural_join(result, relation)
    return Relation(name, result.attributes, result.tuples)
