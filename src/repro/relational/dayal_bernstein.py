"""Dayal-Bernstein-style "correct translation" of view deletes.

Reference [6] of the paper (Dayal & Bernstein, TODS 1982) formulates a
correctness criterion the paper summarizes as: "an update on a view is
'correctly' performed by a translation if the translation has the
desired effect on the view and no side effect on it. A translation is
said to have no side effect on the view if the symmetric difference of
the extensions of the view before and after the update is equal to the
set of tuples specified in the view update."

The translator reconstructed here follows the paper's reading of that
criterion for chain views: delete, from a single base relation of the
chain, every tuple participating in some derivation chain of the target
view tuple; accept the first relation (in chain order) for which this
is *correct* — the view loses exactly the requested tuple. On the
Section 3.1 instance this yields ``DEL(r1, <a1, b1>); DEL(r1, <a1,
b2>)``, exactly the translation the paper attributes to [6]. When no
single relation gives a correct translation, the update is rejected
(ambiguous, in [6]'s terms).

The point of the reproduction is the paper's criticism: even a
"correct" translation deletes base facts whose falsity the view update
never implied.
"""

from __future__ import annotations

from repro.relational.relation import RelationalDatabase
from repro.relational.translate import Deletion, Translation, ViewDeleteTranslator

__all__ = ["DayalBernsteinTranslator"]


class DayalBernsteinTranslator(ViewDeleteTranslator):
    """Single-relation, no-view-side-effect delete translation."""

    name = "dayal-bernstein"

    def translate(self, db: RelationalDatabase, view_name: str,
                  view_tuple: tuple) -> Translation:
        view = db.view(view_name)
        chains = list(view.chains_for(db, view_tuple))
        if not chains:
            return Translation(())  # already absent: the empty translation
        before = set(view.evaluate(db).tuples)
        expected = before - {tuple(view_tuple)}
        for relation_name in view.relation_names:
            rows = {
                row
                for chain in chains
                for name, row in chain.facts
                if name == relation_name
            }
            candidate = Translation(tuple(
                Deletion(relation_name, row) for row in sorted(rows)
            ))
            working = db.copy()
            candidate.apply(working)
            after = set(view.evaluate(working).tuples)
            if after == expected:
                return candidate
        return Translation.rejected(
            "no single-relation translation is free of side effects "
            f"on {view_name}"
        )
