"""Fagin-Ullman-Vardi minimal-change semantics for view deletes.

Reference [9] of the paper (Fagin, Ullman & Vardi, PODS 1983) treats
the database as a consistent theory of facts: "updates are carried out
such that the new database differs minimally (in terms of number of
facts deleted and number of facts inserted) from the old database."

For a chain-view delete this means: remove a *minimum-cardinality* set
of base tuples that breaks every derivation chain of the target view
tuple — a minimum hitting set over the chains. On the Section 3.1
instance the unique minimum is ``DEL(r3, <c1, d1>)``, which the paper
reports, noting that minimality neither justifies the deletion nor
protects other view tuples.

The hitting set is computed exactly by breadth-first search over
subset sizes when the candidate universe is small, falling back to the
classic greedy cover beyond :data:`EXACT_LIMIT` candidates (benches
stay within the exact regime; the fallback keeps large generated
workloads running). Ties between equal-size hitting sets are broken
deterministically by (relation, row) order.
"""

from __future__ import annotations

from itertools import combinations

from repro.relational.relation import RelationalDatabase
from repro.relational.translate import Deletion, Translation, ViewDeleteTranslator

__all__ = ["FUVTranslator", "EXACT_LIMIT"]

EXACT_LIMIT = 20
"""Maximum candidate-universe size for the exact hitting-set search."""


def _hits_all(candidate: tuple, chains: list[frozenset]) -> bool:
    chosen = set(candidate)
    return all(chain & chosen for chain in chains)


class FUVTranslator(ViewDeleteTranslator):
    """Minimum-cardinality base deletion set breaking every chain."""

    name = "fagin-ullman-vardi"

    def __init__(self, exact_limit: int = EXACT_LIMIT) -> None:
        self.exact_limit = exact_limit

    def translate(self, db: RelationalDatabase, view_name: str,
                  view_tuple: tuple) -> Translation:
        view = db.view(view_name)
        chain_sets = [
            chain.fact_set for chain in view.chains_for(db, view_tuple)
        ]
        if not chain_sets:
            return Translation(())
        universe = sorted(
            {fact for chain in chain_sets for fact in chain}
        )
        if len(universe) <= self.exact_limit:
            chosen = self._exact(universe, chain_sets)
        else:
            chosen = self._greedy(universe, chain_sets)
        return Translation(tuple(
            Deletion(relation, row) for relation, row in sorted(chosen)
        ))

    def _exact(self, universe: list, chains: list[frozenset]) -> set:
        for size in range(1, len(universe) + 1):
            for candidate in combinations(universe, size):
                if _hits_all(candidate, chains):
                    return set(candidate)
        raise AssertionError("the full universe always hits all chains")

    def _greedy(self, universe: list, chains: list[frozenset]) -> set:
        remaining = list(chains)
        chosen: set = set()
        while remaining:
            best = max(
                universe,
                key=lambda fact: sum(1 for c in remaining if fact in c),
            )
            chosen.add(best)
            remaining = [c for c in remaining if best not in c]
        return chosen
