"""Keller-style dialogue-chosen view-delete translations.

Reference [8] of the paper (Keller's thesis, *Updating Relational
Databases Through Views*) characterizes the space of candidate
translations of a view update and resolves the ambiguity by asking —
at view-definition or update time — which candidate is intended. The
paper lumps it with [6]/[7]: the chosen translation still adds and
removes base tuples, so "the same objection holds".

:class:`KellerTranslator` reconstructs that shape for chain views: the
candidate translations of ``DEL(view, t)`` are, per base relation of
the chain, the deletion of every tuple of that relation participating
in a chain of ``t`` (the same candidate space
:class:`repro.relational.dayal_bernstein.DayalBernsteinTranslator`
searches); a *chooser* — the stand-in for Keller's dialogue — picks
one. Built-in choosers:

* :func:`choose_fewest_deletions` — minimize base tuples removed;
* :func:`choose_least_view_damage` — minimize collateral view loss
  (ties broken by fewer deletions, then chain order);
* any callable ``(db, view_name, candidates) -> index``.

This gives the E9-style comparisons a third classical point: a
*user-optimal* add/remove translation still deletes base facts, which
is precisely what the paper's NC semantics avoids.
"""

from __future__ import annotations

from typing import Callable

from repro.relational.relation import RelationalDatabase
from repro.relational.translate import Deletion, Translation, ViewDeleteTranslator

__all__ = [
    "Candidate",
    "KellerTranslator",
    "choose_fewest_deletions",
    "choose_least_view_damage",
]


class Candidate:
    """One candidate translation with its measured consequences."""

    def __init__(self, relation: str, translation: Translation,
                 view_losses: int) -> None:
        self.relation = relation
        self.translation = translation
        self.view_losses = view_losses

    @property
    def deletions(self) -> int:
        return len(self.translation.deletions)

    def __repr__(self) -> str:
        return (
            f"Candidate({self.relation!r}, {self.deletions} deletions, "
            f"{self.view_losses} view losses)"
        )


Chooser = Callable[[RelationalDatabase, str, list[Candidate]], int]


def choose_fewest_deletions(db: RelationalDatabase, view_name: str,
                            candidates: list[Candidate]) -> int:
    """Pick the candidate deleting the fewest base tuples."""
    return min(
        range(len(candidates)),
        key=lambda i: (candidates[i].deletions, i),
    )


def choose_least_view_damage(db: RelationalDatabase, view_name: str,
                             candidates: list[Candidate]) -> int:
    """Pick the candidate losing the fewest other view tuples."""
    return min(
        range(len(candidates)),
        key=lambda i: (
            candidates[i].view_losses, candidates[i].deletions, i
        ),
    )


class KellerTranslator(ViewDeleteTranslator):
    """Candidate enumeration plus a dialogue-style chooser."""

    name = "keller"

    def __init__(self, chooser: Chooser = choose_least_view_damage) -> None:
        self.chooser = chooser

    def candidates(self, db: RelationalDatabase, view_name: str,
                   view_tuple: tuple) -> list[Candidate]:
        """The per-relation candidate translations with their view
        damage, in chain order."""
        view = db.view(view_name)
        chains = list(view.chains_for(db, view_tuple))
        if not chains:
            return []
        before = set(view.evaluate(db).tuples)
        result: list[Candidate] = []
        for relation_name in view.relation_names:
            rows = {
                row
                for chain in chains
                for name, row in chain.facts
                if name == relation_name
            }
            translation = Translation(tuple(
                Deletion(relation_name, row) for row in sorted(rows)
            ))
            working = db.copy()
            translation.apply(working)
            after = set(view.evaluate(working).tuples)
            losses = len((before - after) - {tuple(view_tuple)})
            result.append(Candidate(relation_name, translation, losses))
        return result

    def translate(self, db: RelationalDatabase, view_name: str,
                  view_tuple: tuple) -> Translation:
        candidates = self.candidates(db, view_name, view_tuple)
        if not candidates:
            return Translation(())
        index = self.chooser(db, view_name, candidates)
        if not 0 <= index < len(candidates):
            return Translation.rejected(
                f"chooser returned invalid candidate index {index}"
            )
        return candidates[index].translation
