"""Relations and relational databases.

A :class:`Relation` is a named set of tuples over a fixed attribute
list; a :class:`RelationalDatabase` is a name-indexed collection of
relations plus the chain views defined over them. Tuples preserve
insertion order (deterministic iteration matters for reproducible
benches) while membership tests stay O(1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import SchemaError, UpdateError

if TYPE_CHECKING:  # pragma: no cover - import cycle breaker
    from repro.relational.view import ChainView

__all__ = ["Relation", "RelationalDatabase"]

Tuple = tuple


class Relation:
    """A named relation: attributes plus a set of same-arity tuples."""

    def __init__(
        self,
        name: str,
        attributes: Iterable[str],
        tuples: Iterable[Tuple] = (),
    ) -> None:
        self.name = name
        self.attributes = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(
                f"relation {name!r} has duplicate attributes"
            )
        if not self.attributes:
            raise SchemaError(f"relation {name!r} needs attributes")
        self._tuples: dict[Tuple, None] = {}
        for row in tuples:
            self.add(row)

    # -- rows ----------------------------------------------------------------

    def add(self, row: Tuple) -> None:
        if len(row) != len(self.attributes):
            raise UpdateError(
                f"{self.name}: tuple {row!r} has arity {len(row)}, "
                f"expected {len(self.attributes)}"
            )
        self._tuples[tuple(row)] = None

    def discard(self, row: Tuple) -> bool:
        """Remove a tuple; returns whether it was present."""
        return self._tuples.pop(tuple(row), 0) is None

    def __contains__(self, row: Tuple) -> bool:
        return tuple(row) in self._tuples

    def __iter__(self) -> Iterator[Tuple]:
        return iter(tuple(self._tuples))

    def __len__(self) -> int:
        return len(self._tuples)

    @property
    def tuples(self) -> tuple[Tuple, ...]:
        return tuple(self._tuples)

    # -- attribute helpers ---------------------------------------------------------

    def position(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def column(self, attribute: str) -> tuple:
        index = self.position(attribute)
        return tuple(row[index] for row in self)

    def copy(self) -> "Relation":
        return Relation(self.name, self.attributes, self._tuples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and set(self._tuples) == set(other._tuples)
        )

    def __str__(self) -> str:
        header = f"{self.name}({', '.join(self.attributes)})"
        body = ", ".join(
            "<" + ", ".join(str(v) for v in row) + ">" for row in self
        )
        return f"{header} = {{{body}}}"

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, {self.attributes!r}, "
            f"{list(self._tuples)!r})"
        )


class RelationalDatabase:
    """Named relations plus chain views."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        self._views: dict[str, "ChainView"] = {}
        for relation in relations:
            self.add_relation(relation)

    def add_relation(self, relation: Relation) -> Relation:
        if relation.name in self._relations or relation.name in self._views:
            raise SchemaError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation
        return relation

    def add_view(self, view: "ChainView") -> "ChainView":
        if view.name in self._relations or view.name in self._views:
            raise SchemaError(f"duplicate view name {view.name!r}")
        for name in view.relation_names:
            self.relation(name)  # must exist
        self._views[view.name] = view
        return view

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r}") from None

    def view(self, name: str) -> "ChainView":
        try:
            return self._views[name]
        except KeyError:
            raise SchemaError(f"no view named {name!r}") from None

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    @property
    def view_names(self) -> tuple[str, ...]:
        return tuple(self._views)

    def copy(self) -> "RelationalDatabase":
        clone = RelationalDatabase(
            relation.copy() for relation in self._relations.values()
        )
        for view in self._views.values():
            clone.add_view(view)
        return clone

    def __str__(self) -> str:
        lines = [str(relation) for relation in self._relations.values()]
        lines.extend(str(view) for view in self._views.values())
        return "\n".join(lines)
