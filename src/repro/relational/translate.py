"""View-delete translation framework and side-effect measurement.

Section 3.1: "An update on a view is translated into a sequence of
addition and removal of tuples in base relations which reflects the
desired effect of the update. The 'goodness' of the approximation is
measured by quantifying the undesirable side effect."

A :class:`ViewDeleteTranslator` maps ``DEL(view, t)`` to a
:class:`Translation` (a sequence of base deletions, or a refusal).
:func:`measure_side_effects` executes a translation on a copy of the
database and quantifies exactly what the paper discusses:

* base tuples deleted (each unjustified in the paper's analysis — the
  view delete "does not imply the falsity of any base fact");
* *view side effects*: view tuples lost beyond the requested one (the
  symmetric-difference criterion of [6], computed across every view in
  the database).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.relational.relation import RelationalDatabase

__all__ = [
    "Deletion",
    "Translation",
    "ViewDeleteTranslator",
    "SideEffects",
    "measure_side_effects",
]


@dataclass(frozen=True)
class Deletion:
    """One base-relation tuple removal."""

    relation: str
    row: tuple

    def __str__(self) -> str:
        inner = ", ".join(str(v) for v in self.row)
        return f"DEL({self.relation}, <{inner}>)"


@dataclass(frozen=True)
class Translation:
    """The outcome of translating one view delete."""

    deletions: tuple[Deletion, ...]
    accepted: bool = True
    reason: str = ""

    @classmethod
    def rejected(cls, reason: str) -> "Translation":
        return cls((), accepted=False, reason=reason)

    def apply(self, db: RelationalDatabase) -> None:
        for deletion in self.deletions:
            db.relation(deletion.relation).discard(deletion.row)

    def __str__(self) -> str:
        if not self.accepted:
            return f"(rejected: {self.reason})"
        if not self.deletions:
            return "(no-op)"
        return "; ".join(str(d) for d in self.deletions)


class ViewDeleteTranslator(abc.ABC):
    """Strategy interface for translating DEL(view, t)."""

    name: str = "abstract"

    @abc.abstractmethod
    def translate(self, db: RelationalDatabase, view_name: str,
                  view_tuple: tuple) -> Translation:
        """Produce a translation; must not mutate ``db``."""


@dataclass(frozen=True)
class SideEffects:
    """Quantified side effects of one executed translation."""

    translator: str
    accepted: bool
    base_deletions: int
    view_losses: int       # view tuples lost beyond the requested one
    view_insertions: int   # view tuples gained (anomalies)
    achieved: bool         # the requested tuple is gone from its view

    @property
    def total(self) -> int:
        return self.base_deletions + self.view_losses + self.view_insertions

    def __str__(self) -> str:
        status = "ok" if self.accepted else "rejected"
        return (
            f"{self.translator}: {status}, achieved={self.achieved}, "
            f"base deletions={self.base_deletions}, extra view losses="
            f"{self.view_losses}, view gains={self.view_insertions}"
        )


def measure_side_effects(
    db: RelationalDatabase,
    translator: ViewDeleteTranslator,
    view_name: str,
    view_tuple: tuple,
) -> SideEffects:
    """Translate, execute on a copy, and quantify the damage."""
    translation = translator.translate(db, view_name, view_tuple)
    if not translation.accepted:
        return SideEffects(
            translator.name, False,
            base_deletions=0, view_losses=0, view_insertions=0,
            achieved=False,
        )
    before = {
        name: set(db.view(name).evaluate(db).tuples)
        for name in db.view_names
    }
    working = db.copy()
    translation.apply(working)
    after = {
        name: set(working.view(name).evaluate(working).tuples)
        for name in working.view_names
    }
    losses = 0
    gains = 0
    for name in before:
        lost = before[name] - after[name]
        if name == view_name:
            lost -= {tuple(view_tuple)}
        losses += len(lost)
        gains += len(after[name] - before[name])
    achieved = tuple(view_tuple) not in after.get(view_name, set())
    return SideEffects(
        translator.name, True,
        base_deletions=len(translation.deletions),
        view_losses=losses,
        view_insertions=gains,
        achieved=achieved,
    )
