"""Chain views — the relational image of functional composition.

The Section 3.1 example defines ``v1(AD) = pi_AD(r1 join r2 join r3)``
over ``r1(AB), r2(BC), r3(CD)``: a *chain view*, where consecutive
relations share exactly one attribute and the view projects onto the
first attribute of the first relation and the last attribute of the
last. A :class:`DerivationChain` is one sequence of base tuples whose
join produces a given view tuple — the relational counterpart of the
functional :class:`repro.fdb.evaluate.Chain`, and the unit both
baseline translators reason over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import SchemaError
from repro.relational.algebra import join_all, project
from repro.relational.relation import Relation, RelationalDatabase

__all__ = ["ChainView", "DerivationChain"]


@dataclass(frozen=True)
class DerivationChain:
    """One join chain producing a view tuple.

    ``facts`` pairs each relation name with the base tuple taken from
    it, in chain order.
    """

    facts: tuple[tuple[str, tuple], ...]

    @property
    def fact_set(self) -> frozenset[tuple[str, tuple]]:
        return frozenset(self.facts)

    def __str__(self) -> str:
        return " . ".join(
            f"{name}<{', '.join(str(v) for v in row)}>"
            for name, row in self.facts
        )


class ChainView:
    """``name(first, last) = pi(r1 join r2 join ... join rk)``."""

    def __init__(self, name: str, relation_names: tuple[str, ...]) -> None:
        if not relation_names:
            raise SchemaError("a chain view needs at least one relation")
        self.name = name
        self.relation_names = tuple(relation_names)

    def _chain_relations(self, db: RelationalDatabase) -> list[Relation]:
        relations = [db.relation(name) for name in self.relation_names]
        for left, right in zip(relations, relations[1:]):
            shared = set(left.attributes) & set(right.attributes)
            if len(shared) != 1:
                raise SchemaError(
                    f"view {self.name!r}: {left.name} and {right.name} must "
                    f"share exactly one attribute, share {sorted(shared)}"
                )
        distinct = {a for r in relations for a in r.attributes}
        total = sum(len(r.attributes) for r in relations)
        if len(distinct) != total - (len(relations) - 1):
            raise SchemaError(
                f"view {self.name!r}: attributes must be distinct except "
                "for the shared attribute of each adjacent pair"
            )
        return relations

    def output_attributes(self, db: RelationalDatabase) -> tuple[str, str]:
        relations = self._chain_relations(db)
        first = relations[0]
        last = relations[-1]
        if len(relations) == 1:
            return (first.attributes[0], first.attributes[-1])
        start = next(
            a for a in first.attributes
            if a not in relations[1].attributes
        )
        end = next(
            a for a in reversed(last.attributes)
            if a not in relations[-2].attributes
        )
        return (start, end)

    def evaluate(self, db: RelationalDatabase) -> Relation:
        """The view's current extension."""
        relations = self._chain_relations(db)
        joined = join_all(relations, name=self.name)
        return project(joined, self.output_attributes(db), name=self.name)

    def chains_for(self, db: RelationalDatabase,
                   view_tuple: tuple) -> Iterator[DerivationChain]:
        """All derivation chains producing ``view_tuple``.

        Walks the chain left to right, matching on the single shared
        attribute between consecutive relations.
        """
        relations = self._chain_relations(db)
        first_attr, last_attr = self.output_attributes(db)
        start_value, end_value = view_tuple

        def extend(index: int, facts: tuple[tuple[str, tuple], ...],
                   bound: dict[str, object]) -> Iterator[DerivationChain]:
            if index == len(relations):
                if bound.get(last_attr) == end_value:
                    yield DerivationChain(facts)
                return
            relation = relations[index]
            for row in relation:
                values = dict(zip(relation.attributes, row))
                if any(
                    attribute in bound and bound[attribute] != value
                    for attribute, value in values.items()
                ):
                    continue
                yield from extend(
                    index + 1,
                    facts + ((relation.name, row),),
                    {**bound, **values},
                )

        yield from extend(0, (), {first_attr: start_value})
        # Note: the initial binding also filters the first relation's rows
        # through the generic "consistent with bound" check above; rows
        # whose first_attr differs from start_value are skipped.

    def __str__(self) -> str:
        chain = " join ".join(self.relation_names)
        return f"{self.name} = pi({chain})"
