"""WAL-shipping replication: primary/replica roles, commit modes,
epoch-fenced failover, lease-based leadership, and bounded-staleness
reads.

Layering (see docs/REPLICATION.md):

* :mod:`repro.replication.transport` — the carriers (in-process for
  tests and chaos, length-prefixed sockets for other processes);
* :mod:`repro.replication.replica` — the follower role, applying
  shipped v2 WAL records in sequence order onto a
  checkpoint-bootstrapped copy;
* :mod:`repro.replication.shipper` — the data plane reading record
  ranges out of the primary's :class:`repro.fdb.wal.UpdateLog`;
* :mod:`repro.replication.group` — the control plane: ``async`` /
  ``sync(k)`` / ``quorum`` commit modes, the monotone term fence,
  promotion, rejoin repair, catch-up and staleness-bounded reads;
* :mod:`repro.replication.lease` — leadership liveness: the
  quorum-renewed lease, heartbeat failure detection, and the
  coordinator that elects and promotes without an operator.
"""

from repro.replication.group import (
    CatchUpReport,
    CommitMode,
    PromotionReport,
    RejoinReport,
    ReplicationGroup,
)
from repro.replication.lease import (
    FailoverCoordinator,
    FailureDetector,
    LeaseClock,
    LeaseConfig,
    LeaseManager,
)
from repro.replication.replica import Replica
from repro.replication.shipper import (
    ReplicaLink,
    SnapshotNeeded,
    WalShipper,
)
from repro.replication.transport import (
    InProcessTransport,
    ReplicaServer,
    SocketTransport,
    Transport,
)

__all__ = [
    "CatchUpReport",
    "CommitMode",
    "FailoverCoordinator",
    "FailureDetector",
    "InProcessTransport",
    "LeaseClock",
    "LeaseConfig",
    "LeaseManager",
    "PromotionReport",
    "RejoinReport",
    "Replica",
    "ReplicaLink",
    "ReplicaServer",
    "ReplicationGroup",
    "SnapshotNeeded",
    "SocketTransport",
    "Transport",
    "WalShipper",
]
