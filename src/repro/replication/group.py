"""The control plane: commit modes, fencing, failover, catch-up.

A :class:`ReplicationGroup` sits between :class:`DatabaseService
<repro.service.service.DatabaseService>` and the :class:`WalShipper
<repro.replication.shipper.WalShipper>`:

* **Commit modes.** ``async`` acknowledges a commit as soon as it is
  durable on the primary; ``sync(k)`` blocks until ``k`` replicas
  acknowledge the commit's sequence number; ``quorum`` blocks until a
  majority of the group (primary included) holds it. On a missed quota
  the caller gets :exc:`ReplicationTimeout` — the op is durable and
  applied locally but was *not* acknowledged, and after a failover it
  may legitimately be absent.

* **Epoch fencing.** Every leadership change bumps a monotone ``term``
  stamped into subsequent WAL records. The primary's write path calls
  :meth:`check_primary` with the term token it was issued at attach;
  once the group has moved on, the check raises :exc:`StalePrimary`
  *before* the deposed writer can touch its log — split-brain is
  rejected at the door, not repaired after.

* **Failover.** :meth:`promote` polls the replicas and picks the one
  with the highest ``applied_seq``. Shipping is sequential per
  replica, so all replica prefixes are totally ordered and the
  longest prefix contains every sequence number any replica ever
  acknowledged — under ``sync(k>=1)``/``quorum`` that includes every
  op acknowledged to any caller, which is the no-acked-loss guarantee
  the chaos soak asserts, *provided every replica that might hold the
  longest prefix is reachable when promotion runs* (promoting while
  the freshest replica is partitioned away fences below its acked
  tail — see :meth:`promote`). The fence point (deposed term →
  highest surviving sequence) is recorded so a rejoining deposed
  primary can cut its unacknowledged tail back to the shared prefix;
  surviving links past the fence are re-bootstrapped by snapshot
  before they may ack in the new term.

* **Bounded-staleness reads.** :meth:`read` picks the freshest
  replica within ``max_lag_seq``/``max_lag_seconds`` and runs the
  callable against its copy; when nothing qualifies the caller gets
  :exc:`StalenessUnserved` (surfaced as a 503 via ``/health``).
"""

from __future__ import annotations

import json
import re
import threading
import time
from dataclasses import dataclass

from repro.errors import (
    ReplicaDiverged,
    ReplicationError,
    ReplicationTimeout,
    StalenessUnserved,
    StalePrimary,
)
from repro.fdb import persistence
from repro.obs.hooks import OBS
from repro.replication.replica import Replica
from repro.replication.shipper import (
    ReplicaLink,
    SnapshotNeeded,
    WalShipper,
)
from repro.replication.transport import InProcessTransport

__all__ = ["CommitMode", "ReplicationGroup", "PromotionReport",
           "CatchUpReport", "RejoinReport"]

_SYNC = re.compile(r"^sync\((\d+)\)$")


@dataclass(frozen=True)
class CommitMode:
    """Parsed commit mode: ``async`` | ``sync(k)`` | ``quorum``."""

    kind: str
    k: int = 0

    @classmethod
    def parse(cls, text: "CommitMode | str") -> "CommitMode":
        if isinstance(text, CommitMode):
            return text
        if text == "async":
            return cls("async")
        if text == "quorum":
            return cls("quorum")
        match = _SYNC.match(text)
        if match:
            k = int(match.group(1))
            if k < 1:
                raise ValueError("sync(k) requires k >= 1")
            return cls("sync", k)
        raise ValueError(
            f"unknown commit mode {text!r} "
            f"(expected 'async', 'sync(k)' or 'quorum')"
        )

    def required_acks(self, replicas: int) -> int:
        """Replica acks needed before a commit is acknowledged."""
        if self.kind == "async":
            return 0
        if self.kind == "sync":
            return self.k
        # quorum: majority of the whole group; the primary's own
        # durable copy counts as one vote.
        return (replicas + 1) // 2 + 1 - 1

    def __str__(self) -> str:
        return f"sync({self.k})" if self.kind == "sync" else self.kind


@dataclass(frozen=True)
class PromotionReport:
    """What one failover decided, JSON-ready via :meth:`as_dict`."""

    chosen: str
    applied_seq: int
    old_term: int
    new_term: int
    candidates: tuple[tuple[str, int], ...] = ()

    def as_dict(self) -> dict:
        return {
            "report": "promotion",
            "chosen": self.chosen,
            "applied_seq": self.applied_seq,
            "old_term": self.old_term,
            "new_term": self.new_term,
            "candidates": [list(item) for item in self.candidates],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PromotionReport":
        return cls(
            chosen=data["chosen"],
            applied_seq=data["applied_seq"],
            old_term=data["old_term"],
            new_term=data["new_term"],
            candidates=tuple(
                (name, seq) for name, seq in data.get("candidates", ())
            ),
        )

    def __str__(self) -> str:
        return (f"promoted {self.chosen} at seq {self.applied_seq} "
                f"(term {self.old_term} -> {self.new_term})")


@dataclass(frozen=True)
class CatchUpReport:
    """How one replica was brought up to date."""

    replica: str
    mode: str  # "delta" | "snapshot" | "none"
    from_seq: int
    to_seq: int
    term: int
    snapshot_wal_applied: int | None = None

    def as_dict(self) -> dict:
        return {
            "report": "catch_up",
            "replica": self.replica,
            "mode": self.mode,
            "from_seq": self.from_seq,
            "to_seq": self.to_seq,
            "term": self.term,
            "snapshot_wal_applied": self.snapshot_wal_applied,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CatchUpReport":
        return cls(
            replica=data["replica"],
            mode=data["mode"],
            from_seq=data["from_seq"],
            to_seq=data["to_seq"],
            term=data["term"],
            snapshot_wal_applied=data.get("snapshot_wal_applied"),
        )


@dataclass(frozen=True)
class RejoinReport:
    """How a deposed primary was repaired back into the group."""

    replica: str
    old_term: int
    fence_seq: int
    records_dropped: int
    torn_tail_discarded: bool
    rebootstrapped: bool
    catch_up: CatchUpReport

    def as_dict(self) -> dict:
        return {
            "report": "rejoin",
            "replica": self.replica,
            "old_term": self.old_term,
            "fence_seq": self.fence_seq,
            "records_dropped": self.records_dropped,
            "torn_tail_discarded": self.torn_tail_discarded,
            "rebootstrapped": self.rebootstrapped,
            "catch_up": self.catch_up.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RejoinReport":
        return cls(
            replica=data["replica"],
            old_term=data["old_term"],
            fence_seq=data["fence_seq"],
            records_dropped=data["records_dropped"],
            torn_tail_discarded=data["torn_tail_discarded"],
            rebootstrapped=data["rebootstrapped"],
            catch_up=CatchUpReport.from_dict(data["catch_up"]),
        )


class ReplicationGroup:
    """One primary, N replicas, a commit mode, and a monotone term."""

    def __init__(self, mode: CommitMode | str = "async", *,
                 ack_timeout: float = 5.0,
                 retry_interval: float = 0.02,
                 journal: bool = False) -> None:
        self.mode = CommitMode.parse(mode)
        self.ack_timeout = ack_timeout
        self.retry_interval = retry_interval
        self.journal_enabled = journal
        self.term = 0
        self.primary_name = "primary"
        self.shipper: WalShipper | None = None
        # Set by the service: a zero-arg callable returning a context
        # manager that holds the write path still while a consistent
        # snapshot is dumped for catch-up. Without one, snapshots are
        # taken unguarded (single-threaded harnesses).
        self.exclusive = None
        self._logged = None
        self._lease = None  # LeaseManager once enable_lease() ran
        self._replicas: dict[str, Replica] = {}
        self._fences: dict[int, int] = {}  # deposed term -> fence seq
        self._pending_term: int | None = None
        self._lock = threading.RLock()

    # -- leadership ---------------------------------------------------------

    def attach_primary(self, logged, *, node: str = "primary") -> int:
        """Bind a :class:`LoggedDatabase` as the group's primary.

        Bumps the term (the first attach is term 1) unless a
        :meth:`promote` already claimed the next term for this attach.
        Returns the term token the primary's write path must present
        to :meth:`check_primary` on every commit. Surviving replica
        links and the shipped-stream journal carry over from the
        previous leadership.
        """
        with self._lock:
            if self._pending_term is not None:
                term = self._pending_term
                self._pending_term = None
            else:
                term = self.term + 1
            self.term = term
            self.primary_name = node
            self._logged = logged
            logged.log.term = term
            old = self.shipper
            self.shipper = WalShipper(
                logged.log, term=term,
                journal=self.journal_enabled,
            )
            if old is not None:
                for link in old.links():
                    self.shipper._links[link.name] = link
                if old._journal is not None:
                    self.shipper._journal = old._journal
                    self.shipper._journal_through = old._journal_through
            if self._lease is not None:
                self.shipper.lease = self._lease
                self._lease.grant(term)
            if OBS.enabled:
                OBS.gauge("replication.term", term)
                OBS.action("replication.primary_attached",
                           node=node, term=term)
            return term

    def check_primary(self, token: int) -> None:
        """The epoch fence: raise :exc:`StalePrimary` unless ``token``
        is the group's current term *and* (with a lease enabled) a
        quorum confirmed this leadership inside the lease's validity
        window. Called on the primary's write path *before* the WAL
        append — a deposed or leaderless primary never reaches its
        log."""
        with self._lock:
            current = self.term
            deposed = (token != current or self._pending_term is not None)
            lease = self._lease
        if deposed:
            if OBS.enabled:
                OBS.inc("replication.fenced_writes")
                OBS.action("replication.write_fenced",
                           writer_term=token, group_term=current)
            raise StalePrimary(token, current)
        if lease is not None:
            lease.check()  # raises LeaseExpired once the lease lapsed

    def enable_lease(self, config=None, *, clock=None):
        """Turn on lease-based leadership for this group: subsequent
        shipper exchanges carry heartbeat stamps and count as renewal
        votes, and :meth:`check_primary` additionally self-demotes a
        primary whose lease lapsed. Returns the :class:`LeaseManager
        <repro.replication.lease.LeaseManager>` (start its renewer for
        idle-primary heartbeats)."""
        from repro.replication.lease import LeaseConfig, LeaseManager
        with self._lock:
            if self._lease is None:
                self._lease = LeaseManager(
                    self, config or LeaseConfig(), clock=clock
                )
            if self.shipper is not None:
                self.shipper.lease = self._lease
            if self._logged is not None:
                self._lease.grant(self.term)
            return self._lease

    @property
    def lease(self):
        """The group's :class:`LeaseManager`, or ``None``."""
        return self._lease

    def leaderless(self) -> bool:
        """True when lease-based leadership is on and no node can
        currently prove leadership — the service layer fails writes
        fast (:exc:`LeaseExpired` is a :exc:`ServiceReadOnly`) instead
        of queueing them behind locks."""
        lease = self._lease
        return lease is not None and not lease.held()

    # -- membership ---------------------------------------------------------

    def add_replica(self, name: str,
                    target: "Replica | object") -> CatchUpReport:
        """Link a replica (a local :class:`Replica` or any transport)
        and bootstrap it from the primary's current state."""
        with self._lock:
            shipper = self._require_shipper()
            if isinstance(target, Replica):
                self._replicas[name] = target
                transport = InProcessTransport(target.handle, name=name)
            else:
                transport = target
            shipper.add(name, transport)
            if OBS.enabled:
                OBS.action("replication.replica_added", replica=name)
        return self.catch_up(name)

    def remove_replica(self, name: str) -> None:
        with self._lock:
            if self.shipper is not None:
                link = self.shipper.remove(name)
                if link is not None and OBS.enabled:
                    OBS.action("replication.replica_removed",
                               replica=name)
            self._replicas.pop(name, None)

    def replica(self, name: str) -> Replica:
        with self._lock:
            try:
                return self._replicas[name]
            except KeyError:
                raise ReplicationError(
                    f"no local replica named {name!r}"
                ) from None

    def replica_names(self) -> list[str]:
        with self._lock:
            shipper = self.shipper
            return [link.name for link in shipper.links()] \
                if shipper else []

    # -- the commit path ----------------------------------------------------

    def note_commit(self, seq: int) -> None:
        """Journal the committed records up to ``seq`` while the
        caller still holds the write token — before any checkpoint
        can fold them out of the log. Shipping happens later, in
        :meth:`on_commit`, outside the caller's locks."""
        shipper = self.shipper
        if shipper is not None:
            shipper.journal_through(seq)

    def on_commit(self, seq: int) -> dict:
        """Ship the commit at ``seq`` and wait out the commit mode.

        Always journals and attempts one shipping pass (async mode
        keeps replicas warm without blocking); under ``sync(k)`` /
        ``quorum`` it retries lagging replicas until the ack quota is
        met or ``ack_timeout`` expires (:exc:`ReplicationTimeout`).
        """
        shipper = self._require_shipper()
        shipper.journal_through(seq)
        links = shipper.links()
        needed = self.mode.required_acks(len(links))
        deadline = time.monotonic() + self.ack_timeout
        first_pass = True
        # Commit-to-ack round trips, per replica: which links still
        # owe an ack for this seq, timed from here. Telemetry only.
        track = OBS.enabled
        ack_clock = time.perf_counter() if track else 0.0
        awaiting = ({link.name for link in links
                     if link.acked_seq < seq} if track else set())

        def _note_acked(link: ReplicaLink) -> None:
            if track and link.name in awaiting:
                awaiting.discard(link.name)
                OBS.observe_log(
                    f"replication.commit.ack_seconds.{link.name}",
                    time.perf_counter() - ack_clock,
                )

        while True:
            acked = 0
            for link in links:
                if link.acked_seq >= seq:
                    acked += 1
                    _note_acked(link)
                    continue
                if not (first_pass or needed):
                    continue
                try:
                    shipper.ship(link, seq)
                except SnapshotNeeded:
                    try:
                        self._snapshot_catch_up(shipper, link)
                        shipper.ship(link, seq)
                    except (ConnectionError, TimeoutError,
                            ReplicationError):
                        continue
                except ReplicaDiverged:
                    raise
                except (ConnectionError, TimeoutError,
                        ReplicationError):
                    continue
                if link.acked_seq >= seq:
                    acked += 1
                    _note_acked(link)
            self._refresh_gauges()
            if acked >= needed:
                return {"seq": seq, "acks": acked,
                        "mode": str(self.mode)}
            first_pass = False
            if time.monotonic() >= deadline:
                if OBS.enabled:
                    OBS.inc("replication.ack_timeouts")
                    OBS.action("replication.ack_timeout", seq=seq,
                               acks=acked, needed=needed,
                               mode=str(self.mode))
                raise ReplicationTimeout(
                    f"commit seq {seq} got {acked}/{needed} replica "
                    f"acks within {self.ack_timeout}s ({self.mode})"
                )
            time.sleep(self.retry_interval)

    def sync_all(self, timeout: float | None = None) -> dict:
        """Drain every reachable replica up to the primary's last
        sequence number (test/soak settling, not a commit-path API)."""
        shipper = self._require_shipper()
        target = shipper.log.last_seq()
        shipper.journal_through(target)
        deadline = time.monotonic() + (timeout or self.ack_timeout)
        lagging = {link.name for link in shipper.links()}
        while lagging:
            for link in shipper.links():
                if link.name not in lagging:
                    continue
                try:
                    shipper.ship(link, target)
                except SnapshotNeeded:
                    try:
                        self._snapshot_catch_up(shipper, link)
                        shipper.ship(link, target)
                    except (ConnectionError, TimeoutError,
                            ReplicationError):
                        continue
                except (ConnectionError, TimeoutError,
                        ReplicationError):
                    continue
                if link.acked_seq >= target:
                    lagging.discard(link.name)
            if not lagging or time.monotonic() >= deadline:
                break
            time.sleep(self.retry_interval)
        self._refresh_gauges()
        return {"target": target, "lagging": sorted(lagging)}

    # -- catch-up -----------------------------------------------------------

    def catch_up(self, name: str) -> CatchUpReport:
        """Bring one replica up to the primary's last sequence number,
        by delta shipping when its position is still in the log and by
        checkpoint + tail otherwise."""
        shipper = self._require_shipper()
        link = shipper.link(name)
        from_seq = link.acked_seq
        target = shipper.log.last_seq()
        mode = "none"
        snapshot_applied: int | None = None
        if link.needs_snapshot or from_seq < shipper.log.shippable_floor():
            snapshot_applied = self._snapshot_catch_up(shipper, link)
            mode = "snapshot"
            target = shipper.log.last_seq()
        if link.acked_seq < target:
            shipper.ship(link, target)
            if mode == "none":
                mode = "delta"
        report = CatchUpReport(
            replica=name, mode=mode, from_seq=from_seq,
            to_seq=link.acked_seq, term=self.term,
            snapshot_wal_applied=snapshot_applied,
        )
        if OBS.enabled:
            OBS.action("replication.catch_up", **report.as_dict())
        self._refresh_gauges()
        return report

    def _snapshot_catch_up(self, shipper: WalShipper,
                           link: ReplicaLink) -> int:
        """Dump a consistent snapshot of the primary and install it on
        the replica. The dump runs under the service's exclusive write
        guard when one is wired in, so no commit lands mid-dump."""
        logged = self._logged
        if logged is None:
            raise ReplicationError("no primary attached")
        guard = self.exclusive() if self.exclusive is not None else None
        if guard is not None:
            with guard:
                wal_applied = logged.log.last_seq()
                text = persistence.dumps(
                    logged.db, wal_applied=wal_applied, term=self.term
                )
        else:
            wal_applied = logged.log.last_seq()
            text = persistence.dumps(
                logged.db, wal_applied=wal_applied, term=self.term
            )
        shipper.ship_snapshot(link, text, wal_applied)
        if OBS.enabled:
            OBS.inc("replication.snapshot.catch_ups")
            OBS.action("replication.snapshot_bootstrap",
                       replica=link.name, wal_applied=wal_applied,
                       term=self.term, bytes_raw=len(text))
        return wal_applied

    # -- failover -----------------------------------------------------------

    def promote(self, name: str | None = None) -> PromotionReport:
        """Fail over: depose the current primary and pick the new one.

        Polls every reachable replica for its ``applied_seq`` and (by
        default) chooses the highest — the longest applied prefix,
        which contains every acknowledged commit. The chosen replica
        leaves the follower set; the caller builds the new primary on
        its working directory and calls :meth:`attach_primary`, which
        consumes the term this promotion claimed. The deposed term's
        fence point is recorded for :meth:`rejoin`, surviving links
        have their acks capped at the fence, and any link that could
        not be polled — or whose applied prefix exceeds the fence —
        is marked for snapshot re-bootstrap so a divergent old-term
        tail can never ack new-term commits.

        **Partition caveat.** Only *reachable* replicas are
        candidates. If the sole holder of an acked commit is
        unreachable when promotion runs, the new history fences below
        that commit and the ack guarantee is violated for it — the
        same trade every leader election without a quorum
        intersection makes. Under ``quorum``/``sync(k)`` with healthy
        majorities this cannot happen; operators promoting into a
        partition accept it.
        """
        with self._lock:
            shipper = self._require_shipper()
            candidates: list[tuple[str, int]] = []
            statuses: dict[str, dict] = {}
            for link in shipper.links():
                status = shipper.poll_status(link)
                if status is None:
                    continue
                statuses[link.name] = status
                candidates.append((link.name, status["applied_seq"]))
            if not candidates:
                raise ReplicationError(
                    "no reachable replica to promote"
                )
            if name is None:
                chosen, applied = max(candidates,
                                      key=lambda item: item[1])
            else:
                by_name = dict(candidates)
                if name not in by_name:
                    raise ReplicationError(
                        f"replica {name!r} is not reachable for "
                        f"promotion"
                    )
                chosen, applied = name, by_name[name]
            old_term = self.term
            new_term = old_term + 1
            self._fences[old_term] = applied
            self._pending_term = new_term
            self.term = new_term
            if self._lease is not None:
                # The deposed term's lease dies with the promotion —
                # the polls this election just ran (and any late acks)
                # must not renew it; attach_primary re-grants for the
                # new term.
                self._lease.revoke()
            shipper.remove(chosen)
            # Surviving links must not carry acks — or history — past
            # the fence into the new term. A replica whose applied
            # prefix exceeds the fence (it outran the chosen one
            # before a partition cut it off) holds old-term records
            # at sequence numbers the new history will reuse with
            # different contents; leaving its ack standing would let
            # on_commit count never-shipped new-term records as
            # replicated, and its divergent tail would never be
            # repaired. Cap every carried ack at the fence, and force
            # any link that sits past it — or that we could not poll
            # at all — through snapshot re-bootstrap, which truncates
            # its local log before it can ack anything in the new
            # term.
            for link in shipper.links():
                status = statuses.get(link.name)
                if (status is None or status.get("diverged")
                        or status["applied_seq"] > applied):
                    link.needs_snapshot = True
                link.acked_seq = min(link.acked_seq, applied)
            # Lost-tail hygiene: the shipped-stream journal must not
            # carry sequence numbers the new history will reuse.
            if shipper._journal is not None:
                shipper._journal = [
                    (seq, line) for seq, line in shipper._journal
                    if seq <= applied
                ]
                shipper._journal_through = min(
                    shipper._journal_through, applied
                )
            report = PromotionReport(
                chosen=chosen, applied_seq=applied,
                old_term=old_term, new_term=new_term,
                candidates=tuple(sorted(candidates)),
            )
            # Per-replica ack state at the instant the fence fell
            # (post-capping) — the audit timeline's evidence for which
            # acks survived into the new term and who must
            # re-bootstrap. Serialized here, while the lock still
            # guards the links.
            ack_state = {
                link.name: {
                    "acked_seq": link.acked_seq,
                    "acked_term": link.acked_term,
                    "needs_snapshot": link.needs_snapshot,
                }
                for link in shipper.links()
            }
        if OBS.enabled:
            OBS.inc("replication.promotions")
            OBS.gauge("replication.term", new_term)
            OBS.action("replication.fence", old_term=old_term,
                       new_term=new_term, fence_seq=applied,
                       chosen=chosen,
                       acks=json.dumps(ack_state, sort_keys=True))
            OBS.action("replication.promote", chosen=chosen,
                       applied_seq=applied, old_term=old_term,
                       new_term=new_term)
        return report

    def fence_seq(self, old_term: int) -> int:
        """Where the history of a deposed term was cut."""
        with self._lock:
            try:
                return self._fences[old_term]
            except KeyError:
                raise ReplicationError(
                    f"term {old_term} was never deposed here"
                ) from None

    def rejoin(self, replica: Replica, old_term: int) -> RejoinReport:
        """Repair a deposed primary's working directory back onto the
        shared prefix and re-admit it as a follower.

        The repair order is the tentpole's safety argument in code:
        drop a torn final line (the mid-write crash artifact), then
        truncate every record past the fence point (committed on the
        old primary, acknowledged by nobody), then recover locally and
        catch up from the new primary. If the old primary checkpointed
        its unacknowledged tail into its snapshot before dying, the
        local state is unrepairable by truncation and the node
        re-bootstraps from the new primary's checkpoint instead.
        """
        fence = self.fence_seq(old_term)
        from repro.fdb.wal import UpdateLog
        log = UpdateLog(replica.wal_path, fsync=replica.fsync)
        torn = log.discard_torn_tail()
        dropped = log.truncate_to(fence)
        rebootstrap = False
        if replica.snapshot_path.exists():
            _, meta = persistence.load_with_meta(replica.snapshot_path)
            if (meta.get("wal_applied") or 0) > fence:
                rebootstrap = True
        if rebootstrap:
            replica.db = None
            replica.applied_seq = 0
            replica.crashed = False
            replica.diverged = False
        else:
            replica.restart()
            replica.applied_seq = min(replica.applied_seq, fence)
        replica.term = max(replica.term, old_term)
        with self._lock:
            shipper = self._require_shipper()
            self._replicas[replica.name] = replica
            link = shipper.add(
                replica.name,
                InProcessTransport(replica.handle, name=replica.name),
            )
            link.needs_snapshot = rebootstrap or replica.db is None
            if not link.needs_snapshot:
                link.acked_seq = replica.applied_seq
        catch_up = self.catch_up(replica.name)
        report = RejoinReport(
            replica=replica.name, old_term=old_term, fence_seq=fence,
            records_dropped=dropped, torn_tail_discarded=torn,
            rebootstrapped=rebootstrap, catch_up=catch_up,
        )
        if OBS.enabled:
            OBS.inc("replication.rejoins")
            OBS.action("replication.rejoin", replica=replica.name,
                       old_term=old_term, fence_seq=fence,
                       records_dropped=dropped,
                       rebootstrapped=rebootstrap)
        return report

    # -- reads --------------------------------------------------------------

    def read(self, fn, *, max_lag_seq: int | None = None,
             max_lag_seconds: float | None = None):
        """Serve a read from the freshest replica within the staleness
        bound; :exc:`StalenessUnserved` when none qualifies.

        Only in-process :class:`Replica` objects can serve reads from
        this node; a group whose replicas are all linked over remote
        transports raises :exc:`ReplicationError` (route reads to the
        replica nodes) rather than misreporting the setup as
        staleness."""
        lags = self.lag()
        eligible = sorted(
            (info["lag_seq"], name) for name, info in lags.items()
            if (max_lag_seq is None or info["lag_seq"] <= max_lag_seq)
            and (max_lag_seconds is None
                 or info["lag_seconds"] <= max_lag_seconds)
        )
        for _, name in eligible:
            with self._lock:
                replica = self._replicas.get(name)
            if replica is None:
                continue  # remote replica: reads go to that node
            try:
                value = replica.read(fn)
            except ReplicationError:
                continue
            if OBS.enabled:
                OBS.inc("replication.replica_reads")
            return value
        with self._lock:
            have_local = bool(self._replicas)
        if lags and not have_local:
            raise ReplicationError(
                "no local replicas can serve reads: every replica is "
                "linked over a remote transport — route reads to the "
                "replica nodes themselves"
            )
        if OBS.enabled:
            OBS.inc("replication.reads_unserved")
        raise StalenessUnserved(
            f"no replica within max_lag_seq={max_lag_seq} "
            f"max_lag_seconds={max_lag_seconds} "
            f"(lags: { {n: i['lag_seq'] for n, i in lags.items()} })"
        )

    # -- health -------------------------------------------------------------

    def lag(self) -> dict:
        """Per-replica lag in sequence numbers and seconds, refreshing
        the ``replication.lag.{seq,seconds}.<replica>`` gauges."""
        shipper = self.shipper
        if shipper is None:
            return {}
        head = shipper.log.last_seq()
        now = time.monotonic()
        out: dict[str, dict] = {}
        for link in shipper.links():
            lag_seq = max(0, head - link.acked_seq)
            lag_seconds = 0.0 if lag_seq == 0 \
                else max(0.0, now - link.last_progress)
            out[link.name] = {
                "acked_seq": link.acked_seq,
                "lag_seq": lag_seq,
                "lag_seconds": lag_seconds,
                "errors": link.errors,
                "last_error": link.last_error,
            }
        if OBS.enabled:
            for name, info in out.items():
                OBS.gauge(f"replication.lag.seq.{name}",
                          info["lag_seq"])
                OBS.gauge(f"replication.lag.seconds.{name}",
                          round(info["lag_seconds"], 6))
                # Gauges hold only the latest level; the histogram
                # keeps the distribution of observed staleness ages.
                OBS.observe_log(
                    f"replication.lag.age_seconds.{name}",
                    info["lag_seconds"],
                )
        return out

    def worst_lag_seq(self) -> float | None:
        """The worst replica's applied-seq lag right now, or ``None``
        with no links — the level the ``replication.lag`` SLO probes."""
        lags = self.lag()
        if not lags:
            return None
        return float(max(info["lag_seq"] for info in lags.values()))

    def pipeline_stats(self) -> dict:
        """Per-replica commit-pipeline latency breakdown, folded from
        the stage log histograms (``{}`` when telemetry is off).

        Stages per replica: ``ship_rtt`` (one append exchange),
        ``wal_append``/``apply`` (replica-side phases), ``commit_ack``
        (commit to that replica's ack, the end-to-end stage a commit
        mode waits on).
        """
        if not OBS.enabled:
            return {}
        stages = {
            "ship_rtt": "replication.ship.rtt_seconds.",
            "wal_append": "replication.pipeline.wal_append_seconds.",
            "apply": "replication.pipeline.apply_seconds.",
            "commit_ack": "replication.commit.ack_seconds.",
        }
        histograms = OBS.metrics.snapshot()["histograms"]
        out: dict[str, dict] = {}
        for stage, prefix in stages.items():
            for name, data in histograms.items():
                if not name.startswith(prefix):
                    continue
                replica = name[len(prefix):]
                out.setdefault(replica, {})[stage] = {
                    "count": data["count"],
                    "p50": data["p50"],
                    "p95": data["p95"],
                    "p99": data["p99"],
                }
        return out

    def _refresh_gauges(self) -> None:
        if OBS.enabled:
            self.lag()

    def health(self, *, max_lag_seq: int | None = None,
               max_lag_seconds: float | None = None) -> dict:
        """One JSON-ready view for ``/health`` and ``stats()``:
        ``servable`` is whether at least one replica sits within the
        given staleness bound (no bound: any linked replica at all)."""
        lags = self.lag()
        servable = any(
            (max_lag_seq is None or info["lag_seq"] <= max_lag_seq)
            and (max_lag_seconds is None
                 or info["lag_seconds"] <= max_lag_seconds)
            for info in lags.values()
        )
        out = {
            "role": "primary",
            "node": self.primary_name,
            "term": self.term,
            "mode": str(self.mode),
            "replicas": lags,
            "min_lag_seq": min(
                (info["lag_seq"] for info in lags.values()),
                default=None,
            ),
            "servable": servable,
            "pipeline": self.pipeline_stats(),
        }
        if self._lease is not None:
            out["lease"] = self._lease.status()
        return out

    def _require_shipper(self) -> WalShipper:
        shipper = self.shipper
        if shipper is None:
            raise ReplicationError(
                "no primary attached to the replication group"
            )
        return shipper
