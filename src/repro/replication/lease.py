"""Lease-based leadership: heartbeats, failure detection, election.

PR 6–8 made failover *safe* (the term fence in
:meth:`ReplicationGroup.promote` guarantees no acked write is lost or
reordered) but not *automatic*: someone had to notice the primary was
dead and call ``promote()``. This module closes that loop with a
wall-clock-free lease protocol:

* **The lease** (:class:`LeaseManager`, primary side). The primary's
  claim to leadership is a sliding validity window anchored at its
  *quorum renewal watermark* — the instant, on the primary's own
  monotonic clock, at which a majority of the group last confirmed it.
  Every successful shipping or status exchange doubles as a heartbeat
  (the frame carries a ``lease`` stamp and the reply counts as a
  renewal vote, timed from *before* the request went out — the
  conservative end), and a background renewer keeps beats flowing when
  no writes do. The primary considers itself leader for
  ``duration - margin`` seconds past the watermark; once it cannot
  re-confirm against a quorum it **self-demotes**: the group's
  :meth:`check_primary <repro.replication.group.ReplicationGroup.\
check_primary>` raises :exc:`LeaseExpired` (a :exc:`StalePrimary`)
  *before* any WAL append, so a partitioned primary stops writing on
  its own — split-brain is structurally impossible, not merely
  detected at rejoin.

* **Failure detection** (:class:`FailureDetector`, replica side). Each
  replica tracks the last heartbeat it observed, on *its own*
  monotonic clock, and declares the lease expired only after
  ``duration + 2 * margin`` seconds of silence.

* **The safety argument.** Monotonic clocks do not share an epoch and
  may drift; ``margin`` bounds the tolerated per-node error. The
  primary stops writing ``duration - margin`` after its watermark; a
  replica's detector fires no earlier than ``duration + 2 * margin``
  after it observed a beat that was sent *at or after* that watermark.
  Even with the primary's clock running fast by ``margin`` and the
  replica's slow by ``margin`` (and heartbeat delivery latency only
  *postpones* detection — the safe direction), a real-time gap of at
  least ``margin`` separates the old leader's last possible write from
  the earliest election. The term fence then makes the ordering
  permanent.

* **Election** (:class:`FailoverCoordinator`). When a majority of the
  full group (``n`` replicas + the presumed-dead primary) reports
  expiry, the coordinator deterministically elects the reachable
  replica with the highest ``applied_seq`` (lexicographically smallest
  name on ties) — and only if enough candidates are reachable that the
  candidate set must intersect the commit mode's ack quota, so the
  longest acked prefix is always in the running (this closes the PR 6
  partition caveat for automatic failover). It then drives the
  *existing* :meth:`promote` machinery: term fence, ack capping and
  snapshot re-bootstrap rules are reused, not reimplemented.

Fault points: ``repl.lease.clock`` lets :class:`ClockSkewFault
<repro.faults.registry.ClockSkewFault>` inject per-node drift into
every clock read; ``repl.lease.heartbeat`` lets
:class:`HeartbeatDropFault <repro.faults.registry.HeartbeatDropFault>`
drop dedicated renewal exchanges.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import LeaseExpired, ReplicationError
from repro.faults.registry import FAULTS
from repro.obs.hooks import OBS

__all__ = ["LeaseConfig", "LeaseClock", "LeaseManager",
           "FailureDetector", "FailoverCoordinator"]

FAULTS.register(
    "repl.lease.clock",
    "LeaseClock read: every monotonic clock sample a lease participant "
    "takes (ClockSkewFault adds per-node drift here)",
)
FAULTS.register(
    "repl.lease.heartbeat",
    "LeaseManager renewal: before a dedicated heartbeat exchange goes "
    "out (HeartbeatDropFault drops it)",
)


@dataclass(frozen=True)
class LeaseConfig:
    """Timing contract shared by every lease participant.

    ``margin`` is the tolerated per-node monotonic clock error: the
    primary treats its lease as valid for ``duration - margin`` past
    the quorum watermark, while a replica's detector waits
    ``duration + 2 * margin`` past the last observed beat — the
    asymmetry is what keeps the two windows apart under worst-case
    opposite drift (see the module docstring).
    """

    duration: float = 1.5
    margin: float = 0.25
    renew_interval: float = 0.3
    check_interval: float = 0.05
    # Operator override for the election vote quota (None = majority
    # of the full group, the safe default; lowering it trades the
    # split-brain-free guarantee for liveness in tiny groups).
    election_votes: int | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("lease duration must be positive")
        if self.margin < 0:
            raise ValueError("lease margin cannot be negative")
        if self.margin * 2 >= self.duration:
            raise ValueError(
                f"lease margin {self.margin} leaves no validity window "
                f"(need duration > 2 * margin, got duration "
                f"{self.duration})"
            )
        if self.renew_interval >= self.duration - self.margin:
            raise ValueError(
                "renew_interval must fit inside the primary's validity "
                f"window ({self.duration - self.margin:.3f}s)"
            )

    @property
    def primary_validity(self) -> float:
        """How long past the quorum watermark the primary may write."""
        return self.duration - self.margin

    @property
    def detector_horizon(self) -> float:
        """How long a replica waits past the last observed beat."""
        return self.duration + 2 * self.margin


class LeaseClock:
    """A per-node monotonic clock whose reads pass through the
    ``repl.lease.clock`` fault point, so chaos runs can skew any one
    participant's notion of elapsed time without touching the others.
    The armed :class:`ClockSkewFault` writes its drift into the
    ``skew`` sink the clock passes along."""

    def __init__(self, node: str, base=time.monotonic) -> None:
        self.node = node
        self._base = base

    def __call__(self) -> float:
        skew = [0.0]
        FAULTS.fire("repl.lease.clock", node=self.node, skew=skew)
        return self._base() + skew[0]


class LeaseManager:
    """The primary's side of the lease: quorum-renewed, self-demoting.

    Renewal votes arrive two ways — piggybacked on every successful
    shipper exchange (:meth:`note_ack`, called by the data plane) and
    from the background renewer thread's dedicated status beats
    (:meth:`renew_once`), which keep the lease alive on an idle
    primary. Each vote is timestamped *before* its request went out,
    so a slow round-trip shortens the lease rather than stretching it.
    """

    def __init__(self, group, config: LeaseConfig | None = None, *,
                 clock=None) -> None:
        self.group = group
        self.config = config or LeaseConfig()
        self.clock = clock or LeaseClock(group.primary_name)
        self._lock = threading.Lock()
        self._granted: float | None = None
        self._term = 0
        self._acks: dict[str, float] = {}
        self._lapsed = False          # current lapse episode noted?
        self._renew_logged_term = 0   # first renewal per term is logged
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- the lease window ---------------------------------------------------

    def grant(self, term: int) -> None:
        """Anchor a fresh lease for ``term`` (called by
        ``attach_primary``): the grant instant is the first watermark,
        so a new primary gets one full validity window to start
        collecting renewals."""
        if isinstance(self.clock, LeaseClock):
            # The lease moves with the leadership: clock reads (and
            # any injected skew) are attributed to the node that now
            # holds it, which may differ from the node at enable time.
            self.clock.node = self.group.primary_name
        now = self.clock()
        with self._lock:
            self._granted = now
            self._term = term
            self._acks.clear()
            self._lapsed = False
        if OBS.enabled:
            OBS.action("replication.lease_granted",
                       node=self.group.primary_name, term=term,
                       duration=self.config.duration,
                       margin=self.config.margin)
        self._refresh_gauges(now)

    def revoke(self) -> None:
        """Invalidate the current grant (called by ``promote``): the
        leadership has moved on, so *nobody* holds the lease until the
        next ``attach_primary`` re-grants it — in particular the
        status polls the promotion itself sends must not count as
        renewal votes for the deposed term."""
        now = self.clock()
        with self._lock:
            self._granted = None
            self._acks.clear()
            self._lapsed = True
        if OBS.enabled:
            OBS.gauge("replication.lease.held", 0)
        self._refresh_gauges(now)

    def note_ack(self, name: str, started: float) -> None:
        """One replica confirmed us; ``started`` is the clock reading
        taken before its request went out."""
        recovered = False
        with self._lock:
            if self._granted is None:
                return
            if started > self._acks.get(name, float("-inf")):
                self._acks[name] = started
            if self._lapsed and self._held_locked(self.clock()):
                # A quorum came back before any election: the lease
                # resumes under the same term, no fence needed.
                self._lapsed = False
                recovered = True
        if OBS.enabled:
            OBS.inc("replication.lease.heartbeats")
            if recovered:
                OBS.action("replication.lease_renewed",
                           term=self._term, recovered=True,
                           acks=self.ack_count())

    def needed_acks(self) -> int:
        """Renewal votes required: a majority of the full group (the
        primary's own vote included), i.e. ``(n + 1) // 2`` of ``n``
        linked replicas. A solo primary (no links) never demotes."""
        shipper = self.group.shipper
        n = len(shipper.links()) if shipper is not None else 0
        return (n + 1) // 2

    def ack_count(self) -> int:
        with self._lock:
            return len(self._acks)

    def watermark(self) -> float | None:
        """The instant a quorum last confirmed this leadership (on our
        clock), or ``None`` before any grant. With ``k`` votes needed
        the watermark is the ``k``-th freshest vote — the newest
        instant at which *all* of some quorum had already answered —
        floored at the grant instant."""
        with self._lock:
            return self._watermark_locked()

    def _watermark_locked(self) -> float | None:
        if self._granted is None:
            return None
        k = self.needed_acks()
        if k == 0:
            return self.clock()
        times = sorted(self._acks.values(), reverse=True)
        if len(times) < k:
            return self._granted
        return max(self._granted, times[k - 1])

    def held(self, now: float | None = None) -> bool:
        with self._lock:
            return self._held_locked(now if now is not None
                                     else self.clock())

    def _held_locked(self, now: float) -> bool:
        mark = self._watermark_locked()
        if mark is None:
            return False
        return (now - mark) <= self.config.primary_validity

    def remaining(self, now: float | None = None) -> float:
        """Seconds of validity left (negative once lapsed)."""
        if now is None:
            now = self.clock()
        with self._lock:
            mark = self._watermark_locked()
        if mark is None:
            return float("-inf")
        return (mark + self.config.primary_validity) - now

    def check(self) -> None:
        """The self-demotion gate, called from ``check_primary`` on
        the write path *before* any WAL append: raise
        :exc:`LeaseExpired` unless a quorum confirmed this leadership
        within the validity window."""
        now = self.clock()
        with self._lock:
            mark = self._watermark_locked()
            held = mark is not None \
                and (now - mark) <= self.config.primary_validity
            term = self._term
            first = not self._lapsed and not held
            if first:
                self._lapsed = True
        if held:
            return
        age = float("inf") if mark is None else now - mark
        if OBS.enabled:
            OBS.inc("replication.lease.writes_refused")
            OBS.gauge("replication.lease.held", 0)
            if first:
                OBS.inc("replication.lease.expiries")
                OBS.action("replication.lease_expired", term=term,
                           age=round(age, 6),
                           needed_acks=self.needed_acks(),
                           acks=self.ack_count())
        raise LeaseExpired(term, age, self.config.primary_validity)

    # -- heartbeats ---------------------------------------------------------

    def heartbeat_frame(self) -> dict:
        """The ``lease`` stamp carried by every outbound frame."""
        return {
            "node": self.group.primary_name,
            "term": self.group.term,
            "duration": self.config.duration,
            "margin": self.config.margin,
        }

    def renew_once(self) -> int:
        """One dedicated heartbeat round: a status beat to every link.
        Returns how many replicas answered. Piggybacked renewals from
        live write traffic make most of these rounds redundant — they
        matter on an idle or entirely-partitioned primary."""
        shipper = self.group.shipper
        if shipper is None or self._granted is None:
            return 0
        frame = self.heartbeat_frame()
        acked = 0
        for link in shipper.links():
            started = self.clock()
            try:
                FAULTS.fire("repl.lease.heartbeat", replica=link.name)
                reply = link.transport.request(
                    {"type": "status", "lease": frame}
                )
            except (ConnectionError, TimeoutError, OSError) as exc:
                link.note_error(str(exc))
                if OBS.enabled:
                    OBS.inc("replication.lease.heartbeat_failures")
                continue
            if reply.get("ok"):
                self.note_ack(link.name, started)
                acked += 1
        now = self.clock()
        with self._lock:
            term = self._term
            log_renewal = (acked and term != self._renew_logged_term
                           and self._held_locked(now))
            if log_renewal:
                self._renew_logged_term = term
        if OBS.enabled:
            if acked:
                OBS.inc("replication.lease.renewals")
            if log_renewal:
                OBS.action("replication.lease_renewed", term=term,
                           acks=acked,
                           remaining=round(self.remaining(now), 6))
        self._refresh_gauges(now)
        return acked

    def start(self) -> None:
        """Run the background renewer at ``renew_interval``."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._renew_loop, name="lease-renewer", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
        self._thread = None

    def _renew_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.renew_once()
            except Exception:  # pragma: no cover - renewer never dies
                pass
            self._stop.wait(self.config.renew_interval)

    # -- surfacing ----------------------------------------------------------

    def status(self) -> dict:
        """JSON-ready lease view for ``health()`` / ``stats()``."""
        now = self.clock()
        with self._lock:
            granted = self._granted is not None
            term = self._term
            acks = len(self._acks)
        held = self.held(now)
        return {
            "enabled": True,
            "granted": granted,
            "held": held,
            "term": term,
            "remaining_seconds": round(self.remaining(now), 6)
            if granted else None,
            "needed_acks": self.needed_acks(),
            "acks": acks,
            "duration": self.config.duration,
            "margin": self.config.margin,
        }

    def _refresh_gauges(self, now: float) -> None:
        if not OBS.enabled:
            return
        OBS.gauge("replication.lease.held", 1 if self.held(now) else 0)
        remaining = self.remaining(now)
        if remaining != float("-inf"):
            OBS.gauge("replication.lease.remaining_seconds",
                      round(max(remaining, 0.0), 6))
        OBS.gauge("replication.lease.needed_acks", self.needed_acks())


class FailureDetector:
    """One replica's view of the primary's liveness, on its own clock.

    Construction counts as a hear (a replica that never receives a
    single beat still converges on expiry), and only beats stamped
    with the current-or-newer term reset the timer — a deposed
    primary's stale heartbeats cannot postpone an election.
    """

    def __init__(self, name: str, config: LeaseConfig | None = None, *,
                 clock=None) -> None:
        self.name = name
        self.config = config or LeaseConfig()
        self.clock = clock or LeaseClock(name)
        self._lock = threading.Lock()
        self._last_heard = self.clock()
        self._term = 0
        self._leader: str | None = None

    def observe(self, lease: dict) -> None:
        """Feed one observed ``lease`` frame stamp."""
        try:
            term = int(lease.get("term", 0))
        except (TypeError, ValueError):
            return
        with self._lock:
            if term >= self._term:
                self._term = term
                self._leader = lease.get("node")
                self._last_heard = self.clock()

    def reset(self) -> None:
        """Restart the silence timer (a just-completed election is
        itself evidence of live leadership)."""
        with self._lock:
            self._last_heard = self.clock()

    def age(self, now: float | None = None) -> float:
        if now is None:
            now = self.clock()
        with self._lock:
            return now - self._last_heard

    def expired(self, now: float | None = None) -> bool:
        return self.age(now) > self.config.detector_horizon

    @property
    def term(self) -> int:
        with self._lock:
            return self._term

    @property
    def leader(self) -> str | None:
        with self._lock:
            return self._leader

    def status(self) -> dict:
        age = self.age()
        return {
            "replica": self.name,
            "age": round(age, 6),
            "expired": age > self.config.detector_horizon,
            "term": self.term,
            "leader": self.leader,
        }


class FailoverCoordinator:
    """Watches the replicas' failure detectors and, on quorum expiry,
    runs the deterministic election and drives
    :meth:`ReplicationGroup.promote`.

    In a multi-process deployment this logic runs on the replica
    nodes; in-process it is one object polling the local
    :class:`Replica <repro.replication.replica.Replica>` instances
    directly — the replica-side network view, deliberately *not* the
    primary's (possibly partitioned) shipping links.

    Election rules, in order:

    1. **Vote quota.** At least a majority of the full group
       (``n`` watched replicas + the primary) must report lease
       expiry; the presumed-dead primary cannot vote.
    2. **Candidate quota.** Enough non-crashed, non-diverged replicas
       must be reachable that the candidate set provably intersects
       the commit mode's ack quota (``n - required_acks + 1``): the
       longest *acked* prefix is then always among the candidates, so
       an automatic election can never fence below an acked commit —
       the PR 6 partition caveat, closed. Fewer candidates block the
       election (an operator may still force ``promote`` manually and
       accept the documented loss).
    3. **Winner.** Highest ``applied_seq``; lexicographically smallest
       name on ties. ``group.promote(winner)`` applies the existing
       fence/ack-capping/re-bootstrap rules, the ``on_elected``
       callback builds the new primary, and every detector resets so
       the new leader gets a full window to start heartbeating.
    """

    def __init__(self, group, config: LeaseConfig | None = None, *,
                 on_elected=None, clock=None) -> None:
        self.group = group
        self.config = config or LeaseConfig()
        self.on_elected = on_elected
        self.clock = clock or LeaseClock("coordinator")
        self._lock = threading.RLock()
        self._replicas: dict[str, object] = {}
        self._detectors: dict[str, FailureDetector] = {}
        self.elections: list = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- membership ---------------------------------------------------------

    def watch(self, replica, *, clock=None) -> FailureDetector:
        """Attach a failure detector to ``replica`` and include it in
        the electorate."""
        detector = FailureDetector(replica.name, self.config,
                                   clock=clock)
        replica.failure_detector = detector
        with self._lock:
            self._replicas[replica.name] = replica
            self._detectors[replica.name] = detector
        return detector

    def unwatch(self, name: str) -> None:
        with self._lock:
            replica = self._replicas.pop(name, None)
            self._detectors.pop(name, None)
        if replica is not None \
                and getattr(replica, "failure_detector", None) is not None:
            replica.failure_detector = None

    def detectors(self) -> dict[str, FailureDetector]:
        with self._lock:
            return dict(self._detectors)

    def votes_needed(self) -> int:
        if self.config.election_votes is not None:
            return self.config.election_votes
        with self._lock:
            n = len(self._detectors)
        return (n + 1) // 2 + 1

    def candidates_needed(self) -> int:
        with self._lock:
            n = len(self._detectors)
        required = self.group.mode.required_acks(n)
        if required == 0:
            # async mode acknowledges nothing, so there is no acked
            # prefix the candidate set must provably contain — any
            # reachable replica is a safe winner.
            return 1
        return max(1, n - required + 1)

    # -- the election -------------------------------------------------------

    def tick(self):
        """One detection/election pass; returns the
        :class:`PromotionReport` when an election ran, else ``None``."""
        with self._lock:
            if self.group._pending_term is not None:
                # A promotion is already claimed but its primary has
                # not attached yet — never stack elections.
                return None
            expired = [name for name, det in self._detectors.items()
                       if det.expired()]
            if len(expired) < self.votes_needed():
                return None
            statuses: dict[str, dict] = {}
            for name, replica in self._replicas.items():
                try:
                    status = replica.status()
                except Exception:
                    continue
                if status.get("crashed") or status.get("diverged"):
                    continue
                statuses[name] = status
            if len(statuses) < self.candidates_needed():
                if OBS.enabled:
                    OBS.inc("replication.elections_blocked")
                return None
            best = max(status["applied_seq"]
                       for status in statuses.values())
            winner = min(name for name, status in statuses.items()
                         if status["applied_seq"] == best)
            old_term = self.group.term
            if OBS.enabled:
                OBS.inc("replication.elections")
                OBS.action("replication.elected", chosen=winner,
                           applied_seq=best, term=old_term,
                           votes=len(expired),
                           candidates=len(statuses))
            # The partition isolated the *old* primary; leadership —
            # and these carriers — now belong to the replica side,
            # whose connectivity the coordinator just verified by
            # polling. Clear the isolation flags so the reused
            # promote/catch-up machinery can reach its electorate
            # (the deposed primary stays fenced by its lapsed lease
            # and stale term, not by the partition).
            shipper = self.group.shipper
            if shipper is not None:
                for link in shipper.links():
                    transport = link.transport
                    if link.name in statuses \
                            and getattr(transport, "partitioned", False):
                        transport.partitioned = False
            report = self.group.promote(winner)
            for detector in self._detectors.values():
                detector.reset()
            self.unwatch(winner)
            self.elections.append(report)
            if self.on_elected is not None:
                self.on_elected(report)
            return report

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._watch_loop, name="failover-coordinator",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
        self._thread = None

    def _watch_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.tick()
            except ReplicationError:
                pass  # e.g. no reachable replica yet; keep watching
            except Exception:  # pragma: no cover - loop never dies
                pass
            self._stop.wait(self.config.check_interval)

    def status(self) -> dict:
        with self._lock:
            detectors = {name: det.status()
                         for name, det in self._detectors.items()}
        return {
            "votes_needed": self.votes_needed(),
            "candidates_needed": self.candidates_needed(),
            "elections": len(self.elections),
            "detectors": detectors,
        }
