"""The follower role: apply shipped WAL records in sequence order.

A :class:`Replica` owns a working directory with the same two files a
primary has — ``snapshot.json`` and ``wal.log`` — and keeps them in
write-ahead order: every shipped record is appended to the local log
*before* it is applied, so a replica that dies mid-batch restarts into
exactly the prefix it durably received. Because update application is
deterministic (null and NC indices come from persisted counters), the
replica's state after applying records ``1..n`` is byte-for-byte the
primary's state at sequence ``n`` — the repair guarantee failover
builds on.

The replica speaks the shipper's message protocol via :meth:`handle`:

* ``append`` — a batch of raw framed v2 records ``(applied_seq, hi]``
  plus the ``through_seq`` high-water mark. Records the replica
  already holds are skipped (re-shipment after a lost ack), a gap
  means the shipper must back up (reply ``error: gap``), and a term
  below the replica's own is refused outright (``error: stale-term``
  — a deposed primary must never extend a follower's history).
* ``snapshot`` — full-state catch-up: install the snapshot, reset the
  local log to a header at ``wal_applied``.
* ``status`` — ``applied_seq`` / ``term`` for promotion decisions.

Entries whose compensating ``abort_of`` record arrives in the same
batch are skipped rather than applied-then-unapplied. The shipper
guarantees the pairing: when its batch limit would cut a stream
between an entry and a later abort that compensates it, the batch is
extended so the abort rides along — a replica therefore never applies
an entry whose abort is already in the shipped history behind it.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.errors import PersistenceError, ReplicationError
from repro.faults.registry import FAULTS, SimulatedCrash
from repro.fdb import persistence, storage
from repro.fdb.database import FunctionalDatabase
from repro.fdb.transaction import Transaction
from repro.fdb.updates import UpdateSequence, apply_update
from repro.fdb.wal import WAL_VERSION, UpdateLog, _crc_of, _decode_entry
from repro.obs.hooks import OBS
from repro.replication.transport import decode_snapshot

__all__ = ["Replica"]

FAULTS.register(
    "repl.replica.apply",
    "Replica.handle(append): before one shipped record is applied "
    "(crash here simulates a replica dying mid-batch)",
)


class Replica:
    """One follower: a checkpoint-bootstrapped database copy advanced
    by shipped WAL records, exposing ``applied_seq``."""

    def __init__(self, name: str, workdir: str | Path, *,
                 fsync: bool = False) -> None:
        self.name = name
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.workdir / "snapshot.json"
        self.wal_path = self.workdir / "wal.log"
        self.fsync = fsync
        self.db: FunctionalDatabase | None = None
        self.applied_seq = 0
        self.term = 0
        self.crashed = False
        self.diverged = False
        # Attached by FailoverCoordinator.watch(): tracks lease expiry
        # from the heartbeat stamps observed on incoming frames.
        self.failure_detector = None
        self._lock = threading.RLock()
        self._last_progress = time.monotonic()

    # -- lifecycle ----------------------------------------------------------

    def crash(self) -> None:
        """Simulate process death: drop the in-memory state, keep the
        files. :meth:`restart` must rebuild from disk alone."""
        with self._lock:
            self.crashed = True
            self.db = None

    def restart(self) -> None:
        """Come back from a crash using only the working directory:
        drop a torn tail, replay snapshot + log, recompute
        ``applied_seq`` from what is durably on disk."""
        with self._lock:
            log = UpdateLog(self.wal_path, fsync=self.fsync)
            log.discard_torn_tail()
            if not self.snapshot_path.exists():
                # Never bootstrapped before the crash: stay empty and
                # let catch-up install a snapshot.
                self.db = None
                self.applied_seq = 0
                self.crashed = False
                self.diverged = False
                return
            from repro.fdb.wal import recover
            report = recover(self.snapshot_path, self.wal_path,
                             policy="strict")
            _, meta = persistence.load_with_meta(self.snapshot_path)
            self.db = report.db
            self.applied_seq = max(log.last_seq(),
                                   meta.get("wal_applied") or 0)
            self.term = max(report.term, meta.get("term", 0), self.term)
            self.crashed = False
            self.diverged = False
            self._last_progress = time.monotonic()
            if OBS.enabled:
                OBS.action("replication.replica_restart",
                           replica=self.name,
                           applied_seq=self.applied_seq,
                           term=self.term)

    # -- message protocol ---------------------------------------------------

    def handle(self, message: dict) -> dict:
        """Serve one shipper request (see module docstring)."""
        if self.crashed:
            raise ConnectionError(f"replica {self.name} is down")
        lease = message.get("lease")
        detector = self.failure_detector
        if lease is not None and detector is not None:
            # Any frame from a live leader is a heartbeat: feed the
            # failure detector before dispatch (a crashed replica
            # hears nothing — the check above already threw).
            detector.observe(lease)
        kind = message.get("type")
        if kind == "append":
            return self._handle_append(message)
        if kind == "snapshot":
            return self._handle_snapshot(message)
        if kind == "status":
            return self.status() | {"ok": True}
        return {"ok": False, "error": f"unknown message type {kind!r}"}

    def _handle_append(self, message: dict) -> dict:
        term = message.get("term", 0)
        records = message.get("records", [])
        through_seq = message.get("through_seq", 0)
        # The frame's trace context (absent from older primaries):
        # adopting it parents this replica's spans to the shipping
        # span, joining the primary's request pipeline cross-node.
        trace = message.get("trace") or {}
        with self._lock, OBS.remote_context(trace.get("parent_span"),
                                            trace.get("cause")):
            with OBS.span("replication.receive", key=self.name,
                          replica=self.name, term=term,
                          records=len(records),
                          through_seq=through_seq) as scope:
                return self._append_received(term, records, through_seq,
                                             scope)

    def _append_received(self, term: int, records: list,
                         through_seq: int, scope) -> dict:
        # Caller holds the lock and the receive span.
        if term < self.term:
            scope.attrs["error"] = "stale-term"
            return {"ok": False, "error": "stale-term",
                    "term": self.term,
                    "applied_seq": self.applied_seq}
        if self.diverged:
            scope.attrs["error"] = "diverged"
            return {"ok": False, "error": "diverged",
                    "applied_seq": self.applied_seq}
        if self.db is None:
            scope.attrs["error"] = "needs-snapshot"
            return {"ok": False, "error": "needs-snapshot",
                    "applied_seq": self.applied_seq}
        try:
            decoded = [self._decode(line) for line in records]
        except PersistenceError as exc:
            scope.attrs["error"] = "bad-record"
            return {"ok": False, "error": f"bad-record: {exc}",
                    "applied_seq": self.applied_seq}
        fresh = [(seq, payload, line)
                 for seq, payload, line in decoded
                 if seq > self.applied_seq]
        expected = self.applied_seq + 1
        if fresh and fresh[0][0] != expected:
            scope.attrs["error"] = "gap"
            return {"ok": False, "error": "gap",
                    "applied_seq": self.applied_seq}
        if not fresh and through_seq > self.applied_seq and records:
            # Everything shipped was already applied but the high
            # water mark still advances (ack-lost re-shipment).
            pass
        aborted = {payload["abort_of"]
                   for _, payload, _ in fresh
                   if "abort_of" in payload}
        try:
            self._apply_fresh(fresh, aborted)
        except SimulatedCrash:
            self.crashed = True
            self.db = None
            raise ConnectionError(
                f"replica {self.name} crashed mid-apply"
            ) from None
        with OBS.span("replication.ack", key=self.name,
                      replica=self.name, term=term) as ack_scope:
            if term > self.term:
                self.term = term
            if through_seq > self.applied_seq:
                self.applied_seq = through_seq
            self._last_progress = time.monotonic()
            if OBS.enabled:
                OBS.inc("replication.records_applied", len(fresh))
                ack_scope.attrs["applied_seq"] = self.applied_seq
        return {"ok": True, "applied_seq": self.applied_seq,
                "term": self.term}

    def _apply_fresh(self, fresh: list[tuple[int, dict, str]],
                     aborted: set[int]) -> None:
        """Append the whole fresh batch to the local log, then apply
        it — two passes, write-ahead order preserved batch-wide (every
        record is durable before *any* of its effects are; a crash
        between the phases replays the appended suffix on restart).
        The split keeps each phase one contiguous span, so the folded
        pipeline shows local-WAL time apart from apply time. The spans'
        ``appended_to``/``applied_to`` attrs advance record by record:
        a batch cut short by a crash reports exactly how far it got.
        """
        if not fresh:
            return
        first, last = fresh[0][0], fresh[-1][0]
        enabled = OBS.enabled
        started = time.perf_counter() if enabled else 0.0
        with OBS.span("replica.wal_append", key=self.name,
                      replica=self.name, from_seq=first,
                      to_seq=last) as scope:
            for seq, _payload, line in fresh:
                FAULTS.fire("repl.replica.apply", replica=self.name,
                            seq=seq)
                # Write-ahead locally too: the record is on disk before
                # its effects are, so a crash between the two replays it.
                storage.append_line(self.wal_path, line,
                                    fsync=self.fsync)
                if enabled:
                    scope.attrs["appended_to"] = seq
        if enabled:
            OBS.observe_log(
                f"replication.pipeline.wal_append_seconds.{self.name}",
                time.perf_counter() - started,
            )
            started = time.perf_counter()
        with OBS.span("replica.apply", key=self.name,
                      replica=self.name, from_seq=first,
                      to_seq=last) as scope:
            for seq, payload, _line in fresh:
                if "abort_of" in payload or seq in aborted:
                    continue
                entry = _decode_entry(payload["entry"])
                try:
                    with Transaction(self.db):
                        if isinstance(entry, UpdateSequence):
                            for simple in entry:
                                apply_update(self.db, simple)
                        else:
                            apply_update(self.db, entry)
                except Exception as exc:
                    # Deterministic replay of a committed record
                    # failed: this copy no longer extends the
                    # primary's history. Freeze it; catch-up must
                    # re-bootstrap.
                    self.diverged = True
                    if OBS.enabled:
                        OBS.inc("replication.divergences")
                        OBS.action("replication.diverged",
                                   replica=self.name, seq=seq,
                                   error=str(exc))
                    raise ReplicationError(
                        f"replica {self.name} diverged at seq "
                        f"{seq}: {exc}"
                    ) from exc
                self.applied_seq = seq
                if enabled:
                    scope.attrs["applied_to"] = seq
        if enabled:
            OBS.observe_log(
                f"replication.pipeline.apply_seconds.{self.name}",
                time.perf_counter() - started,
            )

    @staticmethod
    def _decode(line: str) -> tuple[int, dict, str]:
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise PersistenceError(f"unparseable record: {exc}") from exc
        if not isinstance(raw, dict) or raw.get("v") != WAL_VERSION:
            raise PersistenceError("not a v2 record")
        payload = {k: v for k, v in raw.items() if k not in ("v", "crc")}
        if raw.get("crc") != _crc_of(payload):
            raise PersistenceError("checksum mismatch in shipped record")
        seq = payload.get("seq")
        if not isinstance(seq, int):
            raise PersistenceError("shipped record lacks a sequence "
                                   "number")
        return seq, payload, line

    def _handle_snapshot(self, message: dict) -> dict:
        term = message.get("term", 0)
        wal_applied = message.get("wal_applied", 0)
        trace = message.get("trace") or {}
        with self._lock, OBS.remote_context(trace.get("parent_span"),
                                            trace.get("cause")), \
                OBS.span("replica.snapshot_install", key=self.name,
                         replica=self.name, term=term,
                         wal_applied=wal_applied):
            if term < self.term:
                return {"ok": False, "error": "stale-term",
                        "term": self.term,
                        "applied_seq": self.applied_seq}
            try:
                # Older primaries ship the payload raw (no encoding
                # flag); newer ones compress — both install.
                text = decode_snapshot(message.get("snapshot", ""),
                                       message.get("encoding"))
                db = persistence.loads(text)
            except (PersistenceError, ValueError) as exc:
                return {"ok": False,
                        "error": f"bad-snapshot: {exc}",
                        "applied_seq": self.applied_seq}
            storage.atomic_write(self.snapshot_path, text)
            log = UpdateLog(self.wal_path, fsync=self.fsync,
                            term=max(term, self.term))
            log.truncate(next_seq=wal_applied + 1)
            self.db = db
            self.applied_seq = wal_applied
            self.term = max(term, self.term)
            self.diverged = False
            self._last_progress = time.monotonic()
            if OBS.enabled:
                OBS.inc("replication.snapshots_installed")
                OBS.action("replication.snapshot_installed",
                           replica=self.name, wal_applied=wal_applied,
                           term=self.term)
            return {"ok": True, "applied_seq": self.applied_seq,
                    "term": self.term}

    # -- reading ------------------------------------------------------------

    def read(self, fn):
        """Run a read-only callable against the replica's database
        under its apply lock (a consistent point-in-time view)."""
        with self._lock:
            if self.crashed or self.db is None:
                raise ReplicationError(
                    f"replica {self.name} cannot serve reads "
                    f"(crashed={self.crashed})"
                )
            return fn(self.db)

    def status(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "applied_seq": self.applied_seq,
                "term": self.term,
                "crashed": self.crashed,
                "diverged": self.diverged,
            }
