"""Streaming v2 WAL records from the primary's log to replicas.

The :class:`WalShipper` is the data plane: per replica it remembers
the last acknowledged sequence number and, on demand, reads the raw
framed lines in ``(acked, through]`` out of the primary's
:class:`repro.fdb.wal.UpdateLog` and pushes them over that replica's
transport. Shipping is synchronous and idempotent — a lost ack just
means the same records go again and the replica skips what it already
holds — so the control plane (:class:`ReplicationGroup
<repro.replication.group.ReplicationGroup>`) can retry freely.

When a checkpoint has already folded the needed range into the
snapshot (``shippable_floor() > acked``), delta shipping is
impossible and :exc:`SnapshotNeeded` tells the control plane to fall
back to snapshot catch-up.

With ``journal=True`` the shipper also keeps an in-memory copy of
every record that entered the shipped stream, in sequence order —
the oracle the chaos soak replays to prove "replica state equals
sequential replay of the shipped stream".
"""

from __future__ import annotations

import json
import threading
import time

from repro.errors import ReplicaDiverged, ReplicationError
from repro.fdb.wal import UpdateLog
from repro.obs.hooks import OBS
from repro.replication.transport import encode_snapshot

__all__ = ["WalShipper", "ReplicaLink", "SnapshotNeeded"]


class SnapshotNeeded(ReplicationError):
    """Delta shipping cannot reach this replica: the records it needs
    were folded into a checkpoint. Catch up from the snapshot."""

    def __init__(self, name: str, acked: int, floor: int) -> None:
        super().__init__(
            f"replica {name!r} is at seq {acked} but the log floor is "
            f"{floor}; snapshot catch-up required"
        )
        self.replica = name
        self.acked = acked
        self.floor = floor


class ReplicaLink:
    """Shipping state for one replica: transport + ack bookkeeping."""

    def __init__(self, name: str, transport) -> None:
        self.name = name
        self.transport = transport
        self.acked_seq = 0
        self.acked_term = 0
        self.errors = 0
        self.last_error: str | None = None
        self.last_progress = time.monotonic()
        self.needs_snapshot = True  # fresh links bootstrap first

    def note_ack(self, applied_seq: int, term: int) -> None:
        if applied_seq > self.acked_seq:
            self.acked_seq = applied_seq
            self.last_progress = time.monotonic()
        self.acked_term = max(self.acked_term, term)
        self.last_error = None

    def note_error(self, error: str) -> None:
        self.errors += 1
        self.last_error = error

    def status(self) -> dict:
        return {
            "name": self.name,
            "acked_seq": self.acked_seq,
            "acked_term": self.acked_term,
            "errors": self.errors,
            "last_error": self.last_error,
            "needs_snapshot": self.needs_snapshot,
        }


class WalShipper:
    """The record stream from one primary log to N replica links."""

    def __init__(self, log: UpdateLog, *, term: int = 0,
                 batch_limit: int = 256, journal: bool = False) -> None:
        self.log = log
        self.term = term
        self.batch_limit = batch_limit
        # Set by ReplicationGroup.enable_lease(): when present, every
        # outbound frame carries a heartbeat stamp and every ok reply
        # counts as a lease renewal vote (piggybacked heartbeats).
        self.lease = None
        self._links: dict[str, ReplicaLink] = {}
        self._lock = threading.Lock()
        self._journal: list[tuple[int, str]] | None = \
            [] if journal else None
        self._journal_through = 0

    # -- link management ----------------------------------------------------

    def add(self, name: str, transport) -> ReplicaLink:
        with self._lock:
            if name in self._links:
                raise ReplicationError(f"replica {name!r} already "
                                       f"linked")
            link = ReplicaLink(name, transport)
            self._links[name] = link
            return link

    def remove(self, name: str) -> ReplicaLink | None:
        with self._lock:
            return self._links.pop(name, None)

    def link(self, name: str) -> ReplicaLink:
        with self._lock:
            try:
                return self._links[name]
            except KeyError:
                raise ReplicationError(
                    f"no replica linked as {name!r}"
                ) from None

    def links(self) -> list[ReplicaLink]:
        with self._lock:
            return list(self._links.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._links)

    # -- journalling --------------------------------------------------------

    def journal_through(self, seq: int) -> None:
        """Record every log line up to ``seq`` into the shipped-stream
        journal (no-op unless journalling is on). Called at commit
        time, *before* any transport is tried, so the journal covers
        records that were committed but never successfully shipped —
        exactly the stream a promoted replica may or may not hold."""
        if self._journal is None:
            return
        with self._lock:
            if seq <= self._journal_through:
                return
            records = self.log.records_between(self._journal_through,
                                               seq)
            self._journal.extend(records)
            self._journal_through = max(self._journal_through, seq)

    def journal(self) -> list[tuple[int, str]]:
        """The journalled ``(seq, raw line)`` stream, in order."""
        if self._journal is None:
            return []
        with self._lock:
            return list(self._journal)

    # -- shipping -----------------------------------------------------------

    def ship(self, link: ReplicaLink, through_seq: int) -> int:
        """Push the records ``(link.acked_seq, through_seq]`` and
        collect the ack. Returns the replica's new applied sequence.

        Raises ``ConnectionError``/``TimeoutError`` for unreachable
        replicas, :exc:`SnapshotNeeded` when the range is gone from
        the log, :exc:`ReplicaDiverged` when the replica refuses the
        stream (stale term or divergence).
        """
        while True:
            acked = link.acked_seq
            if through_seq <= acked:
                return acked
            floor = self.log.shippable_floor()
            if link.needs_snapshot or acked < floor:
                raise SnapshotNeeded(link.name, acked, floor)
            records = self.log.records_between(acked, through_seq)
            if not records or records[0][0] != acked + 1:
                # The range (or its head) was folded away between the
                # floor check and the read — a concurrent checkpoint
                # truncated the log. Snapshot after all: an empty (or
                # gapped) append must never go out, because the replica
                # advances ``applied_seq`` to the high-water mark and
                # would silently claim records it never received.
                floor = (records[0][0] - 1 if records
                         else self.log.shippable_floor())
                raise SnapshotNeeded(link.name, acked, floor)
            batch = records[: self.batch_limit]
            # A batch boundary must never separate an entry from its
            # compensating abort: the replica skips an aborted entry
            # only when both arrive in the same batch, so trailing
            # aborts referencing an already-batched record ride along
            # past the limit.
            while len(batch) < len(records):
                next_seq, next_line = records[len(batch)]
                abort_of = json.loads(next_line).get("abort_of")
                if not isinstance(abort_of, int) \
                        or abort_of > batch[-1][0]:
                    break
                batch.append((next_seq, next_line))
            # The high-water mark is the last record actually sent —
            # never ``through_seq`` itself, which may point past the
            # log's end after a concurrent fold.
            batch_through = batch[-1][0]
            reply = self._traced_exchange(link, {
                "type": "append",
                "term": self.term,
                "records": [line for _, line in batch],
                "through_seq": batch_through,
            }, "replication.ship", from_seq=acked + 1,
                through_seq=batch_through, records=len(batch))
            if not reply.get("ok"):
                error = reply.get("error", "refused")
                link.note_error(error)
                if error == "stale-term":
                    raise ReplicaDiverged(
                        f"replica {link.name} is at term "
                        f"{reply.get('term')} — this shipper (term "
                        f"{self.term}) is deposed"
                    )
                if error in ("needs-snapshot", "gap", "diverged"):
                    link.needs_snapshot = True
                    raise SnapshotNeeded(link.name, acked, floor)
                raise ReplicationError(
                    f"replica {link.name} refused records: {error}"
                )
            link.note_ack(reply.get("applied_seq", acked),
                          reply.get("term", self.term))
            if OBS.enabled:
                OBS.inc("replication.records_shipped", len(batch))
            if link.acked_seq >= through_seq:
                return link.acked_seq

    def ship_snapshot(self, link: ReplicaLink, snapshot: str,
                      wal_applied: int) -> int:
        """Full-state catch-up: install ``snapshot`` on the replica
        and reset its link to ``wal_applied``.

        The payload goes out zlib-compressed behind the frame's
        ``encoding`` flag; replicas without the flag handling (older
        builds) are reached by the uncompressed form, which remains a
        valid frame — see :func:`repro.replication.transport.\
decode_snapshot`.
        """
        payload, encoding, raw_bytes, wire_bytes = \
            encode_snapshot(snapshot)
        if OBS.enabled:
            OBS.inc("replication.snapshot.bytes_raw", raw_bytes)
            OBS.inc("replication.snapshot.bytes_wire", wire_bytes)
        reply = self._traced_exchange(link, {
            "type": "snapshot",
            "term": self.term,
            "snapshot": payload,
            "encoding": encoding,
            "wal_applied": wal_applied,
        }, "replication.ship_snapshot", wal_applied=wal_applied,
            bytes_raw=raw_bytes, bytes_wire=wire_bytes)
        if not reply.get("ok"):
            error = reply.get("error", "refused")
            link.note_error(error)
            if error == "stale-term":
                raise ReplicaDiverged(
                    f"replica {link.name} is at term "
                    f"{reply.get('term')} — this shipper (term "
                    f"{self.term}) is deposed"
                )
            raise ReplicationError(
                f"replica {link.name} refused snapshot: {error}"
            )
        link.needs_snapshot = False
        link.note_ack(reply.get("applied_seq", wal_applied),
                      reply.get("term", self.term))
        if OBS.enabled:
            OBS.inc("replication.snapshots_shipped")
        return link.acked_seq

    def poll_status(self, link: ReplicaLink) -> dict | None:
        """The replica's own view, or ``None`` if unreachable. Status
        polls ride the same lease-stamped exchange as shipping, so a
        healthy poll also renews the lease."""
        try:
            reply = self._exchange(link, {"type": "status"})
        except ConnectionError:
            return None
        if not reply.get("ok"):
            return None
        return reply

    def _traced_exchange(self, link: ReplicaLink, message: dict,
                         span_name: str, **attrs) -> dict:
        """One exchange wrapped in a shipping span, with the span's
        trace context stamped into the frame.

        The frame's ``trace`` field carries the ship span's id as
        ``parent_span`` (plus the causal update id, term and shipped
        seq), so the replica's receive span joins the originating
        request's pipeline across the node boundary. Older replicas
        ignore the extra key — frames round-trip unknown keys. The
        per-replica round-trip lands in the
        ``replication.ship.rtt_seconds.<replica>`` log histogram.
        Collapses to a bare exchange when telemetry is disabled.
        """
        if not OBS.enabled:
            return self._exchange(link, message)
        with OBS.span(span_name, key=link.name, replica=link.name,
                      term=self.term, **attrs):
            trace = OBS.trace_context()
            if trace is not None:
                trace["term"] = self.term
                trace["seq"] = message.get(
                    "through_seq", message.get("wal_applied", 0)
                )
                message = dict(message)
                message["trace"] = trace
            started = time.perf_counter()
            try:
                return self._exchange(link, message)
            finally:
                OBS.observe_log(
                    f"replication.ship.rtt_seconds.{link.name}",
                    time.perf_counter() - started,
                )

    def _exchange(self, link: ReplicaLink, message: dict) -> dict:
        # Piggyback the lease heartbeat: stamp the frame, and time the
        # renewal vote from *before* the request goes out so a slow
        # round trip shortens the lease instead of stretching it.
        lease = self.lease
        started = 0.0
        if lease is not None:
            message = dict(message)
            message["lease"] = lease.heartbeat_frame()
            started = lease.clock()
        try:
            reply = link.transport.request(message)
        except (ConnectionError, TimeoutError, OSError) as exc:
            link.note_error(str(exc))
            if OBS.enabled:
                OBS.inc("replication.ship_errors")
            raise ConnectionError(str(exc)) from exc
        if lease is not None and reply.get("ok"):
            lease.note_ack(link.name, started)
        return reply
