"""Pluggable transports for shipping WAL records to replicas.

The shipper speaks one synchronous request/reply protocol — JSON
message dicts in, JSON reply dicts out — and this module provides the
two carriers:

* :class:`InProcessTransport` — calls the replica's handler directly.
  The test and chaos-soak carrier: a ``partitioned`` flag (plus the
  ``repl.transport.deliver`` fault point) turns any delivery into a
  ``ConnectionError``, including the nasty half — request delivered,
  ack lost — that makes real replication protocols idempotent.

* :class:`SocketTransport` / :class:`ReplicaServer` — length-prefixed
  JSON frames over TCP (4-byte big-endian length, UTF-8 JSON body) for
  replicas in other processes. The server runs one thread per
  connection and serves the same handler the in-process carrier calls.

Frames are schemaless JSON objects end to end: the codec round-trips
*every* key, and receivers read with ``.get``, so a newer primary may
stamp fields an older replica has never heard of (the ``trace``
context, a snapshot ``encoding`` flag) without breaking the exchange —
the compat property the mixed-version tests pin down.

Every failure a carrier can produce surfaces as ``ConnectionError`` /
``TimeoutError``; the shipper treats both as "replica unreachable,
retry later", never as data loss.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
import threading
import zlib
from typing import Callable, Protocol

from repro.faults.registry import FAULTS

__all__ = ["Transport", "InProcessTransport", "SocketTransport",
           "ReplicaServer", "send_frame", "recv_frame",
           "SNAPSHOT_ENCODING", "encode_snapshot", "decode_snapshot"]

SNAPSHOT_ENCODING = "zlib+b64"
"""The frame flag marking a compressed snapshot payload."""

_LENGTH = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024  # a snapshot ships as one frame

FAULTS.register(
    "repl.transport.deliver",
    "replication transport: before a request is delivered to a "
    "replica (partition / drop site)",
)
FAULTS.register(
    "repl.transport.ack",
    "replication transport: request applied, before the ack returns "
    "(the delivered-but-unacked window)",
)


class Transport(Protocol):
    """What the shipper needs from a carrier: one blocking
    request/reply exchange, and a way to let go of it."""

    def request(self, message: dict) -> dict: ...

    def close(self) -> None: ...


class InProcessTransport:
    """Direct-call carrier for replicas living in this process.

    ``partitioned`` simulates a network partition: set, every exchange
    raises ``ConnectionError``. The check runs both *before* delivery
    (request lost) and *after* the replica handled it (ack lost) — the
    second window is where naive protocols double-apply, so the soak
    flips partitions mid-exchange on purpose.
    """

    def __init__(self, handler: Callable[[dict], dict], *,
                 name: str = "replica") -> None:
        self._handler = handler
        self.name = name
        self.partitioned = False

    def request(self, message: dict) -> dict:
        if self.partitioned:
            raise ConnectionError(f"partitioned from {self.name}")
        FAULTS.fire("repl.transport.deliver", replica=self.name)
        reply = self._handler(message)
        FAULTS.fire("repl.transport.ack", replica=self.name)
        if self.partitioned:
            raise ConnectionError(
                f"partitioned from {self.name} (ack lost)"
            )
        return reply

    def close(self) -> None:
        pass


def encode_snapshot(text: str) -> tuple[str, str, int, int]:
    """Compress a snapshot payload for the wire.

    Returns ``(payload, encoding, raw_bytes, wire_bytes)``: the
    zlib-compressed, base64-armoured payload (JSON frames cannot carry
    raw bytes), the :data:`SNAPSHOT_ENCODING` flag to stamp next to
    it, and the before/after byte counts for the
    ``replication.snapshot.bytes_{raw,wire}`` counters.
    """
    raw = text.encode("utf-8")
    wire = base64.b64encode(zlib.compress(raw, 6)).decode("ascii")
    return wire, SNAPSHOT_ENCODING, len(raw), len(wire)


def decode_snapshot(payload: str, encoding: str | None) -> str:
    """Decode a snapshot payload per its frame flag.

    A missing/empty flag means an uncompressed payload from an older
    primary — returned as-is (read compat). An unrecognised flag is a
    ``ValueError``: the replica must refuse rather than install
    garbage state.
    """
    if not encoding:
        return payload
    if encoding != SNAPSHOT_ENCODING:
        raise ValueError(f"unknown snapshot encoding {encoding!r}")
    try:
        return zlib.decompress(
            base64.b64decode(payload.encode("ascii"))
        ).decode("utf-8")
    except (ValueError, zlib.error) as exc:
        raise ValueError(f"corrupt snapshot payload: {exc}") from exc


def send_frame(sock: socket.socket, message: dict) -> None:
    """One length-prefixed JSON frame onto a socket."""
    body = json.dumps(message, sort_keys=True).encode("utf-8")
    sock.sendall(_LENGTH.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> dict | None:
    """One frame off a socket; ``None`` on clean EOF at a frame
    boundary, ``ConnectionError`` on a mid-frame cut."""
    header = _recv_exact(sock, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > _MAX_FRAME:
        raise ConnectionError(f"oversized frame: {length} bytes")
    body = _recv_exact(sock, length, eof_ok=False)
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ConnectionError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ConnectionError("frame body is not a JSON object")
    return message


def _recv_exact(sock: socket.socket, count: int,
                *, eof_ok: bool) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class SocketTransport:
    """Length-prefixed JSON frames to a :class:`ReplicaServer`.

    One persistent connection, re-established on the next request
    after any failure; the protocol is one-request-one-reply, so a
    reconnect can never interleave frames.

    ``connect_timeout`` / ``send_timeout`` / ``recv_timeout`` bound
    each phase of an exchange (all default to ``timeout``): a silently
    dead peer — SYN black hole, send buffer that never drains, reply
    that never comes — surfaces as :exc:`TimeoutError` within the
    bound instead of blocking the shipper (and the lease renewer, and
    therefore the failure detectors) forever. A timed-out exchange
    drops the connection: the reply may still arrive later, and
    reading it against the *next* request would desynchronise the
    framing. The shipper treats the error as retryable-unreachable,
    the same as any ``ConnectionError`` — and a heartbeat lost to it
    counts toward lease expiry like any other missed beat.
    """

    def __init__(self, host: str, port: int, *,
                 timeout: float = 5.0, name: str | None = None,
                 connect_timeout: float | None = None,
                 send_timeout: float | None = None,
                 recv_timeout: float | None = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout \
            if connect_timeout is not None else timeout
        self.send_timeout = send_timeout \
            if send_timeout is not None else timeout
        self.recv_timeout = recv_timeout \
            if recv_timeout is not None else timeout
        self.name = name or f"{host}:{port}"
        self.partitioned = False
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()

    def request(self, message: dict) -> dict:
        if self.partitioned:
            raise ConnectionError(f"partitioned from {self.name}")
        with self._lock:
            try:
                sock = self._connect()
                sock.settimeout(self.send_timeout)
                send_frame(sock, message)
                sock.settimeout(self.recv_timeout)
                reply = recv_frame(sock)
            except TimeoutError as exc:
                self._drop()
                raise TimeoutError(
                    f"exchange with {self.name} timed out: {exc}"
                ) from exc
            except (OSError, ConnectionError) as exc:
                self._drop()
                raise ConnectionError(
                    f"exchange with {self.name} failed: {exc}"
                ) from exc
            if reply is None:
                self._drop()
                raise ConnectionError(
                    f"{self.name} closed the connection"
                )
            return reply

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
            if sock.getsockname() == sock.getpeername():
                # Linux TCP simultaneous-open quirk: connecting to a
                # *free* port in the ephemeral range can connect the
                # socket to itself, and every frame we send would echo
                # back as its own reply. Refuse it like any dead peer.
                sock.close()
                raise ConnectionError(
                    f"self-connection to {self.name} (no listener)"
                )
            self._sock = sock
        return self._sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop()


class ReplicaServer:
    """Serves a replica's message handler over TCP.

    ``start()`` binds (port 0 picks a free port — read ``.port`` after)
    and accepts in a daemon thread, one thread per connection; each
    frame is answered by ``handler(message)``. A handler exception
    becomes an ``{"ok": False, "error": ...}`` reply, never a dropped
    connection — transport failures must stay distinguishable from
    replica refusals.

    ``idle_timeout`` (seconds; ``None`` keeps the historical
    wait-forever behaviour) bounds how long a connection thread blocks
    on the next frame: a client that died without closing — or that
    stalls mid-frame — gets its connection reaped instead of pinning a
    server thread forever. Clients reconnect transparently on their
    next request.
    """

    def __init__(self, handler: Callable[[dict], dict], *,
                 host: str = "127.0.0.1", port: int = 0,
                 idle_timeout: float | None = None) -> None:
        self._handler = handler
        self.host = host
        self.port = port
        self.idle_timeout = idle_timeout
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._running = False

    def start(self) -> "ReplicaServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen()
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True,
            name=f"replica-server-{self.port}",
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while self._running:
            try:
                conn, _ = listener.accept()
            except OSError:
                return  # listener shut down by stop()
            if not self._running:
                conn.close()
                return
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True,
            ).start()

    def _serve(self, conn: socket.socket) -> None:
        with conn:
            if self.idle_timeout is not None:
                conn.settimeout(self.idle_timeout)
            while True:
                try:
                    message = recv_frame(conn)
                except TimeoutError:
                    return  # idle or half-dead client: reap the thread
                except ConnectionError:
                    return
                if message is None:
                    return
                try:
                    reply = self._handler(message)
                except Exception as exc:  # noqa: BLE001 — reply, don't die
                    reply = {"ok": False,
                             "error": f"{type(exc).__name__}: {exc}"}
                try:
                    send_frame(conn, reply)
                except OSError:
                    return

    def stop(self) -> None:
        self._running = False
        listener = self._listener
        if listener is not None:
            # close() alone does not wake a thread blocked in
            # accept() — the kernel keeps the socket (and the bound
            # port) alive until the accept returns, so a connect
            # racing in right after stop() would still be served.
            # shutdown() forces the accept out first.
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass
            self._listener = None
        thread = self._accept_thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=2.0)
            self._accept_thread = None

    def transport(self, *, timeout: float = 5.0,
                  name: str | None = None,
                  connect_timeout: float | None = None,
                  send_timeout: float | None = None,
                  recv_timeout: float | None = None) -> SocketTransport:
        """A client transport pointed at this server."""
        return SocketTransport(self.host, self.port,
                               timeout=timeout, name=name,
                               connect_timeout=connect_timeout,
                               send_timeout=send_timeout,
                               recv_timeout=recv_timeout)
