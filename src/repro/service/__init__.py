"""Concurrent service layer over the functional database engine.

See :mod:`repro.service.service` for the architecture (derivation-
cluster locking, global write serialisation, deadlines, retry,
admission control, circuit breaker, drain) and
``docs/ROBUSTNESS.md`` for the operator's view. The chaos soak
harness that validates all of it lives in :mod:`repro.faults.soak`
(``python -m repro.faults --soak``).
"""

from repro.service.admission import AdmissionGate
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.locks import EXCLUSIVE, SHARED, LockManager
from repro.service.retry import DEFAULT_RETRYABLE, RetryPolicy
from repro.service.service import WRITE_RESOURCE, DatabaseService

__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "LockManager",
    "SHARED",
    "EXCLUSIVE",
    "RetryPolicy",
    "DEFAULT_RETRYABLE",
    "DatabaseService",
    "WRITE_RESOURCE",
]
