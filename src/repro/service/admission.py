"""Admission control: a bounded gate in front of the execution paths.

Shedding beats queueing once the queue stops draining: a request that
waits past its deadline consumes a slot and produces an error anyway.
The gate therefore bounds both the number of requests *executing*
(``max_concurrent``) and the number *waiting* (``max_queue``); a
request arriving past the waiting bound is rejected immediately with
:class:`~repro.errors.ServiceOverloaded`, and one that queues but is
not admitted within ``queue_timeout`` (or its own deadline) is shed
the same way. Arrivals after :meth:`AdmissionGate.close` get
:class:`~repro.errors.ServiceClosed` — the drain signal.

The counters are exported as gauges (``service.active``,
``service.queued``) so a dashboard shows saturation before the
shedding starts.
"""

from __future__ import annotations

import threading
import time

from repro.cancel import Deadline
from repro.errors import ServiceClosed, ServiceOverloaded
from repro.obs.hooks import OBS

__all__ = ["AdmissionGate"]


class AdmissionGate:
    """Bounded concurrency + bounded queue, condition-variable based."""

    def __init__(self, *, max_concurrent: int = 8, max_queue: int = 16,
                 queue_timeout: float = 1.0) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._cond = threading.Condition()
        self._active = 0
        self._queued = 0
        self._closed = False
        self.shed = 0  # lifetime count, for reports

    def _publish(self) -> None:
        if OBS.enabled:
            OBS.gauge("service.active", self._active)
            OBS.gauge("service.queued", self._queued)

    def enter(self, *, deadline: Deadline | None = None) -> None:
        """Take an execution slot, queueing briefly if none is free.

        Raises :class:`ServiceOverloaded` when the queue is full or
        the wait runs out, :class:`ServiceClosed` once the gate is
        closed.
        """
        limit = self.queue_timeout
        if deadline is not None:
            limit = min(limit, max(deadline.remaining(), 0.0))
        started = time.monotonic()
        expires = started + limit
        with self._cond:
            if self._closed:
                raise ServiceClosed("service is draining; no new requests")
            if self._active < self.max_concurrent:
                self._active += 1
                self._publish()
                if OBS.enabled:
                    OBS.observe_log("service.admission.wait_seconds",
                                    time.monotonic() - started)
                return
            if self._queued >= self.max_queue:
                self.shed += 1
                if OBS.enabled:
                    OBS.inc("service.shed")
                    OBS.event("admission.shed", reason="queue_full",
                              queued=self._queued)
                raise ServiceOverloaded(
                    f"request queue full ({self._queued} waiting); "
                    f"request shed"
                )
            self._queued += 1
            self._publish()
            try:
                while True:
                    if self._closed:
                        raise ServiceClosed(
                            "service is draining; no new requests"
                        )
                    if self._active < self.max_concurrent:
                        self._active += 1
                        if OBS.enabled:
                            OBS.observe_log(
                                "service.admission.wait_seconds",
                                time.monotonic() - started,
                            )
                        return
                    remaining = expires - time.monotonic()
                    if remaining <= 0:
                        self.shed += 1
                        if OBS.enabled:
                            OBS.inc("service.shed")
                            OBS.event("admission.shed",
                                      reason="queue_wait_timeout")
                        raise ServiceOverloaded(
                            f"queued {limit:.3f}s without an execution "
                            f"slot; request shed"
                        )
                    self._cond.wait(remaining)
            finally:
                self._queued -= 1
                self._publish()

    def leave(self) -> None:
        """Return an execution slot."""
        with self._cond:
            self._active -= 1
            assert self._active >= 0, "admission gate released twice"
            self._publish()
            self._cond.notify_all()

    def close(self) -> None:
        """Stop admitting; queued requests are woken to fail fast."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Block until every admitted request has left (the drain
        barrier); False if ``timeout`` elapses first."""
        expires = time.monotonic() + timeout
        with self._cond:
            while self._active > 0:
                remaining = expires - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True
