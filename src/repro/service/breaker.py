"""Circuit breaker for the durable-storage path.

When the log device is down, every write request rediscovers that fact
the slow way: claim locks, snapshot the database, exhaust the WAL's
own I/O retries, roll back. Under load that turns one broken disk into
a convoy of threads all waiting on a doomed append. The breaker makes
the failure *cheap*: after ``failure_threshold`` consecutive storage
failures it trips OPEN and the service answers writes immediately with
:class:`~repro.errors.ServiceReadOnly` — reads keep flowing, because
nothing about reading needs the log.

States follow the classic three-state machine:

* ``CLOSED`` — healthy; failures are counted, successes reset the
  count.
* ``OPEN`` — failing fast; after ``reset_timeout`` seconds the next
  candidate write is allowed through as a probe (→ ``HALF_OPEN``).
* ``HALF_OPEN`` — at most ``half_open_max`` probes in flight; one
  success closes the breaker, one failure re-opens it and restarts
  the clock.

Every transition is narrated through :func:`repro.obs.hooks.OBS.action`
(``breaker.open`` / ``breaker.half_open`` / ``breaker.closed``) so a
JSONL event log shows exactly when — and on which failure — the
service degraded and recovered; the soak harness asserts those records
exist.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ServiceReadOnly
from repro.obs.hooks import OBS

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN", "STATE_CODE"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

# Numeric codes for the ``service.breaker.state`` gauge: a dashboard
# can alert on ``> 0`` (degraded) or ``== 2`` (failing fast).
STATE_CODE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure breaker with a probe-based reset."""

    def __init__(self, *, failure_threshold: int = 5,
                 reset_timeout: float = 1.0, half_open_max: int = 1,
                 clock=time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_max < 1:
            raise ValueError("half_open_max must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_max = half_open_max
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0
        self._trips = 0
        self._resets = 0

    # -- state --------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # Caller holds self._lock. OPEN silently ages into HALF_OPEN
        # eligibility; the visible transition happens when a probe asks.
        return self._state

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    @property
    def resets(self) -> int:
        with self._lock:
            return self._resets

    # -- gate ---------------------------------------------------------------

    def allow(self) -> None:
        """Gate one candidate operation; raises
        :class:`ServiceReadOnly` when the breaker is failing fast.
        A successful return in HALF_OPEN reserves a probe slot — the
        caller *must* then report :meth:`record_success` or
        :meth:`record_failure`."""
        with self._lock:
            if self._state == CLOSED:
                return
            if self._state == OPEN:
                elapsed = self._clock() - self._opened_at
                if elapsed < self.reset_timeout:
                    raise ServiceReadOnly(
                        f"storage circuit breaker open "
                        f"({self.reset_timeout - elapsed:.3f}s until "
                        f"probe); writes rejected, reads served"
                    )
                self._transition(HALF_OPEN, reason="reset timeout elapsed")
                self._probes = 0
            # HALF_OPEN: admit up to half_open_max probes.
            if self._probes >= self.half_open_max:
                raise ServiceReadOnly(
                    "storage circuit breaker half-open and probe "
                    "quota in flight; writes rejected"
                )
            self._probes += 1

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state == HALF_OPEN:
                self._probes = 0
                self._resets += 1
                self._transition(CLOSED, reason="probe succeeded")
            elif self._state == OPEN:
                # A write admitted before the trip finished late and
                # well: evidence enough to close.
                self._resets += 1
                self._transition(CLOSED, reason="late success")

    def record_failure(self, exc: BaseException | None = None) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes = 0
                self._opened_at = self._clock()
                self._trips += 1
                self._transition(OPEN, reason=self._why(exc,
                                                        "probe failed"))
                return
            self._failures += 1
            if (self._state == CLOSED
                    and self._failures >= self.failure_threshold):
                self._opened_at = self._clock()
                self._trips += 1
                self._transition(
                    OPEN,
                    reason=self._why(
                        exc,
                        f"{self._failures} consecutive storage failures",
                    ),
                )

    def release_probe(self) -> None:
        """The operation :meth:`allow` admitted ended without a storage
        verdict (it failed validation, timed out on a lock, was
        cancelled): return the probe slot so the breaker keeps probing."""
        with self._lock:
            if self._state == HALF_OPEN and self._probes > 0:
                self._probes -= 1

    @staticmethod
    def _why(exc: BaseException | None, base: str) -> str:
        if exc is None:
            return base
        return f"{base}: {type(exc).__name__}: {exc}"

    def _transition(self, state: str, *, reason: str) -> None:
        # Caller holds self._lock; OBS instruments take their own
        # locks and never call back in, so no ordering hazard.
        self._state = state
        if OBS.enabled:
            OBS.inc(f"service.breaker.{state}")
            OBS.gauge("service.breaker.state", STATE_CODE[state])
            OBS.action(f"breaker.{state}", reason=reason)
